//! Offline stand-in for the `parking_lot` crate: the subset of its API
//! this workspace uses, backed by `std::sync`. The build environment has
//! no access to crates.io, so the workspace vendors API-compatible shims
//! (see DESIGN.md §"Vendored compatibility shims"). Behavioral difference
//! vs. the real crate: poisoning is ignored (a panic while holding a lock
//! does not poison it for later users), which matches parking_lot's own
//! semantics.

use std::sync;

/// A mutex with `parking_lot`'s panic-free locking API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
