//! Offline stand-in for `rand` 0.8: the subset of its API this workspace
//! uses, with a deterministic xoshiro256** generator behind `StdRng`.
//! The build environment has no access to crates.io, so the workspace
//! vendors API-compatible shims (DESIGN.md §"Vendored compatibility
//! shims").
//!
//! Determinism note: `StdRng::seed_from_u64(s)` yields a fixed stream per
//! seed, but a *different* stream than upstream rand's ChaCha12-based
//! `StdRng`. All in-repo uses generate synthetic documents whose exact
//! contents are immaterial (tests compare evaluators against each other
//! on the same document), so only per-seed determinism matters.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`. `low < high` required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // over a 128-bit space is irrelevant for document synthesis.
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Bernoulli trial with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator, "gen_ratio: ratio > 1");
        assert!(denominator > 0, "gen_ratio: zero denominator");
        u32::sample_half_open(self, 0, denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
        let mut hits = 0;
        for _ in 0..10_000 {
            if r.gen_ratio(1, 4) {
                hits += 1;
            }
        }
        assert!((2000..3000).contains(&hits), "gen_ratio(1/4) hit {hits}/10000");
        let mut trues = 0;
        for _ in 0..10_000 {
            if r.gen_bool(0.7) {
                trues += 1;
            }
        }
        assert!((6500..7500).contains(&trues), "gen_bool(0.7) hit {trues}/10000");
    }
}
