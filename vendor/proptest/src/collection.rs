//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<T>` with a length drawn from `size` (half-open).
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let n = self.size.start + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_range() {
        let s = vec(Just(7u8), 2..6);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
