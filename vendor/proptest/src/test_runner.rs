//! Deterministic test runner pieces: config, RNG, case errors.

/// Runner configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    /// `cases`, overridable via the `PROPTEST_CASES` env var.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out (not a failure).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// True for rejections.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic generator (SplitMix64). The default seed is fixed so CI
/// runs are reproducible; set `PROPTEST_SEED` to explore other streams.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// From an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Fixed default seed, overridable via `PROPTEST_SEED`.
    pub fn from_env() -> TestRng {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x9E37_79B9);
        TestRng::from_seed(seed)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        // Multiply-shift bounded sampling; bias is negligible for test
        // input generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::from_seed(11);
        let mut b = TestRng::from_seed(11);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::from_seed(5);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
