//! Strategy trait and combinators: deterministic value generation
//! without shrinking.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a value
/// directly, and failing cases are reported unshrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, `recurse`
    /// wraps an inner strategy into a branch strategy. `depth` bounds the
    /// nesting; `_desired_size`/`_expected_branch_size` are accepted for
    /// API compatibility but unused (depth is the only bound).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Bias toward branching (2:1) above the floor; the depth cap
            // keeps total size bounded because the bottom level is leaves.
            let branch = recurse(level).boxed();
            level = Union::weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        level
    }

    /// Type-erase (and make cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generate a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Equal-weight union.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted union.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if roll < w {
                return arm.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty char range strategy");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below(u64::from(hi - lo)) as u32) {
                return c;
            }
        }
    }
}

impl Strategy for std::ops::RangeInclusive<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (*self.start() as u32, *self.end() as u32);
        loop {
            if let Some(c) = char::from_u32(lo + rng.below(u64::from(hi - lo) + 1) as u32) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, _rng: &mut TestRng) -> bool {
        // `bool` the *type* is the strategy in proptest (`any::<bool>()`);
        // a literal `true`/`false` used as a strategy is a constant.
        *self
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Regex-lite string strategy: `&'static str` patterns composed of
/// literal characters and character classes `[a-z0-9_]` with optional
/// repetition `{m}` / `{m,n}` / `?` / `*` / `+` (the `*`/`+` forms cap at
/// 8 repetitions). This covers the patterns used by the workspace's
/// property tests; anything unsupported panics loudly at generation time.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let items = parse_pattern(self);
        let mut out = String::new();
        for (set, lo, hi) in &items {
            let n = if lo == hi {
                *lo
            } else {
                (*lo as u64 + rng.below((*hi - *lo) as u64 + 1)) as usize
            };
            for _ in 0..n {
                let i = rng.below(set.len() as u64) as usize;
                out.push(set[i]);
            }
        }
        out
    }
}

type PatternItem = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<PatternItem> {
    let mut items: Vec<PatternItem> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            for u in lo as u32..=hi as u32 {
                                set.extend(char::from_u32(u));
                            }
                        }
                        Some(other) => {
                            if let Some(p) = prev.replace(other) {
                                set.push(p);
                            }
                        }
                    }
                }
                set.extend(prev);
                assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                set
            }
            '\\' => vec![chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))],
            '.' | '(' | ')' | '|' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?} (regex-lite shim)")
            }
            literal => vec![literal],
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("repeat lower bound"),
                        b.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
        items.push((set, lo, hi));
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let d = Strategy::generate(&"[0-9]{1,2}", &mut rng);
            assert!((1..=2).contains(&d.chars().count()), "{d:?}");
            assert!(d.chars().all(|c| c.is_ascii_digit()), "{d:?}");
            let lit = Strategy::generate(&"ab-c", &mut rng);
            assert_eq!(lit, "ab-c");
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let u = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            let x = (2..9u32).generate(&mut rng);
            assert!((2..9).contains(&x));
            let y = (0..4usize).generate(&mut rng);
            assert!(y < 4);
        }
    }
}
