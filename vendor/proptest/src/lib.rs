//! Offline stand-in for `proptest`: the strategy combinators, macros and
//! runner surface this workspace uses, with deterministic generation and
//! **no shrinking** (a failing case reports its inputs verbatim). The
//! build environment has no access to crates.io, so the workspace vendors
//! API-compatible shims (DESIGN.md §"Vendored compatibility shims").
//!
//! Supported surface:
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`,
//! * strategies: `Just`, integer ranges, tuple composition, regex-lite
//!   string patterns (`"[a-z]{1,6}"` style), [`collection::vec`],
//! * macros: `proptest!`, `prop_oneof!`, `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assert_ne!`,
//! * [`test_runner::ProptestConfig`] (`cases`, env override
//!   `PROPTEST_CASES`, seed override `PROPTEST_SEED`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Union of equally-weighted alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} != {:?}: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
}

/// Discard the current case (counts as skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define `#[test]` functions over generated inputs.
///
/// Each case draws fresh inputs from the given strategies; a failing body
/// panics with the case number and the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::from_env();
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => { case += 1; }
                        ::std::result::Result::Err(e) if e.is_rejection() => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_global_rejects,
                                "proptest: too many rejected cases ({rejected})"
                            );
                        }
                        ::std::result::Result::Err(e) => {
                            panic!(
                                "proptest case {case} failed: {e}\ninputs:\n{}",
                                [$(format!("  {} = {:?}", stringify!($arg), &$arg)),+]
                                    .join("\n")
                            );
                        }
                    }
                }
                let _ = rejected;
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0..10u32, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(v in small_vec(), x in 1..4u32) {
            prop_assert!(v.len() < 5);
            prop_assert!((1..4).contains(&x), "x was {}", x);
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![
            Just("fixed".to_owned()),
            "[a-c]{2,4}",
            (0..3usize).prop_map(|i| format!("n{i}")),
        ]) {
            prop_assert!(!s.is_empty());
        }
    }

    #[derive(Clone, Debug)]
    enum T {
        Leaf,
        Node(Vec<T>),
    }

    fn count(t: &T) -> usize {
        match t {
            T::Leaf => 1,
            T::Node(cs) => 1 + cs.iter().map(count).sum::<usize>(),
        }
    }

    proptest! {
        #[test]
        fn recursive_bounded(t in Just(T::Leaf).boxed().prop_recursive(3, 20, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        })) {
            prop_assert!(count(&t) < 200);
        }
    }
}
