//! Offline stand-in for `criterion`: the harness surface the workspace's
//! benches use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`). Measurement is
//! simple medians over wall-clock samples — no regression analysis, no
//! plots. The build environment has no access to crates.io, so the
//! workspace vendors API-compatible shims (DESIGN.md §"Vendored
//! compatibility shims").

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and reports timings.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured samples; like upstream
    /// criterion the call returns `()` (the closure may return any
    /// value, which is black-boxed). The median is reported by the
    /// group runner.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { samples: self.samples, median: None };
        let t0 = Instant::now();
        f(&mut b);
        let total = t0.elapsed();
        match b.median {
            Some(m) => println!(
                "bench {}/{id}: median {m:.2?} over {} samples (total {total:.2?})",
                self.name, self.samples
            ),
            None => println!("bench {}/{id}: total {total:.2?}", self.name),
        }
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0;
        group.bench_function("f", |b| {
            b.iter(|| ran += 1);
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert_eq!(ran, 3);
    }
}
