//! The `Engine`/`Session` split (DESIGN.md §16): one shared, thread-safe
//! [`Engine`] owning everything that outlives a client — the document
//! registry (stores and their buffer pools), the [`Telemetry`] bundle,
//! the compiled-plan cache and the admission gate — and cheap per-client
//! [`Session`] values carrying what is client-local: translation options,
//! resource limits, and the session's current document.
//!
//! The one-shot [`crate::XPathEngine`] facade remains for embedders that
//! compile-and-run a handful of queries; the serving surfaces (the
//! `--serve` CLI mode, the REPL, `bench/bin/throughput`) all run through
//! sessions so concurrent clients share one plan cache and one metrics
//! registry.
//!
//! ## The plan cache
//!
//! Compiled plans are cached per `(expression, static-context hash,
//! statistics fingerprint)`, extending the "cacheable compiled
//! executables keyed by expression + static-context hash" design of the
//! XPath 2.0 exemplar (SNIPPETS.md Snippet 1). The static context is
//! everything that influences what `compile` produces or how a query is
//! admitted: the full [`TranslateOptions`] (including the parallelism
//! degree and the [`CostMode`] — a plan compiled for 4 threads contains
//! Exchange operators a serial plan must not share) and the session's
//! [`ResourceLimits`] (two sessions with different budgets never share a
//! cache entry, so per-session admission behaviour can never leak across
//! clients through the cache).
//!
//! The statistics fingerprint is the third key component: a cost-based
//! plan is shaped by the statistics of the store it was optimized for, so
//! it may only be replayed against a store whose [`StoreStats`]
//! fingerprint matches — two stores with different statistics never share
//! a cost-based entry (asserted by `tests/plancache.rs`). With
//! `CostMode::Off` (or a store without a structural index) the
//! fingerprint is pinned to `0`: such plans are store-independent — code
//! generation re-binds them to whichever store the query runs against —
//! so one entry still serves every registered document, exactly as before
//! the optimizer existed.
//!
//! Capacity is dual: an entry cap (LRU count) and a byte budget charged
//! against a dedicated [`ResourceGovernor`] — the same accounting
//! machinery queries run under, reused for the cache itself. Inserting a
//! plan charges [`plan_weight`] bytes; when the charge would exceed the
//! budget (or the entry cap is hit), least-recently-used plans are
//! evicted (and their bytes released) until it fits. Hits, misses,
//! evictions, inserts and the resident entry/byte gauges fold into the
//! PR 6 metrics registry as `natix_plan_cache_*`.
//!
//! ## Epoch snapshots and write batches
//!
//! Documents are registered as *epoch snapshots* (DESIGN.md §18): the
//! registry maps each name to an immutable `Arc<Document>` plus a
//! monotonically increasing epoch number. Readers [`Engine::pin`] the
//! current snapshot and keep evaluating against it for as long as they
//! hold the pin — a concurrent writer can never tear their view. A
//! single writer per document opens a [`WriteBatch`]: a private clone of
//! the arena store that absorbs updates (with incremental structural-
//! index repair) while readers keep the old epoch. [`WriteBatch::commit`]
//! atomically swaps the registry entry to the new snapshot and bumps the
//! epoch; abort (or drop) discards the clone — the published store is
//! never in a half-updated state, even when a fault injector aborts the
//! batch mid-repair. Every batch runs under a [`ResourceGovernor`]:
//! each op charges an estimated byte cost, and commit/abort release the
//! whole charge, so `transient_bytes() == 0` after the batch resolves is
//! the same machine-checkable no-leak invariant queries have.
//!
//! Publishing a new epoch also invalidates derived state eagerly: plan
//! cache entries keyed to the superseded statistics fingerprint are
//! evicted at commit ([`PlanCache::evict_fingerprint`], counted as
//! `natix_plan_cache_stale_evictions_total`) instead of lingering until
//! LRU pressure pushes them out.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

use compiler::{
    CompiledQuery, CostMode, OptimizerTrace, QueryTrace, ResourceLimits, TranslateOptions,
};
use nqe::{AnalyzeReport, FailPoint, ResourceGovernor};
use parking_lot::{Mutex, RwLock};
use telemetry::{Counter, Gauge, Telemetry};
use xmlstore::{
    ArenaStore, NodeId, RepairFailPoint, RepairStats, StoreStats, UpdateError, XmlStore,
};

use crate::{Document, NatixError, QueryError, QueryOutput, Value};

/// Compile-time proof that documents (arena and paged stores alike) can
/// be shared across service threads.
fn _assert_send_sync<T: Send + Sync>() {}
#[allow(unused)]
fn _document_is_shareable() {
    _assert_send_sync::<Document>();
    _assert_send_sync::<Engine>();
}

/// FNV-1a over a stream of u64 words (the same hash family as
/// [`telemetry::expr_hash`], widened to numeric fields).
fn fnv_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The static-context hash of a cache key: a digest of everything beside
/// the expression text that determines the compiled plan or the budget
/// it runs under. Sessions differing in *any* translation option,
/// thread count, execution budget or parse limit hash differently and
/// therefore never share plans (asserted by `tests/plancache.rs`).
pub fn static_context_hash(opts: &TranslateOptions, limits: &ResourceLimits) -> u64 {
    // `None` folds as the sentinel u64::MAX, distinct from any real value
    // (real limits of u64::MAX would be indistinguishable from unlimited
    // anyway).
    let opt = |v: Option<u64>| v.unwrap_or(u64::MAX);
    fnv_words([
        opts.stacked_outer as u64,
        opts.push_dedup as u64,
        opts.memoize_inner as u64,
        opts.split_expensive as u64,
        opts.prune_properties as u64,
        (opts.optimize == CostMode::CostBased) as u64,
        opts.threads as u64,
        opt(limits.max_memory_bytes),
        opt(limits.max_tuples),
        opt(limits.timeout.map(|t| t.as_nanos().min(u64::MAX as u128) as u64)),
        opt(limits.tick_interval.map(|t| t as u64)),
        opt(limits.max_parse_depth.map(|d| d as u64)),
        opt(limits.max_name_len.map(|l| l as u64)),
        opt(limits.max_attr_count.map(|c| c as u64)),
        opt(limits.max_entity_expansions),
    ])
}

/// Deterministic byte weight of a cached plan: a fixed entry overhead
/// plus the length of the plan's debug rendering, which grows with
/// operator count and embedded name-test/literal strings. A proxy, not
/// an exact heap measurement — but deterministic, monotone in plan
/// complexity, and reproducible by tests that hand-compute eviction
/// sequences against a byte budget.
pub fn plan_weight(plan: &CompiledQuery) -> u64 {
    64 + format!("{plan:?}").len() as u64
}

/// Configuration of the shared engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Plan-cache entry cap (LRU above this; `0` disables caching).
    pub cache_entries: usize,
    /// Plan-cache byte budget, charged per [`plan_weight`] against the
    /// cache's resource governor.
    pub cache_bytes: u64,
    /// Admission gate: queries executing concurrently across all
    /// sessions (`0` = unbounded). The query service layers its bounded
    /// worker pool on top; this cap also protects embedders driving
    /// sessions from their own threads.
    pub max_concurrent: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { cache_entries: 256, cache_bytes: 8 << 20, max_concurrent: 0 }
    }
}

/// Point-in-time plan-cache statistics (monotonic counters plus the
/// resident gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh compile.
    pub misses: u64,
    /// LRU evictions (entry cap or byte budget).
    pub evictions: u64,
    /// Eager evictions of entries whose statistics fingerprint was
    /// superseded by an epoch publish (not counted under `evictions`).
    pub stale_evictions: u64,
    /// Plans inserted.
    pub inserts: u64,
    /// Currently resident plans.
    pub entries: u64,
    /// Currently charged bytes (the cache governor's live balance).
    pub bytes: u64,
    /// High-water mark of charged bytes over the cache's lifetime.
    pub bytes_high_water: u64,
}

/// Metric handles the cache increments. When the engine carries
/// telemetry they are the pre-registered `natix_plan_cache_*` series;
/// otherwise detached instruments (still exact, just not exported).
struct CacheCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    stale_evictions: Counter,
    inserts: Counter,
    entries: Gauge,
    bytes: Gauge,
}

impl CacheCounters {
    fn detached() -> CacheCounters {
        CacheCounters {
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
            stale_evictions: Counter::default(),
            inserts: Counter::default(),
            entries: Gauge::default(),
            bytes: Gauge::default(),
        }
    }

    fn registered(t: &Telemetry) -> CacheCounters {
        CacheCounters {
            hits: t.metrics.plan_cache_hits_total.clone(),
            misses: t.metrics.plan_cache_misses_total.clone(),
            evictions: t.metrics.plan_cache_evictions_total.clone(),
            stale_evictions: t.metrics.plan_cache_stale_evictions_total.clone(),
            inserts: t.metrics.plan_cache_inserts_total.clone(),
            entries: t.metrics.plan_cache_entries.clone(),
            bytes: t.metrics.plan_cache_bytes.clone(),
        }
    }
}

struct CacheEntry {
    plan: Arc<CompiledQuery>,
    /// The optimizer's decision record, replayed on every hit so EXPLAIN
    /// ANALYZE of a cached cost-based plan still shows what was chosen
    /// and can reconcile estimates against actuals (`None` for plans
    /// compiled with the cost pass off).
    optimizer: Option<OptimizerTrace>,
    bytes: u64,
    /// LRU stamp, updated through a shared read lock on hits (the hot
    /// path never takes the cache's write lock).
    last_used: AtomicU64,
}

struct CacheInner {
    /// Keyed by `(expression, static-context hash, stats fingerprint)` —
    /// see the module docs; the fingerprint is `0` for non-cost-based
    /// plans.
    map: HashMap<(String, u64, u64), CacheEntry>,
    /// Byte accounting, reusing the query-side governor machinery: the
    /// budget is `cache_bytes`, every resident plan holds a charge, and
    /// eviction releases it. Charges only ever happen after eviction
    /// made room, so the governor never trips.
    gov: ResourceGovernor,
}

/// The shared compiled-plan cache (see the module docs). Hits take the
/// read side of the lock (warm concurrent clients don't serialise on
/// each other); only inserts, evictions and `clear` take the write side.
pub struct PlanCache {
    inner: RwLock<CacheInner>,
    /// Monotonic use clock for LRU ordering.
    tick: AtomicU64,
    counters: CacheCounters,
    max_entries: usize,
    max_bytes: u64,
}

impl PlanCache {
    fn new(config: &EngineConfig, counters: CacheCounters) -> PlanCache {
        PlanCache {
            inner: RwLock::new(CacheInner {
                map: HashMap::new(),
                gov: ResourceGovernor::new(ResourceLimits::unlimited().with_max_memory(
                    // A zero-byte governor budget would trip on any
                    // charge; entry-cap-only caches get an open budget.
                    if config.cache_bytes == 0 {
                        u64::MAX
                    } else {
                        config.cache_bytes
                    },
                )),
            }),
            tick: AtomicU64::new(0),
            counters,
            max_entries: config.cache_entries,
            max_bytes: config.cache_bytes,
        }
    }

    /// Look up a plan, counting a hit or a miss and touching the LRU
    /// clock on hit. `stats_fp` is the statistics fingerprint the caller
    /// wants the plan optimized under (`0` for non-cost-based compiles).
    /// The optimizer trace recorded at insert time rides along on hits.
    pub fn get(
        &self,
        expr: &str,
        ctx_hash: u64,
        stats_fp: u64,
    ) -> Option<(Arc<CompiledQuery>, Option<OptimizerTrace>)> {
        if self.max_entries == 0 {
            self.counters.misses.inc();
            return None;
        }
        let inner = self.inner.read();
        match inner.map.get(&(expr.to_owned(), ctx_hash, stats_fp)) {
            Some(e) => {
                let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                e.last_used.store(tick, Ordering::Relaxed);
                self.counters.hits.inc();
                Some((e.plan.clone(), e.optimizer.clone()))
            }
            None => {
                self.counters.misses.inc();
                None
            }
        }
    }

    /// Insert a freshly compiled plan, evicting least-recently-used
    /// entries until both the entry cap and the byte budget hold. A plan
    /// heavier than the whole byte budget is not cached at all.
    pub fn insert(
        &self,
        expr: &str,
        ctx_hash: u64,
        stats_fp: u64,
        plan: Arc<CompiledQuery>,
        optimizer: Option<OptimizerTrace>,
    ) {
        if self.max_entries == 0 {
            return;
        }
        let bytes = plan_weight(&plan);
        if bytes > self.max_bytes {
            return;
        }
        let mut inner = self.inner.write();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        // Racing sessions may both miss and both compile; the second
        // insert wins and the first entry's charge is released.
        if let Some(old) = inner.map.remove(&(expr.to_owned(), ctx_hash, stats_fp)) {
            inner.gov.release(old.bytes);
        }
        // Evict until the entry cap and the byte budget both hold.
        while inner.map.len() >= self.max_entries
            || inner.gov.mem_used().saturating_add(bytes) > self.max_bytes
        {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.map.remove(&victim).expect("victim resident");
            inner.gov.release(evicted.bytes);
            self.counters.evictions.inc();
        }
        if !inner.gov.charge(bytes) {
            // Unreachable by construction (eviction made room), but a
            // failed charge must not corrupt the books.
            return;
        }
        inner.map.insert(
            (expr.to_owned(), ctx_hash, stats_fp),
            CacheEntry { plan, optimizer, bytes, last_used: AtomicU64::new(tick) },
        );
        self.counters.inserts.inc();
        self.counters.entries.set(inner.map.len() as u64);
        self.counters.bytes.set(inner.gov.mem_used());
    }

    /// Eagerly evict every entry whose statistics fingerprint is
    /// `stats_fp`, returning how many were dropped. Called at epoch
    /// publish: a plan optimized for superseded statistics would never
    /// be looked up again (the new fingerprint keys differently), so
    /// leaving it resident only wastes budget until LRU pressure finds
    /// it. Fingerprint `0` (store-independent plans) is never evicted —
    /// those plans remain valid across every epoch.
    pub fn evict_fingerprint(&self, stats_fp: u64) -> u64 {
        if stats_fp == 0 {
            return 0;
        }
        let mut inner = self.inner.write();
        let stale: Vec<(String, u64, u64)> =
            inner.map.keys().filter(|k| k.2 == stats_fp).cloned().collect();
        let count = stale.len() as u64;
        for key in stale {
            if let Some(e) = inner.map.remove(&key) {
                inner.gov.release(e.bytes);
                self.counters.stale_evictions.inc();
            }
        }
        self.counters.entries.set(inner.map.len() as u64);
        self.counters.bytes.set(inner.gov.mem_used());
        count
    }

    /// Current statistics (counters are lifetime totals; `entries`/
    /// `bytes` are the live residency).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read();
        CacheStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            evictions: self.counters.evictions.get(),
            stale_evictions: self.counters.stale_evictions.get(),
            inserts: self.counters.inserts.get(),
            entries: inner.map.len() as u64,
            bytes: inner.gov.mem_used(),
            bytes_high_water: inner.gov.high_water(),
        }
    }

    /// Drop every cached plan (counters keep their lifetime totals).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        let held: u64 = inner.map.values().map(|e| e.bytes).sum();
        inner.map.clear();
        inner.gov.release(held);
        self.counters.entries.set(0);
        self.counters.bytes.set(0);
    }
}

/// A counting semaphore gating concurrent query execution (admission
/// control). `max == 0` disables the gate.
struct Admission {
    max: usize,
    inflight: StdMutex<usize>,
    freed: Condvar,
}

/// An admission slot; releases on drop.
pub struct AdmitPermit<'a> {
    gate: Option<&'a Admission>,
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            let mut n = gate.inflight.lock().expect("admission mutex");
            *n -= 1;
            gate.freed.notify_one();
        }
    }
}

impl Admission {
    fn new(max: usize) -> Admission {
        Admission { max, inflight: StdMutex::new(0), freed: Condvar::new() }
    }

    /// Block until a slot frees up.
    fn admit(&self) -> AdmitPermit<'_> {
        if self.max == 0 {
            return AdmitPermit { gate: None };
        }
        let mut n = self.inflight.lock().expect("admission mutex");
        while *n >= self.max {
            n = self.freed.wait(n).expect("admission mutex");
        }
        *n += 1;
        AdmitPermit { gate: Some(self) }
    }

    /// A slot if one is free right now.
    fn try_admit(&self) -> Option<AdmitPermit<'_>> {
        if self.max == 0 {
            return Some(AdmitPermit { gate: None });
        }
        let mut n = self.inflight.lock().expect("admission mutex");
        if *n >= self.max {
            return None;
        }
        *n += 1;
        Some(AdmitPermit { gate: Some(self) })
    }
}

/// Epoch-related metric handles (detached when the engine carries no
/// telemetry, the `natix_store_epoch`/`natix_epoch_readers`/
/// `natix_index_repairs_total` series otherwise).
struct EpochMetrics {
    store_epoch: Gauge,
    epoch_readers: Gauge,
    index_repairs: Counter,
}

impl EpochMetrics {
    fn new(telemetry: Option<&Arc<Telemetry>>) -> EpochMetrics {
        match telemetry {
            Some(t) => EpochMetrics {
                store_epoch: t.metrics.store_epoch.clone(),
                epoch_readers: t.metrics.epoch_readers.clone(),
                index_repairs: t.metrics.index_repairs_total.clone(),
            },
            None => EpochMetrics {
                store_epoch: Gauge::default(),
                epoch_readers: Gauge::default(),
                index_repairs: Counter::default(),
            },
        }
    }
}

/// A registered document: the immutable snapshot readers share, plus
/// its epoch number (bumped on every publish).
struct DocEntry {
    doc: Arc<Document>,
    epoch: u64,
}

/// A reader's pin on one epoch snapshot: holds the `Arc<Document>` the
/// registry pointed at when the pin was taken, so concurrent commits
/// publish new epochs without disturbing this reader. Accounted in the
/// `natix_epoch_readers` gauge while alive.
pub struct PinnedDoc {
    doc: Arc<Document>,
    epoch: u64,
    readers: Gauge,
}

impl PinnedDoc {
    /// The pinned snapshot.
    pub fn doc(&self) -> &Arc<Document> {
        &self.doc
    }

    /// The epoch this pin captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for PinnedDoc {
    fn drop(&mut self) {
        self.readers.sub(1);
    }
}

/// The shared, thread-safe engine: document registry, telemetry, plan
/// cache, admission gate. Wrap it in an [`Arc`] and mint a [`Session`]
/// per client; everything on the engine is interior-mutable and safe
/// under concurrent sessions.
pub struct Engine {
    config: EngineConfig,
    telemetry: Option<Arc<Telemetry>>,
    plan_cache: PlanCache,
    admission: Admission,
    documents: RwLock<HashMap<String, DocEntry>>,
    /// Names with an open [`WriteBatch`] (single writer per document).
    writers: Mutex<HashSet<String>>,
    epoch_metrics: EpochMetrics,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("cache", &self.plan_cache.stats())
            .field("documents", &self.documents.read().len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// An engine with the default configuration and no telemetry.
    pub fn new() -> Arc<Engine> {
        Engine::with_config(EngineConfig::default(), None)
    }

    /// An engine with an explicit configuration and optional telemetry
    /// bundle. With telemetry, the plan-cache counters are the
    /// registry's `natix_plan_cache_*` series; without, they are
    /// detached (still queryable through [`Engine::cache_stats`]).
    pub fn with_config(config: EngineConfig, telemetry: Option<Arc<Telemetry>>) -> Arc<Engine> {
        let counters = match &telemetry {
            Some(t) => CacheCounters::registered(t),
            None => CacheCounters::detached(),
        };
        Arc::new(Engine {
            plan_cache: PlanCache::new(&config, counters),
            admission: Admission::new(config.max_concurrent),
            documents: RwLock::new(HashMap::new()),
            writers: Mutex::new(HashSet::new()),
            epoch_metrics: EpochMetrics::new(telemetry.as_ref()),
            telemetry,
            config,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The telemetry bundle, if attached.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Mint a session with default options (improved translation,
    /// unlimited budget).
    pub fn session(self: &Arc<Engine>) -> Session {
        Session {
            engine: self.clone(),
            options: TranslateOptions::improved(),
            limits: ResourceLimits::unlimited(),
        }
    }

    /// Register a document under `name`, returning the shared handle.
    /// Re-registering a name replaces the previous document and bumps
    /// its epoch (readers pinned on the old snapshot keep it alive).
    pub fn register_document(&self, name: &str, doc: Document) -> Arc<Document> {
        let doc = Arc::new(doc);
        let mut docs = self.documents.write();
        let epoch = docs.get(name).map_or(1, |e| e.epoch + 1);
        docs.insert(name.to_owned(), DocEntry { doc: doc.clone(), epoch });
        self.epoch_metrics.store_epoch.set(epoch);
        doc
    }

    /// Look up a registered document (its current epoch snapshot).
    pub fn document(&self, name: &str) -> Option<Arc<Document>> {
        self.documents.read().get(name).map(|e| e.doc.clone())
    }

    /// The current epoch of a registered document.
    pub fn document_epoch(&self, name: &str) -> Option<u64> {
        self.documents.read().get(name).map(|e| e.epoch)
    }

    /// Pin the current epoch snapshot of `name` for reading: the
    /// returned guard keeps that snapshot (and its epoch number) stable
    /// for its lifetime no matter how many commits publish in the
    /// meantime, and is counted in the `natix_epoch_readers` gauge.
    pub fn pin(&self, name: &str) -> Option<PinnedDoc> {
        let docs = self.documents.read();
        let entry = docs.get(name)?;
        let readers = self.epoch_metrics.epoch_readers.clone();
        readers.add(1);
        Some(PinnedDoc { doc: entry.doc.clone(), epoch: entry.epoch, readers })
    }

    /// Names of all registered documents (sorted).
    pub fn document_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.documents.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Plan-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// The plan cache itself (tests hand-drive eviction sequences).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Block until the admission gate grants a slot.
    pub fn admit(&self) -> AdmitPermit<'_> {
        self.admission.admit()
    }

    /// A slot if the gate has one free right now (`None` = saturated).
    pub fn try_admit(&self) -> Option<AdmitPermit<'_>> {
        self.admission.try_admit()
    }

    /// Open a [`WriteBatch`] on `name` with an unlimited budget and no
    /// fault injection. See [`Engine::write_batch_with`].
    pub fn write_batch(self: &Arc<Engine>, name: &str) -> Result<WriteBatch, NatixError> {
        self.write_batch_with(
            name,
            ResourceLimits::unlimited(),
            FailPoint::none(),
            RepairFailPoint::none(),
        )
    }

    /// Open a write batch on the registered arena document `name`: a
    /// private clone of the current snapshot that absorbs updates while
    /// readers keep the published epoch. One writer per document —
    /// a second concurrent batch is refused with
    /// [`UpdateError::WriterConflict`]. Disk-backed documents are
    /// immutable snapshots ([`UpdateError::ImmutableSnapshot`]).
    ///
    /// The batch runs under a [`ResourceGovernor`] built from `limits`
    /// and `failpoint` (alloc-failure/cancellation injection); the
    /// `repair_failpoint` aborts the Nth structural-index repair inside
    /// the working store. Any injected fault poisons the batch: commit
    /// is refused and the working clone is discarded whole.
    pub fn write_batch_with(
        self: &Arc<Engine>,
        name: &str,
        limits: ResourceLimits,
        failpoint: FailPoint,
        repair_failpoint: RepairFailPoint,
    ) -> Result<WriteBatch, NatixError> {
        if !self.writers.lock().insert(name.to_owned()) {
            return Err(UpdateError::WriterConflict(name.to_owned()).into());
        }
        // Writer slot held from here: every early return must release it.
        let release = |engine: &Engine| {
            engine.writers.lock().remove(name);
        };
        let (working, base_epoch) = {
            let docs = self.documents.read();
            let Some(entry) = docs.get(name) else {
                release(self);
                return Err(UpdateError::UnknownDocument(name.to_owned()).into());
            };
            match &*entry.doc {
                Document::Arena(a) => (a.clone(), entry.epoch),
                Document::Disk(_) => {
                    release(self);
                    return Err(UpdateError::ImmutableSnapshot.into());
                }
            }
        };
        let mut working = working;
        working.set_repair_failpoint(repair_failpoint);
        let base_repairs = working.repair_stats();
        Ok(WriteBatch {
            engine: self.clone(),
            name: name.to_owned(),
            base_epoch,
            base_repairs,
            working: Some(working),
            gov: Arc::new(ResourceGovernor::with_failpoint(limits, failpoint)),
            charged: 0,
            ops: 0,
            poisoned: false,
            resolved: false,
        })
    }
}

/// What a committed write batch published.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The epoch the new snapshot was published under.
    pub epoch: u64,
    /// Update operations the batch applied.
    pub ops: u64,
    /// Structural-index repair work this batch's ops required.
    pub repairs: RepairStats,
    /// Plan-cache entries eagerly evicted because their statistics
    /// fingerprint was superseded by this publish.
    pub stale_plans_evicted: u64,
}

/// A single-writer batch of updates against a private clone of one
/// registered arena document (see the module docs). Mirrors the
/// [`ArenaStore`] update API, plus XPath target selection; commit
/// publishes the clone as the next epoch snapshot, abort (or drop)
/// discards it — readers never observe an intermediate state.
///
/// Budgeting: every op ticks and charges the batch's governor (op cost
/// = a fixed overhead plus the payload length); commit and abort both
/// release the whole charge, so `governor().transient_bytes() == 0`
/// once the batch resolves — the no-leak invariant the fault-injection
/// suite asserts under injected alloc failures, cancellation and
/// repair aborts.
pub struct WriteBatch {
    engine: Arc<Engine>,
    name: String,
    base_epoch: u64,
    base_repairs: RepairStats,
    /// `None` only after commit moved the store out (drop runs after).
    working: Option<ArenaStore>,
    gov: Arc<ResourceGovernor>,
    charged: u64,
    ops: u64,
    poisoned: bool,
    resolved: bool,
}

impl std::fmt::Debug for WriteBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteBatch")
            .field("doc", &self.name)
            .field("base_epoch", &self.base_epoch)
            .field("ops", &self.ops)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

/// Fixed accounting overhead per update op (node record + index splice).
const OP_BASE_COST: u64 = 64;

impl WriteBatch {
    /// The document this batch writes.
    pub fn doc_name(&self) -> &str {
        &self.name
    }

    /// The epoch the working clone was taken from.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Ops applied so far.
    pub fn ops_applied(&self) -> u64 {
        self.ops
    }

    /// Whether an earlier op failed (only rollback is possible).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The batch's governor (fault tests assert `transient_bytes() == 0`
    /// after the batch resolves).
    pub fn governor(&self) -> Arc<ResourceGovernor> {
        self.gov.clone()
    }

    /// The private working store (reads see this batch's uncommitted
    /// updates; published readers do not).
    pub fn store(&self) -> &ArenaStore {
        self.working.as_ref().expect("batch not yet resolved")
    }

    /// Switch the working store's index-repair mode (benchmark harness;
    /// [`xmlstore::RepairMode::Incremental`] is the default).
    pub fn set_repair_mode(&mut self, mode: xmlstore::RepairMode) {
        if let Some(w) = self.working.as_mut() {
            w.set_repair_mode(mode);
        }
    }

    /// Evaluate an XPath expression against the working store and
    /// return the matched node-set (scalar results are a
    /// [`UpdateError::TargetNotFound`] — update targets are nodes).
    pub fn select(&self, xpath: &str) -> Result<Vec<NodeId>, NatixError> {
        if self.poisoned {
            return Err(UpdateError::BatchPoisoned.into());
        }
        let out = nqe::evaluate_governed(
            self.store(),
            xpath,
            &TranslateOptions::improved(),
            self.gov.limits(),
            self.store().root(),
            &HashMap::new(),
        )?;
        match out {
            QueryOutput::Nodes(ns) => Ok(ns),
            _ => Err(UpdateError::TargetNotFound(xpath.to_owned()).into()),
        }
    }

    /// The first node (document order) matched by `xpath`;
    /// [`UpdateError::TargetNotFound`] when the selection is empty.
    pub fn select_one(&self, xpath: &str) -> Result<NodeId, NatixError> {
        self.select(xpath)?
            .into_iter()
            .next()
            .ok_or_else(|| UpdateError::TargetNotFound(xpath.to_owned()).into())
    }

    /// Tick + charge the governor for one op; a trip poisons the batch.
    fn account(&mut self, cost: u64) -> Result<(), NatixError> {
        let ok = self.gov.tick() && self.gov.check_now() && self.gov.charge(cost);
        if !ok {
            self.poisoned = true;
            return Err(NatixError::Resource(self.gov.error().unwrap_or(QueryError::Cancelled)));
        }
        self.charged += cost;
        Ok(())
    }

    /// Run one update op under accounting; any failure poisons the batch
    /// (later ops get [`UpdateError::BatchPoisoned`], only rollback
    /// remains).
    fn apply<T>(
        &mut self,
        cost: u64,
        f: impl FnOnce(&mut ArenaStore) -> Result<T, UpdateError>,
    ) -> Result<T, NatixError> {
        if self.poisoned {
            return Err(UpdateError::BatchPoisoned.into());
        }
        self.account(OP_BASE_COST + cost)?;
        let w = self.working.as_mut().expect("batch not yet resolved");
        match f(w) {
            Ok(v) => {
                self.ops += 1;
                Ok(v)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e.into())
            }
        }
    }

    /// Replace the content of a text/comment/PI/attribute node.
    pub fn set_content(&mut self, n: NodeId, content: &str) -> Result<(), NatixError> {
        self.apply(content.len() as u64, |w| w.set_content(n, content))
    }

    /// Set (or add) an attribute on an element.
    pub fn set_attribute(
        &mut self,
        element: NodeId,
        name: &str,
        value: &str,
    ) -> Result<NodeId, NatixError> {
        self.apply((name.len() + value.len()) as u64, |w| w.set_attribute(element, name, value))
    }

    /// Append a new element as the last child of `parent`.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> Result<NodeId, NatixError> {
        self.apply(name.len() as u64, |w| w.append_element(parent, name))
    }

    /// Append a new text node as the last child of `parent`.
    pub fn append_text(&mut self, parent: NodeId, content: &str) -> Result<NodeId, NatixError> {
        self.apply(content.len() as u64, |w| w.append_text(parent, content))
    }

    /// Insert a new element immediately before `sibling`.
    pub fn insert_element_before(
        &mut self,
        sibling: NodeId,
        name: &str,
    ) -> Result<NodeId, NatixError> {
        self.apply(name.len() as u64, |w| w.insert_element_before(sibling, name))
    }

    /// Detach the subtree rooted at `n`.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<(), NatixError> {
        self.apply(0, |w| w.remove_subtree(n))
    }

    /// Remove an attribute from its element.
    pub fn remove_attribute(&mut self, element: NodeId, name: &str) -> Result<bool, NatixError> {
        self.apply(name.len() as u64, |w| w.remove_attribute(element, name))
    }

    /// Relocate the subtree rooted at `n` under `new_parent`.
    pub fn move_subtree(&mut self, n: NodeId, new_parent: NodeId) -> Result<(), NatixError> {
        self.apply(0, |w| w.move_subtree(n, new_parent))
    }

    /// Publish the working store as the document's next epoch snapshot.
    /// All-or-nothing: a poisoned batch refuses to commit (the caller
    /// sees the injected/typed failure, readers never see the clone),
    /// and the swap itself is a single registry write — concurrent
    /// readers observe either the old epoch or the new one, never a mix.
    pub fn commit(mut self) -> Result<CommitReceipt, NatixError> {
        if self.poisoned {
            return Err(UpdateError::BatchPoisoned.into());
        }
        let working = self.working.take().expect("batch not yet resolved");
        let end = working.repair_stats();
        let repairs = RepairStats {
            incremental: end.incremental - self.base_repairs.incremental,
            relabels: end.relabels - self.base_repairs.relabels,
            full_renumbers: end.full_renumbers - self.base_repairs.full_renumbers,
        };
        let new_fp = working.structural_index().map_or(0, |i| i.stats().fingerprint);
        let new_doc = Arc::new(Document::Arena(working));
        let published = {
            let mut docs = self.engine.documents.write();
            match docs.get_mut(&self.name) {
                // The document was dropped from the registry while the
                // batch ran; nothing to publish onto.
                None => None,
                Some(entry) => {
                    let old_fp =
                        entry.doc.store().structural_index().map_or(0, |i| i.stats().fingerprint);
                    entry.doc = new_doc;
                    entry.epoch += 1;
                    Some((entry.epoch, old_fp))
                }
            }
        };
        let Some((epoch, old_fp)) = published else {
            self.resolve();
            return Err(UpdateError::UnknownDocument(self.name.clone()).into());
        };
        self.engine.epoch_metrics.store_epoch.set(epoch);
        self.engine
            .epoch_metrics
            .index_repairs
            .add(repairs.incremental + repairs.relabels + repairs.full_renumbers);
        let stale_plans_evicted = if old_fp != new_fp {
            self.engine.plan_cache.evict_fingerprint(old_fp)
        } else {
            0
        };
        self.resolve();
        Ok(CommitReceipt { epoch, ops: self.ops, repairs, stale_plans_evicted })
    }

    /// Discard the working store; the published snapshot is untouched.
    pub fn abort(mut self) {
        self.working = None;
        self.resolve();
    }

    /// Release the writer slot and the governor charge (idempotent;
    /// commit, abort and drop all funnel here).
    fn resolve(&mut self) {
        if self.resolved {
            return;
        }
        self.resolved = true;
        self.engine.writers.lock().remove(&self.name);
        self.gov.release(self.charged);
        self.charged = 0;
    }
}

impl Drop for WriteBatch {
    fn drop(&mut self) {
        self.resolve();
    }
}

/// A per-client session: translation options + resource limits over a
/// shared [`Engine`]. Cloning a session shares the engine but copies the
/// client-local state — the natural way to fan a connection's settings
/// out to a worker. The evaluation surface mirrors
/// [`crate::XPathEngine`] so the CLI and REPL drive either.
#[derive(Clone)]
pub struct Session {
    engine: Arc<Engine>,
    /// Translation options (improved by default). Part of the plan-cache
    /// key: changing them mid-session simply keys into other entries.
    pub options: TranslateOptions,
    /// Per-query execution budget, enforced on every evaluation and part
    /// of the plan-cache key.
    pub limits: ResourceLimits,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("options", &self.options)
            .field("limits", &self.limits)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// This session with a resource budget (builder style).
    pub fn with_limits(mut self, limits: ResourceLimits) -> Session {
        self.limits = limits;
        self
    }

    /// This session with explicit translation options (builder style).
    pub fn with_options(mut self, options: TranslateOptions) -> Session {
        self.options = options;
        self
    }

    /// This session with a worker-thread count for intra-query parallel
    /// execution (`1` = serial, `0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Session {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        self.options = self.options.with_threads(threads);
        self
    }

    fn ctx_hash(&self) -> u64 {
        static_context_hash(&self.options, &self.limits)
    }

    /// Resolve `query` through the plan cache: on a hit the returned
    /// trace carries no compile phases (nothing was compiled); on a miss
    /// the query is compiled with full phase tracing and the plan is
    /// inserted. Compile errors are *not* cached — a mistyped query
    /// costs a compile each time but can never poison the cache.
    ///
    /// Store-statistics-free variant: with `CostMode::CostBased` the
    /// cost pass needs the target store's statistics, so this compiles
    /// (and keys the cache) as if no statistics were available —
    /// fingerprint `0`, historical plan shape. Store-bound evaluation
    /// goes through [`Session::compile_cached_for`].
    pub fn compile_cached(
        &self,
        query: &str,
    ) -> Result<(Arc<CompiledQuery>, QueryTrace, bool), NatixError> {
        self.compile_cached_with_stats(query, None)
    }

    /// [`Session::compile_cached`] against a concrete store: the store's
    /// statistics feed the cost-based optimizer and their fingerprint
    /// becomes part of the cache key.
    pub fn compile_cached_for(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(Arc<CompiledQuery>, QueryTrace, bool), NatixError> {
        self.compile_cached_with_stats(query, store.structural_index().map(|idx| idx.stats()))
    }

    fn compile_cached_with_stats(
        &self,
        query: &str,
        stats: Option<&StoreStats>,
    ) -> Result<(Arc<CompiledQuery>, QueryTrace, bool), NatixError> {
        let hash = self.ctx_hash();
        let stats_fp = if compiler::cost_active(&self.options, stats) {
            stats.map_or(0, |s| s.fingerprint)
        } else {
            0
        };
        if let Some((plan, optimizer)) = self.engine.plan_cache.get(query, hash, stats_fp) {
            let mut trace =
                QueryTrace { query: query.to_owned(), optimizer, ..QueryTrace::default() };
            trace.record_plan(&plan);
            return Ok((plan, trace, true));
        }
        let (compiled, trace) = compiler::compile_traced_with_stats(query, &self.options, stats)?;
        let plan = Arc::new(compiled);
        self.engine
            .plan_cache
            .insert(query, hash, stats_fp, plan.clone(), trace.optimizer.clone());
        Ok((plan, trace, false))
    }

    /// The telemetry-integrated execution core shared by every session
    /// entry point: admission, cached compile, governed execution,
    /// registry fold.
    fn observe(
        &self,
        store: &dyn XmlStore,
        query: &str,
        ctx: NodeId,
        vars: &HashMap<String, Value>,
        profiled: bool,
    ) -> Result<(Result<QueryOutput, QueryError>, AnalyzeReport), NatixError> {
        let _permit = self.engine.admit();
        let t0 = Instant::now();
        let (plan, trace, _hit) = match self.compile_cached_for(store, query) {
            Ok(v) => v,
            Err(e) => {
                if let Some(t) = &self.engine.telemetry {
                    t.record_compile_error(query, t0.elapsed(), &e.to_string());
                }
                return Err(e);
            }
        };
        let (out, report) =
            nqe::execute_observed(store, &plan, trace, &self.limits, ctx, vars, profiled);
        if let Some(t) = &self.engine.telemetry {
            t.record_query(t0.elapsed(), &report, out.as_ref().err());
        }
        Ok((out, report))
    }

    fn wants_profile(&self) -> bool {
        self.engine.telemetry.as_ref().is_some_and(|t| t.wants_profile())
    }

    /// Compile and execute with the document node as context.
    pub fn evaluate(&self, store: &dyn XmlStore, query: &str) -> Result<QueryOutput, NatixError> {
        self.evaluate_with(store, query, store.root(), &HashMap::new())
    }

    /// Compile and execute with explicit context node and variables.
    pub fn evaluate_with(
        &self,
        store: &dyn XmlStore,
        query: &str,
        ctx: NodeId,
        vars: &HashMap<String, Value>,
    ) -> Result<QueryOutput, NatixError> {
        let (out, _) = self.observe(store, query, ctx, vars, self.wants_profile())?;
        Ok(out?)
    }

    /// Render the query plan in the paper's operator notation.
    pub fn explain(&self, query: &str) -> Result<String, NatixError> {
        let (plan, _, _) = self.compile_cached(query)?;
        Ok(match &*plan {
            CompiledQuery::Sequence(p) => algebra::explain::explain(p),
            CompiledQuery::Scalar(s) => format!("scalar: {s}\n"),
        })
    }

    /// Execute with per-operator profiling; returns the result and the
    /// rendered profile report.
    pub fn profile(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(QueryOutput, String), NatixError> {
        let (out, report) = self.observe(store, query, store.root(), &HashMap::new(), true)?;
        Ok((out?, report.profile.report()))
    }

    /// EXPLAIN ANALYZE through the session (plan-cache hits report no
    /// compile phases — the plan came from the cache).
    pub fn analyze(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(QueryOutput, AnalyzeReport), NatixError> {
        let (out, report) = self.analyze_governed(store, query)?;
        Ok((out?, report))
    }

    /// EXPLAIN ANALYZE keeping the report when execution stops on a
    /// governor trip (outer error = compile, inner = execution).
    pub fn analyze_governed(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(Result<QueryOutput, QueryError>, AnalyzeReport), NatixError> {
        self.observe(store, query, store.root(), &HashMap::new(), true)
    }

    /// Compile (or fetch) and execute with phase tracing only.
    pub fn evaluate_traced(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(QueryOutput, QueryTrace), NatixError> {
        let (out, report) =
            self.observe(store, query, store.root(), &HashMap::new(), self.wants_profile())?;
        Ok((out?, report.trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_hash_discriminates() {
        let base = TranslateOptions::improved();
        let unlimited = ResourceLimits::unlimited();
        let h = static_context_hash(&base, &unlimited);
        assert_eq!(h, static_context_hash(&base, &unlimited), "deterministic");
        assert_ne!(h, static_context_hash(&TranslateOptions::canonical(), &unlimited));
        assert_ne!(h, static_context_hash(&TranslateOptions::cost_based(), &unlimited));
        assert_ne!(h, static_context_hash(&base.with_threads(4), &unlimited));
        assert_ne!(h, static_context_hash(&base, &unlimited.with_max_tuples(10)));
        assert_ne!(h, static_context_hash(&base, &unlimited.with_max_parse_depth(5)));
    }

    #[test]
    fn session_evaluates_and_caches() {
        let doc = Document::parse("<a><b>x</b></a>").unwrap();
        let engine = Engine::new();
        let s = engine.session();
        assert_eq!(s.evaluate(doc.store(), "string(/a/b)").unwrap(), QueryOutput::Str("x".into()));
        assert_eq!(s.evaluate(doc.store(), "string(/a/b)").unwrap(), QueryOutput::Str("x".into()));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn admission_gate_counts() {
        let engine = Engine::with_config(
            EngineConfig { max_concurrent: 1, ..EngineConfig::default() },
            None,
        );
        let p1 = engine.try_admit().expect("first slot");
        assert!(engine.try_admit().is_none(), "gate of 1 is saturated");
        drop(p1);
        assert!(engine.try_admit().is_some(), "slot released on drop");
    }
}
