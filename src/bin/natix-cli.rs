//! `natix-cli` — load an XML document and run XPath queries against it.
//!
//! ```sh
//! natix-cli doc.xml "/a/b[position() = last()]"     # one-shot query
//! natix-cli doc.xml --explain "//a[b = 'x']"        # show the algebra plan
//! natix-cli doc.xml --analyze "//a[b = 'x']"        # EXPLAIN ANALYZE
//! natix-cli doc.xml --interactive                   # REPL
//! natix-cli --generate tree:5000 --interactive      # built-in generators
//! natix-cli doc.xml --persist doc.natix             # build a page file
//! natix-cli doc.natix --verify-store                # full integrity check
//! ```
//!
//! Exit codes distinguish failure classes so scripts can react: 0 ok,
//! 1 query failure, 2 usage, 3 XML parse error, 4 I/O error, 5 corrupt
//! store (the one-line diagnostic carries page/slot coordinates).

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use natix::parse_duration;
use natix::service::{apply_limits_directive, render_limits, serve_stdio, serve_tcp};
use natix::{
    parse_limits_of, parse_mem_size, verify_store, Document, Engine, EngineConfig, Json,
    NatixError, QueryLogger, QueryOutput, QueryService, ResourceLimits, ServiceConfig, Session,
    Telemetry, TranslateOptions,
};
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};
use xmlstore::XmlStore;

/// Exit code for usage errors (bad flags, missing document).
const EXIT_USAGE: i32 = 2;
/// Exit code for XML parse failures.
const EXIT_PARSE: i32 = 3;
/// Exit code for I/O failures.
const EXIT_IO: i32 = 4;
/// Exit code for detected store corruption.
const EXIT_CORRUPT: i32 = 5;

/// Map a typed error to its exit code (query failures — compile errors
/// and governor trips — stay at 1).
fn exit_code(e: &NatixError) -> i32 {
    match e {
        NatixError::Xml(_) => EXIT_PARSE,
        NatixError::Disk(d) if d.is_corrupt() => EXIT_CORRUPT,
        NatixError::Disk(_) => EXIT_IO,
        NatixError::Compile(_) | NatixError::Resource(_) | NatixError::Update(_) => 1,
    }
}

struct Args {
    source: Option<String>,
    generate: Option<String>,
    persist: Option<String>,
    verify_store: bool,
    explain: bool,
    analyze: bool,
    profile_json: Option<String>,
    interactive: bool,
    canonical: bool,
    extended: bool,
    cost_based: bool,
    time: bool,
    threads: usize,
    limits: ResourceLimits,
    metrics_out: Option<String>,
    query_log: Option<String>,
    slow_ms: Option<u64>,
    serve: Option<String>,
    workers: usize,
    queue_depth: usize,
    cache_entries: usize,
    cache_bytes: u64,
    queries: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        source: None,
        generate: None,
        persist: None,
        verify_store: false,
        explain: false,
        analyze: false,
        profile_json: None,
        interactive: false,
        canonical: false,
        extended: false,
        cost_based: false,
        time: false,
        threads: 1,
        limits: ResourceLimits::unlimited(),
        metrics_out: None,
        query_log: None,
        slow_ms: None,
        serve: None,
        workers: 4,
        queue_depth: 64,
        cache_entries: 256,
        cache_bytes: 8 << 20,
        queries: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => args.explain = true,
            "--analyze" => args.analyze = true,
            "--profile-json" => {
                args.profile_json = Some(it.next().ok_or("--profile-json needs a path")?);
            }
            "--interactive" | "-i" => args.interactive = true,
            "--canonical" => args.canonical = true,
            "--extended" => args.extended = true,
            "--cost-based" => args.cost_based = true,
            "--time" => args.time = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count (0 = all cores)")?;
                args.threads = parse_threads(&v)?;
            }
            "--max-mem" => {
                let v = it.next().ok_or("--max-mem needs a size (e.g. 16MiB)")?;
                args.limits.max_memory_bytes = Some(parse_mem_size(&v)?);
            }
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs a duration (e.g. 500ms)")?;
                args.limits.timeout = Some(parse_duration(&v)?);
            }
            "--max-tuples" => {
                let v = it.next().ok_or("--max-tuples needs a count")?;
                args.limits.max_tuples =
                    Some(v.parse().map_err(|_| format!("--max-tuples: `{v}` is not a number"))?);
            }
            "--generate" => {
                args.generate = Some(it.next().ok_or("--generate needs a spec")?);
            }
            "--persist" => {
                args.persist = Some(it.next().ok_or("--persist needs a path")?);
            }
            "--verify-store" => args.verify_store = true,
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--query-log" => {
                args.query_log = Some(it.next().ok_or("--query-log needs a path")?);
            }
            "--slow-ms" => {
                let v = it.next().ok_or("--slow-ms needs a millisecond threshold")?;
                args.slow_ms =
                    Some(v.parse().map_err(|_| format!("--slow-ms: `{v}` is not a number"))?);
            }
            "--serve" => {
                args.serve = Some(it.next().ok_or("--serve needs `stdio` or an address")?);
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                args.workers =
                    v.parse().map_err(|_| format!("--workers: `{v}` is not a number"))?;
            }
            "--queue-depth" => {
                let v = it.next().ok_or("--queue-depth needs a count")?;
                args.queue_depth =
                    v.parse().map_err(|_| format!("--queue-depth: `{v}` is not a number"))?;
            }
            "--cache-entries" => {
                let v = it.next().ok_or("--cache-entries needs a count (0 disables)")?;
                args.cache_entries =
                    v.parse().map_err(|_| format!("--cache-entries: `{v}` is not a number"))?;
            }
            "--cache-bytes" => {
                let v = it.next().ok_or("--cache-bytes needs a size (e.g. 8MiB)")?;
                args.cache_bytes = parse_mem_size(&v)?;
            }
            "--max-depth" => {
                let v = it.next().ok_or("--max-depth needs a count")?;
                args.limits.max_parse_depth =
                    Some(v.parse().map_err(|_| format!("--max-depth: `{v}` is not a number"))?);
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if args.source.is_none() && args.generate.is_none() {
                    args.source = Some(other.to_owned());
                } else {
                    args.queries.push(other.to_owned());
                }
            }
        }
    }
    Ok(args)
}

/// Parse a `--threads`/`:threads` count; `0` means "all cores".
fn parse_threads(v: &str) -> Result<usize, String> {
    let n: usize = v.parse().map_err(|_| format!("threads: `{v}` is not a number"))?;
    Ok(if n == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        n
    })
}

fn print_help() {
    println!(
        "natix-cli — algebraic XPath 1.0 processing\n\n\
         usage: natix-cli <doc.xml | doc.natix> [flags] [queries…]\n\
         \x20      natix-cli --generate tree:N|dblp:N [flags] [queries…]\n\n\
         flags:\n\
         \x20 --interactive, -i    query REPL (`:explain`, `:profile`, `:analyze`)\n\
         \x20 --explain            print the algebra plan instead of evaluating\n\
         \x20 --analyze            EXPLAIN ANALYZE: run with compile-phase and\n\
         \x20                      per-operator timings, counters and gauges\n\
         \x20 --profile-json <p>   write the EXPLAIN ANALYZE reports as JSON\n\
         \x20                      (an array, one element per query)\n\
         \x20 --canonical          use the canonical §3 translation\n\
         \x20 --extended           improved translation + property pruning\n\
         \x20 --cost-based         improved + per-query cost-based selection of\n\
         \x20                      translation alternatives from store statistics\n\
         \x20 --time               print compile-phase + evaluation times\n\
         \x20 --threads <n>        worker threads for parallel execution\n\
         \x20                      (1 = serial, 0 = all cores; see DESIGN.md §14)\n\
         \x20 --max-mem <size>     memory budget per query (16MiB, 512k, 1g, …)\n\
         \x20 --timeout <dur>      deadline per query (500ms, 2s, 1m, …)\n\
         \x20 --max-tuples <n>     cap on materialized tuples per query\n\
         \x20 --max-depth <n>      cap on XML nesting depth at parse time\n\
         \x20 --metrics-out <p>    write the Prometheus-style metrics exposition\n\
         \x20                      on exit (engine-wide counters/histograms)\n\
         \x20 --query-log <p>      append one JSON record per query (JSONL)\n\
         \x20 --slow-ms <n>        slow-query threshold: mark offenders in the\n\
         \x20                      query log and capture their EXPLAIN ANALYZE\n\
         \x20 --serve <addr>       serving mode: line protocol over TCP loopback\n\
         \x20                      (e.g. 127.0.0.1:4000) or `stdio`; one response\n\
         \x20                      line per request (see README)\n\
         \x20 --workers <n>        worker threads of the serving pool (default 4)\n\
         \x20 --queue-depth <n>    admission bound of the serving queue: beyond\n\
         \x20                      this many waiting queries, submissions are\n\
         \x20                      rejected with `ERR admission queue full`\n\
         \x20 --cache-entries <n>  compiled-plan cache capacity in plans\n\
         \x20                      (default 256; 0 disables the cache)\n\
         \x20 --cache-bytes <sz>   compiled-plan cache byte budget (default 8MiB)\n\
         \x20 --persist <path>     write the document as a Natix page file\n\
         \x20 --verify-store       full integrity check of a .natix file\n\
         \x20                      (page checksums, node records, links,\n\
         \x20                      name dictionary, string chains)\n\
         \x20 --generate <spec>    tree:<elements> or dblp:<records>\n\n\
         exit status: 0 on success, 1 if any query failed (compile error or\n\
         resource governor trip), 2 on usage errors, 3 on XML parse errors,\n\
         4 on I/O errors, 5 on detected store corruption."
    );
}

/// Load the document, classifying failures for the exit code:
/// usage problems (bad spec, no document) are [`EXIT_USAGE`], everything
/// else maps through [`exit_code`].
fn load(args: &Args) -> Result<Document, (i32, String)> {
    let usage = |m: String| (EXIT_USAGE, m);
    if let Some(spec) = &args.generate {
        let (kind, n) =
            spec.split_once(':').ok_or_else(|| usage("generate spec is kind:N".into()))?;
        let n: usize = n.parse().map_err(|_| usage("generate count must be a number".into()))?;
        return Ok(match kind {
            "tree" => Document::Arena(generate_tree(if n <= 8000 {
                TreeParams::small(n)
            } else {
                TreeParams::large(n)
            })),
            "dblp" => Document::Arena(generate_dblp(DblpParams { records: n, seed: 42 })),
            other => return Err(usage(format!("unknown generator `{other}`"))),
        });
    }
    let path = args
        .source
        .as_ref()
        .ok_or_else(|| usage("no document given (see --help)".into()))?;
    if path.ends_with(".natix") {
        return Document::open(std::path::Path::new(path), 256)
            .map_err(|e| (exit_code(&e), e.to_string()));
    }
    let xml = std::fs::read_to_string(path).map_err(|e| (EXIT_IO, format!("{path}: {e}")))?;
    Document::parse_with_limits(&xml, &parse_limits_of(&args.limits))
        .map_err(|e| (exit_code(&e), e.to_string()))
}

fn render(store: &dyn XmlStore, out: &QueryOutput) -> String {
    match out {
        QueryOutput::Nodes(ns) => {
            let mut s = format!("{} node(s)", ns.len());
            for &n in ns.iter().take(20) {
                let name = store.node_name(n);
                let text = store.string_value(n);
                let text = if text.chars().count() > 60 {
                    let prefix: String = text.chars().take(57).collect();
                    format!("{prefix}…")
                } else {
                    text
                };
                s.push_str(&format!("\n  <{name}> {text}"));
            }
            if ns.len() > 20 {
                s.push_str(&format!("\n  … and {} more", ns.len() - 20));
            }
            s
        }
        QueryOutput::Bool(b) => format!("boolean: {b}"),
        QueryOutput::Num(n) => format!("number: {n}"),
        QueryOutput::Str(s) => format!("string: \"{s}\""),
    }
}

/// Report a failed query and return its exit code.
fn report(e: &NatixError) -> i32 {
    eprintln!("error: {e}");
    exit_code(e)
}

/// Run one query through the selected mode. Returns 0 on success, or the
/// exit code of the failure (1 for compile errors and governor trips, 4/5
/// for storage faults) so the process can exit with the worst class.
fn run_query(
    doc: &Document,
    engine: &Session,
    q: &str,
    explain: bool,
    analyze: bool,
    time: bool,
    json_out: Option<&mut Vec<Json>>,
) -> i32 {
    if explain {
        return match engine.explain(q) {
            Ok(plan) => {
                print!("{plan}");
                0
            }
            Err(e) => report(&e),
        };
    }
    if analyze || json_out.is_some() {
        // Keep the report even when the governor stops the query: the
        // per-operator charge gauges show where the budget went.
        return match engine.analyze_governed(doc.store(), q) {
            Ok((out, report_)) => {
                let code = match &out {
                    Ok(out) => {
                        println!("{}", render(doc.store(), out));
                        0
                    }
                    Err(e) => report(&NatixError::from(e.clone())),
                };
                if analyze {
                    print!("{}", report_.text());
                }
                if let Some(reports) = json_out {
                    reports.push(report_.to_json());
                }
                code
            }
            Err(e) => report(&e),
        };
    }
    if time {
        // Phase-level tracing only: no per-operator profiling overhead.
        return match engine.evaluate_traced(doc.store(), q) {
            Ok((out, trace)) => {
                println!("{}", render(doc.store(), &out));
                print!("{}", trace.report());
                0
            }
            Err(e) => report(&e),
        };
    }
    let result: Result<QueryOutput, NatixError> = engine.evaluate(doc.store(), q);
    match result {
        Ok(out) => {
            println!("{}", render(doc.store(), &out));
            0
        }
        Err(e) => report(&e),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_USAGE);
        }
    };
    if args.verify_store {
        // Integrity-check mode: no document load, no queries.
        let Some(path) = &args.source else {
            eprintln!("error: --verify-store needs a .natix file");
            std::process::exit(EXIT_USAGE);
        };
        match verify_store(std::path::Path::new(path), 256) {
            Ok(r) => {
                println!(
                    "{path}: ok — {} page(s), {} node(s), {} name(s), {} string byte(s), \
                     {} index entr(ies), {} content key(s), {} posting(s)",
                    r.pages,
                    r.nodes,
                    r.names,
                    r.string_bytes,
                    r.index_entries,
                    r.content_keys,
                    r.postings
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(exit_code(&e));
            }
        }
    }
    let doc = match load(&args) {
        Ok(d) => d,
        Err((code, msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(code);
        }
    };
    if let Some(path) = &args.persist {
        match doc.persist(std::path::Path::new(path), 256) {
            Ok(_) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(exit_code(&e));
            }
        }
    }
    let options = if args.canonical {
        TranslateOptions::canonical()
    } else if args.extended {
        TranslateOptions::extended()
    } else if args.cost_based {
        TranslateOptions::cost_based()
    } else {
        TranslateOptions::improved()
    };
    let options = options.with_threads(args.threads);
    // Telemetry is always on in the CLI (the REPL's `:metrics` needs it);
    // the zero-overhead-when-disabled path is for embedders.
    let slow = args.slow_ms.map(Duration::from_millis);
    let logger = match &args.query_log {
        Some(path) => match QueryLogger::to_file(std::path::Path::new(path), slow) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        },
        None => QueryLogger::in_memory(slow),
    };
    let telemetry = Arc::new(Telemetry::with_logger(logger));
    telemetry.record_parse(
        args.source
            .as_ref()
            .and_then(|p| std::fs::metadata(p).ok())
            .map_or(0, |m| m.len()),
        doc.store().node_count() as u64,
    );
    // One shared engine (plan cache + telemetry + document registry)
    // behind every mode — one-shot queries, the REPL and `--serve`
    // clients all hit the same compiled-plan cache (DESIGN.md §16).
    let shared = Engine::with_config(
        EngineConfig {
            cache_entries: args.cache_entries,
            cache_bytes: args.cache_bytes,
            max_concurrent: 0,
        },
        Some(telemetry.clone()),
    );
    let doc = shared.register_document("main", doc);
    let mut engine = shared.session().with_options(options).with_limits(args.limits);

    if let Some(spec) = &args.serve {
        // Serving mode: line protocol over stdio or TCP loopback. Each
        // client session starts with default options/limits and adjusts
        // them with the `options`/`limits`/`threads` protocol verbs.
        let service = QueryService::new(
            shared.clone(),
            ServiceConfig { workers: args.workers, queue_depth: args.queue_depth },
        );
        if spec == "stdio" {
            if let Err(e) = serve_stdio(&service) {
                eprintln!("error: serve: {e}");
                std::process::exit(EXIT_IO);
            }
        } else {
            match serve_tcp(service, spec) {
                Ok(handle) => {
                    eprintln!("serving on {} ({} workers)", handle.addr, args.workers);
                    // Serve until the process is killed.
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                Err(e) => {
                    eprintln!("error: serve {spec}: {e}");
                    std::process::exit(EXIT_IO);
                }
            }
        }
        if let Some(path) = &args.metrics_out {
            if let Err(e) = std::fs::write(path, telemetry.render_text()) {
                eprintln!("error: {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        }
        std::process::exit(0);
    }

    // First non-zero query exit code wins, so a corruption hit (5) is not
    // masked by a later compile error (1).
    let mut fail_code = 0;
    let mut json_reports: Vec<Json> = Vec::new();
    for q in &args.queries {
        let code = run_query(
            &doc,
            &engine,
            q,
            args.explain,
            args.analyze,
            args.time,
            args.profile_json.as_ref().map(|_| &mut json_reports),
        );
        if fail_code == 0 {
            fail_code = code;
        }
    }
    if let Some(path) = &args.profile_json {
        let text = Json::Arr(json_reports).pretty();
        match std::fs::write(path, &text) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        }
    }

    if args.interactive || (args.queries.is_empty() && args.persist.is_none()) {
        println!(
            "natix ({} nodes loaded) — enter XPath, `:explain <q>`, `:profile <q>`, \
             `:analyze <q>`, `:limits [spec]`, `:threads [n]`, `:metrics [reset]`, \
             `:cache [clear]`, `:slowlog`, or `:quit`",
            doc.store().node_count()
        );
        let stdin = std::io::stdin();
        loop {
            print!("xpath> ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == ":quit" || line == ":q" {
                break;
            }
            if line == ":threads" {
                println!("threads: {}", engine.options.threads);
            } else if let Some(n) = line.strip_prefix(":threads ") {
                match parse_threads(n.trim()) {
                    Ok(n) => {
                        engine.options = engine.options.with_threads(n);
                        println!("threads: {n}");
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
            } else if line == ":limits" {
                println!("{}", render_limits(&engine.limits));
            } else if let Some(spec) = line.strip_prefix(":limits ") {
                match apply_limits_directive(&mut engine.limits, spec.trim()) {
                    Ok(()) => println!("{}", render_limits(&engine.limits)),
                    Err(e) => eprintln!("error: {e}"),
                }
            } else if line == ":cache" {
                let s = shared.cache_stats();
                println!(
                    "cache: hits={} misses={} evictions={} inserts={} entries={} bytes={}",
                    s.hits, s.misses, s.evictions, s.inserts, s.entries, s.bytes
                );
            } else if line == ":cache clear" {
                shared.plan_cache().clear();
                println!("cache cleared");
            } else if line == ":metrics" {
                print!("{}", telemetry.render_text());
            } else if line == ":metrics reset" {
                telemetry.reset_metrics();
                println!("metrics reset");
            } else if line == ":slowlog" {
                let entries = telemetry.logger.slowlog();
                if entries.is_empty() {
                    match telemetry.logger.slow_threshold() {
                        Some(t) => println!("slowlog empty (threshold {}ms)", t.as_millis()),
                        None => {
                            println!(
                                "slowlog off — start with --slow-ms <n> to capture slow queries"
                            )
                        }
                    }
                } else {
                    for e in entries {
                        println!(
                            "#{} {:.3}ms {} — {}",
                            e.seq,
                            e.record.latency_nanos as f64 / 1e6,
                            e.record.outcome,
                            e.record.query,
                        );
                    }
                }
            } else if let Some(q) = line.strip_prefix(":explain ") {
                run_query(&doc, &engine, q.trim(), true, false, false, None);
            } else if let Some(q) = line.strip_prefix(":profile ") {
                match engine.profile(doc.store(), q.trim()) {
                    Ok((out, report)) => {
                        println!("{}", render(doc.store(), &out));
                        print!("{report}");
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
            } else if let Some(q) = line.strip_prefix(":analyze ") {
                run_query(&doc, &engine, q.trim(), false, true, false, None);
            } else {
                run_query(&doc, &engine, line, false, false, true, None);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        match std::fs::write(path, telemetry.render_text()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        }
    }
    if fail_code != 0 {
        std::process::exit(fail_code);
    }
}
