//! # natix — algebraic XPath 1.0 processing
//!
//! A Rust reproduction of *Full-fledged Algebraic XPath Processing in
//! Natix* (Brantner, Helmer, Kanne, Moerkotte — ICDE 2005): the first
//! complete translation of XPath 1.0 into a database algebra over ordered
//! tuple sequences, executed by an iterator-based physical engine directly
//! against paged document storage.
//!
//! ```
//! use natix::{Document, XPathEngine};
//!
//! let doc = Document::parse("<a><b>1</b><b>2</b></a>").unwrap();
//! let engine = XPathEngine::new();
//! let out = engine.evaluate(doc.store(), "count(/a/b)").unwrap();
//! assert_eq!(out, natix::QueryOutput::Num(2.0));
//! ```
//!
//! The crate is a facade over the workspace:
//! * [`xmlstore`] — documents: arena store, paged disk store, parser, axes,
//! * [`xpath_syntax`] — the XPath front-end (phases 1–4 of the compiler),
//! * [`algebra`] — the logical algebra (paper Fig. 1),
//! * [`compiler`] — the translation 𝒯[·] (canonical §3 / improved §4),
//! * [`nqe`] — the physical algebra and NVM (phase 6 + execution),
//! * [`interp`] — baseline main-memory interpreters (the paper's
//!   comparison subjects).

pub mod engine;
pub mod service;

pub use algebra::{explain, LogicalOp, QueryError, QueryOutput, ScalarExpr, Value};
pub use compiler::{
    parse_duration, parse_mem_size, CompiledQuery, PipelineError, QueryTrace, ResourceLimits,
    TranslateOptions,
};
pub use engine::{
    plan_weight, static_context_hash, CacheStats, CommitReceipt, Engine, EngineConfig, PinnedDoc,
    PlanCache, Session, WriteBatch,
};
pub use nqe::{build_physical, AnalyzeReport, FailPoint, Json, PhysicalQuery, ResourceGovernor};
pub use service::{QueryService, ServiceConfig};
pub use telemetry::{
    expr_hash, Histogram, LoggedQuery, MetricsRegistry, QueryLogger, QueryRecord, Telemetry,
};
pub use xmlstore::diskstore::VerifyReport;
pub use xmlstore::{
    Axis, DiskError, NodeId, NodeKind, ParseLimits, RepairFailPoint, RepairMode, RepairStats,
    UpdateError, XmlStore,
};

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Unified error type of the facade.
#[derive(Debug)]
pub enum NatixError {
    /// XML parsing failed.
    Xml(xmlstore::XmlError),
    /// Query compilation failed.
    Compile(PipelineError),
    /// Execution stopped by the resource governor (budget, deadline,
    /// cancellation).
    Resource(QueryError),
    /// Disk store I/O or corruption.
    Disk(xmlstore::diskstore::DiskError),
    /// An update operation or write batch failed (typed; the service
    /// renders these as `ERR update <class>` lines).
    Update(xmlstore::UpdateError),
}

impl std::fmt::Display for NatixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NatixError::Xml(e) => write!(f, "{e}"),
            NatixError::Compile(e) => write!(f, "{e}"),
            NatixError::Resource(e) => write!(f, "{e}"),
            NatixError::Disk(e) => write!(f, "{e}"),
            NatixError::Update(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NatixError {}

impl From<xmlstore::XmlError> for NatixError {
    fn from(e: xmlstore::XmlError) -> Self {
        NatixError::Xml(e)
    }
}

impl From<PipelineError> for NatixError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Resource(e) => NatixError::Resource(e),
            other => NatixError::Compile(other),
        }
    }
}

impl From<QueryError> for NatixError {
    fn from(e: QueryError) -> Self {
        match e {
            // A mid-query storage fault is a disk problem, not a budget
            // trip: reconstruct the error class so callers (and the CLI's
            // exit codes) keep the I/O-vs-corruption distinction. The
            // page/slot coordinates are embedded in the detail string.
            QueryError::Storage { detail, io: true } => {
                NatixError::Disk(DiskError::io(std::io::Error::other(detail)))
            }
            QueryError::Storage { detail, io: false } => {
                NatixError::Disk(DiskError::corrupt(detail))
            }
            other => NatixError::Resource(other),
        }
    }
}

impl From<xmlstore::diskstore::DiskError> for NatixError {
    fn from(e: xmlstore::diskstore::DiskError) -> Self {
        NatixError::Disk(e)
    }
}

impl From<xmlstore::UpdateError> for NatixError {
    fn from(e: xmlstore::UpdateError) -> Self {
        NatixError::Update(e)
    }
}

/// An XML document held in one of the two stores.
///
/// The variants differ in size (the disk store carries its loaded
/// indexes inline), but a `Document` is built once per registration and
/// lives behind an `Arc` in the engine registry — never in bulk
/// collections — so boxing would only add an indirection to every
/// navigation call.
#[allow(clippy::large_enum_variant)]
pub enum Document {
    /// Main-memory arena store.
    Arena(xmlstore::ArenaStore),
    /// Paged on-disk store behind the buffer manager.
    Disk(xmlstore::diskstore::DiskStore),
}

impl Document {
    /// Parse XML text into the in-memory store (default [`ParseLimits`]).
    pub fn parse(xml: &str) -> Result<Document, NatixError> {
        Ok(Document::Arena(xmlstore::parse_document(xml)?))
    }

    /// Parse with explicit bounds on document shape (nesting depth, name
    /// length, attribute and entity counts). Exceeding a bound is a typed
    /// [`NatixError::Xml`], never a panic or stack overflow.
    pub fn parse_with_limits(xml: &str, limits: &ParseLimits) -> Result<Document, NatixError> {
        Ok(Document::Arena(xmlstore::parse_document_with_limits(xml, limits)?))
    }

    /// Persist an in-memory document as a page file and reopen it through
    /// the buffer manager (`buffer_pages` resident frames).
    pub fn persist(&self, path: &Path, buffer_pages: usize) -> Result<Document, NatixError> {
        match self {
            Document::Arena(a) => Ok(Document::Disk(xmlstore::diskstore::DiskStore::create_from(
                a,
                path,
                buffer_pages,
            )?)),
            Document::Disk(_) => Err(NatixError::Disk(DiskError::io(std::io::Error::other(
                "document is already on disk",
            )))),
        }
    }

    /// Open an existing page file.
    pub fn open(path: &Path, buffer_pages: usize) -> Result<Document, NatixError> {
        Ok(Document::Disk(xmlstore::diskstore::DiskStore::open(path, buffer_pages)?))
    }

    /// Open an existing page file with its persistent indexes disabled:
    /// no structural index, no content probes — every axis navigates by
    /// cursor, exactly the pre-index behaviour. The baseline side of
    /// index benchmarks and differential tests.
    pub fn open_plain(path: &Path, buffer_pages: usize) -> Result<Document, NatixError> {
        Ok(Document::Disk(xmlstore::diskstore::DiskStore::open_plain(path, buffer_pages)?))
    }

    /// The underlying store.
    pub fn store(&self) -> &dyn XmlStore {
        match self {
            Document::Arena(a) => a,
            Document::Disk(d) => d,
        }
    }
}

/// Parse-time bounds derived from a resource budget: any parse-limit
/// field set on `limits` overrides the corresponding [`ParseLimits`]
/// default, so the CLI/REPL budget surface covers document loading too.
pub fn parse_limits_of(limits: &ResourceLimits) -> ParseLimits {
    let mut p = ParseLimits::default();
    if let Some(d) = limits.max_parse_depth {
        p.max_depth = d;
    }
    if let Some(l) = limits.max_name_len {
        p.max_name_len = l;
    }
    if let Some(c) = limits.max_attr_count {
        p.max_attrs = c;
    }
    if let Some(e) = limits.max_entity_expansions {
        p.max_entity_expansions = e;
    }
    p
}

/// Open a store file and run a full integrity check: every page checksum,
/// every node record and link, the complete name dictionary and all
/// string chains. Returns the exact verification counts, or the first
/// fault with its page/slot coordinates.
pub fn verify_store(path: &Path, buffer_pages: usize) -> Result<VerifyReport, NatixError> {
    let store = xmlstore::diskstore::DiskStore::open(path, buffer_pages)?;
    Ok(store.verify()?)
}

/// The algebraic XPath engine: compile once, execute against any store.
///
/// Optionally carries an engine-wide [`Telemetry`] bundle (metrics
/// registry + query log). With `telemetry: None` — the default — every
/// evaluation method takes exactly the pre-telemetry code path behind a
/// single `Option` branch; with telemetry attached, each query is routed
/// through [`nqe::observe_governed`] and its report folded into the
/// registry and the JSONL query log. The registry lives on the engine
/// value, not in a process global: independent engines aggregate
/// independently.
#[derive(Clone, Debug, Default)]
pub struct XPathEngine {
    /// Translation options (improved by default).
    pub options: TranslateOptions,
    /// Per-query execution budget (unlimited by default). Enforced by
    /// every evaluation method; trips surface as [`NatixError::Resource`].
    pub limits: ResourceLimits,
    /// Engine-wide metrics/query-log bundle (`None` = telemetry off).
    pub telemetry: Option<Arc<Telemetry>>,
}

impl XPathEngine {
    /// Engine with the improved translation (paper §4).
    pub fn new() -> XPathEngine {
        XPathEngine {
            options: TranslateOptions::improved(),
            limits: ResourceLimits::unlimited(),
            telemetry: None,
        }
    }

    /// Engine with the canonical translation (paper §3).
    pub fn canonical() -> XPathEngine {
        XPathEngine {
            options: TranslateOptions::canonical(),
            limits: ResourceLimits::unlimited(),
            telemetry: None,
        }
    }

    /// This engine with a resource budget (builder style).
    pub fn with_limits(mut self, limits: ResourceLimits) -> XPathEngine {
        self.limits = limits;
        self
    }

    /// This engine with a telemetry bundle attached (builder style).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> XPathEngine {
        self.telemetry = Some(telemetry);
        self
    }

    /// This engine with a worker-thread count for parallel execution
    /// (builder style). `1` is the exact serial path; `0` resolves to all
    /// available cores. See DESIGN.md §14.
    pub fn with_threads(mut self, threads: usize) -> XPathEngine {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        self.options = self.options.with_threads(threads);
        self
    }

    /// Compile a query to its logical algebra form.
    pub fn compile(&self, query: &str) -> Result<CompiledQuery, NatixError> {
        Ok(compiler::compile(query, &self.options)?)
    }

    /// Render the query plan in the paper's operator notation.
    pub fn explain(&self, query: &str) -> Result<String, NatixError> {
        Ok(match self.compile(query)? {
            CompiledQuery::Sequence(plan) => explain::explain(&plan),
            CompiledQuery::Scalar(s) => format!("scalar: {s}\n"),
        })
    }

    /// Compile and execute with the document node as context. Honours the
    /// engine's [`ResourceLimits`]: a tripped budget, deadline or
    /// cancellation surfaces as [`NatixError::Resource`].
    pub fn evaluate(&self, store: &dyn XmlStore, query: &str) -> Result<QueryOutput, NatixError> {
        match &self.telemetry {
            // Telemetry off: the hot path touches no telemetry atomics
            // beyond this one branch (asserted by tests/telemetry.rs).
            None => Ok(nqe::evaluate_governed(
                store,
                query,
                &self.options,
                &self.limits,
                store.root(),
                &HashMap::new(),
            )?),
            Some(t) => {
                let (out, _) = self.observe(
                    t,
                    store,
                    query,
                    store.root(),
                    &HashMap::new(),
                    t.wants_profile(),
                )?;
                Ok(out?)
            }
        }
    }

    /// Execute with per-operator profiling; returns the result and the
    /// profile report (opens/tuples per physical operator).
    pub fn profile(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(QueryOutput, String), NatixError> {
        match &self.telemetry {
            None => {
                let compiled = self.compile(query)?;
                let (mut phys, profile) = nqe::build_physical_profiled(&compiled);
                let out = phys.execute(store, &std::collections::HashMap::new(), store.root())?;
                Ok((out, profile.report()))
            }
            Some(t) => {
                let (out, report) =
                    self.observe(t, store, query, store.root(), &HashMap::new(), true)?;
                Ok((out?, report.profile.report()))
            }
        }
    }

    /// EXPLAIN ANALYZE: compile, lower and execute with full
    /// observability — per-phase compile timings, per-operator wall-clock
    /// profiles and gauges, and the result shape. Render the report with
    /// [`AnalyzeReport::text`] or export it with [`AnalyzeReport::to_json`].
    pub fn analyze(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(QueryOutput, AnalyzeReport), NatixError> {
        let (out, report) = self.analyze_governed(store, query)?;
        Ok((out?, report))
    }

    /// EXPLAIN ANALYZE under the engine's resource limits, keeping the
    /// report even when execution stops on a governor trip: the outer
    /// error covers compilation, the inner one execution.
    pub fn analyze_governed(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(Result<QueryOutput, QueryError>, AnalyzeReport), NatixError> {
        match &self.telemetry {
            None => Ok(nqe::explain_analyze_governed(
                store,
                query,
                &self.options,
                &self.limits,
                store.root(),
                &HashMap::new(),
            )?),
            Some(t) => self.observe(t, store, query, store.root(), &HashMap::new(), true),
        }
    }

    /// Compile and execute while tracing the pipeline phases only (no
    /// per-operator profiling overhead): `parse → semantic → fold →
    /// translate [→ prune] → codegen → execute`, each timed.
    pub fn evaluate_traced(
        &self,
        store: &dyn XmlStore,
        query: &str,
    ) -> Result<(QueryOutput, QueryTrace), NatixError> {
        match &self.telemetry {
            None => {
                let (compiled, mut trace) = compiler::compile_traced(query, &self.options)?;
                let t0 = Instant::now();
                let mut phys = nqe::build_physical(&compiled);
                trace.add_phase("codegen", t0.elapsed().as_nanos() as u64);
                let t0 = Instant::now();
                let out = phys.execute(store, &HashMap::new(), store.root());
                trace.add_phase("execute", t0.elapsed().as_nanos() as u64);
                Ok((out?, trace))
            }
            Some(t) => {
                let (out, report) = self.observe(
                    t,
                    store,
                    query,
                    store.root(),
                    &HashMap::new(),
                    t.wants_profile(),
                )?;
                Ok((out?, report.trace))
            }
        }
    }

    /// Compile and execute with explicit context node and variables,
    /// under the engine's resource limits.
    pub fn evaluate_with(
        &self,
        store: &dyn XmlStore,
        query: &str,
        ctx: NodeId,
        vars: &HashMap<String, Value>,
    ) -> Result<QueryOutput, NatixError> {
        match &self.telemetry {
            None => {
                Ok(nqe::evaluate_governed(store, query, &self.options, &self.limits, ctx, vars)?)
            }
            Some(t) => {
                let (out, _) = self.observe(t, store, query, ctx, vars, t.wants_profile())?;
                Ok(out?)
            }
        }
    }

    /// The telemetry-enabled execution path: run through
    /// [`nqe::observe_governed`], fold the report into the registry and
    /// query log (compile failures count too), hand both back.
    fn observe(
        &self,
        t: &Telemetry,
        store: &dyn XmlStore,
        query: &str,
        ctx: NodeId,
        vars: &HashMap<String, Value>,
        profiled: bool,
    ) -> Result<(Result<QueryOutput, QueryError>, AnalyzeReport), NatixError> {
        let t0 = Instant::now();
        match nqe::observe_governed(store, query, &self.options, &self.limits, ctx, vars, profiled)
        {
            Ok((out, report)) => {
                t.record_query(t0.elapsed(), &report, out.as_ref().err());
                Ok((out, report))
            }
            Err(e) => {
                t.record_compile_error(query, t0.elapsed(), &e.to_string());
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_roundtrip() {
        let doc = Document::parse("<a><b>x</b></a>").unwrap();
        let engine = XPathEngine::new();
        assert_eq!(
            engine.evaluate(doc.store(), "string(/a/b)").unwrap(),
            QueryOutput::Str("x".into())
        );
        let plan = engine.explain("/a/b").unwrap();
        assert!(plan.contains("Υ["));
    }

    #[test]
    fn error_paths() {
        assert!(Document::parse("<a>").is_err());
        let doc = Document::parse("<a/>").unwrap();
        assert!(XPathEngine::new().evaluate(doc.store(), "///").is_err());
        assert!(XPathEngine::new().evaluate(doc.store(), "bogus()").is_err());
    }
}
