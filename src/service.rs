//! The concurrent query service: a bounded worker pool executing
//! [`Session`] queries for many clients over a simple line protocol
//! (DESIGN.md §16). The CLI surfaces it as `--serve stdio` / `--serve
//! <addr>`; `bench/bin/throughput` drives it in-process.
//!
//! ## Line protocol
//!
//! One request per line, one response line per request:
//!
//! ```text
//! >> doc dblp                 << OK doc dblp
//! >> query count(//inproceedings)
//! << OK num 42
//! >> limits mem=1MiB timeout=500ms
//! << OK limits: mem=1048576B timeout=500ms
//! >> query //a[huge]          << ERR memory memory budget exceeded …
//! >> stats                    << OK cache hits=… misses=… …
//! >> update append-element /a sec
//! << OK update append-element ops=1
//! >> commit                   << OK committed epoch=2 ops=1 …
//! >> quit                     << OK bye
//! ```
//!
//! A bare line that is not a command is treated as `query <line>`.
//! Node-set results list the node ids (stable document order), so two
//! runs of the same corpus are byte-comparable — the differential suite
//! in `tests/service.rs` leans on this.
//!
//! ## Updates
//!
//! The first `update …` verb opens a [`WriteBatch`] on the session's
//! current document; further updates accumulate in the same batch until
//! `commit` publishes them as the next epoch snapshot or `rollback`
//! discards them. Queries — this session's and every other client's —
//! keep reading the published epoch until the commit lands (each query
//! re-pins the registry's current snapshot, and is pinned to exactly
//! one epoch for its whole execution). Update failures are typed:
//! `ERR update <class> …` with the stable [`xmlstore::UpdateError`]
//! class token.
//!
//! ## Admission
//!
//! The pool's submission queue is bounded ([`ServiceConfig::queue_depth`]);
//! when it is full the service answers `ERR admission queue full` rather
//! than queueing without bound (counted as `natix_service_rejected_total`).
//! Per-session budgets ride on every query: a governor trip is a typed
//! `ERR <class> …` response, never a worker panic.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use telemetry::Counter;

use crate::engine::{Engine, Session, WriteBatch};
use crate::{
    parse_duration, parse_mem_size, Document, NatixError, QueryOutput, ResourceLimits,
    TranslateOptions, UpdateError,
};

/// Configuration of the query service's worker pool.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bound of the submission queue (admission control): submissions
    /// beyond `queue_depth` waiting jobs are rejected, not queued.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig { workers: 4, queue_depth: 64 }
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of worker threads fed by a bounded queue.
struct WorkerPool {
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    rejected: Counter,
}

impl WorkerPool {
    fn new(config: &ServiceConfig, rejected: Counter) -> WorkerPool {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("natix-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing, so
                        // workers drain the queue concurrently.
                        let job = {
                            let rx: std::sync::MutexGuard<'_, Receiver<Job>> = match rx.lock() {
                                Ok(g) => g,
                                Err(_) => return,
                            };
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // queue closed: shut down
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { queue: Some(tx), workers: handles, rejected }
    }

    /// Submit a job; `Err` means the queue is full (admission rejection).
    fn submit(&self, job: Job) -> Result<(), Rejected> {
        let Some(queue) = &self.queue else {
            return Err(Rejected);
        };
        match queue.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.rejected.inc();
                Err(Rejected)
            }
        }
    }
}

/// Admission rejection: the service's bounded queue was full (or the
/// pool is shutting down), so the query was shed rather than enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("admission queue full")
    }
}

impl std::error::Error for Rejected {}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue = None; // close the queue; workers exit on recv error
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// The multi-client query service: a shared [`Engine`] plus a bounded
/// worker pool. Clone-free — share it behind an [`Arc`]; each client
/// gets a [`ClientSession`].
pub struct QueryService {
    engine: Arc<Engine>,
    pool: WorkerPool,
    config: ServiceConfig,
}

impl QueryService {
    /// A service over `engine` with the given pool shape.
    pub fn new(engine: Arc<Engine>, config: ServiceConfig) -> Arc<QueryService> {
        let rejected = match engine.telemetry() {
            Some(t) => t.metrics.service_rejected_total.clone(),
            None => Counter::default(),
        };
        Arc::new(QueryService { pool: WorkerPool::new(&config, rejected), engine, config })
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Open a protocol session for one client. `doc` picks the initial
    /// document (must be registered on the engine) — `None` starts with
    /// the engine's first registered document, if any.
    pub fn client(self: &Arc<QueryService>, doc: Option<&str>) -> ClientSession {
        let current = match doc {
            Some(name) => self.engine.document(name).map(|d| (name.to_owned(), d)),
            None => {
                let names = self.engine.document_names();
                names.first().and_then(|n| self.engine.document(n).map(|d| (n.clone(), d)))
            }
        };
        ClientSession {
            service: self.clone(),
            session: self.engine.session(),
            current,
            batch: None,
        }
    }

    /// Execute `session`'s query against `doc` on the worker pool,
    /// blocking until the worker replies. `Err(Rejected)` = admission
    /// rejection (queue full).
    pub fn execute(
        &self,
        session: &Session,
        doc: &Arc<Document>,
        query: &str,
    ) -> Result<Result<QueryOutput, NatixError>, Rejected> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let session = session.clone();
        let doc = doc.clone();
        let query = query.to_owned();
        self.pool.submit(Box::new(move || {
            let out = session.evaluate(doc.store(), &query);
            let _ = reply_tx.send(out);
        }))?;
        // The worker owns the only sender; a dropped reply means the
        // worker died, which the pool's panic-free invariant rules out —
        // but degrade to a rejection rather than unwinding.
        reply_rx.recv().map_err(|_| Rejected)
    }
}

/// The error class token of an `ERR` response (stable protocol surface).
/// Update failures all share the `update` token; the typed subclass is
/// the first word of the detail (`ERR update cycle: …`), so clients can
/// dispatch on `ERR update <class>` without parsing prose.
pub fn error_token(e: &NatixError) -> &'static str {
    match e {
        NatixError::Xml(_) => "xml",
        NatixError::Compile(_) => "compile",
        NatixError::Resource(q) => telemetry::error_class(q),
        NatixError::Disk(d) if d.is_corrupt() => "storage_corrupt",
        NatixError::Disk(_) => "storage_io",
        NatixError::Update(_) => "update",
    }
}

/// Render a query result as a single protocol line.
pub fn render_output(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Nodes(ns) => {
            let mut s = format!("OK nodes {}", ns.len());
            for n in ns {
                s.push(' ');
                s.push_str(&n.0.to_string());
            }
            s
        }
        QueryOutput::Num(n) => format!("OK num {n}"),
        QueryOutput::Bool(b) => format!("OK bool {b}"),
        QueryOutput::Str(v) => format!("OK str {}", escape_line(v)),
    }
}

/// Escape a string payload so the response stays one line.
fn escape_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

/// Render the engine's execution limits (`:limits` REPL command and the
/// `limits` protocol verb share this).
pub fn render_limits(l: &ResourceLimits) -> String {
    if l.is_unlimited() {
        return "limits: unlimited".to_owned();
    }
    let mut parts = Vec::new();
    if let Some(b) = l.max_memory_bytes {
        parts.push(format!("mem={b}B"));
    }
    if let Some(t) = l.max_tuples {
        parts.push(format!("tuples={t}"));
    }
    if let Some(d) = l.timeout {
        parts.push(format!("timeout={}ms", d.as_millis()));
    }
    format!("limits: {}", parts.join(" "))
}

/// Apply a `limits` directive: `mem=<size>`, `tuples=<n>`,
/// `timeout=<dur>` in any combination, or `off` to clear everything.
/// Shared by the REPL (`:limits`) and the serve-mode protocol.
pub fn apply_limits_directive(limits: &mut ResourceLimits, spec: &str) -> Result<(), String> {
    for part in spec.split_whitespace() {
        if part == "off" || part == "none" {
            *limits = ResourceLimits::unlimited();
            continue;
        }
        let (key, val) = part
            .split_once('=')
            .ok_or("usage: limits [mem=<size>] [tuples=<n>] [timeout=<dur>] | limits off")?;
        match key {
            "mem" => limits.max_memory_bytes = Some(parse_mem_size(val)?),
            "tuples" => {
                limits.max_tuples =
                    Some(val.parse().map_err(|_| format!("tuples: `{val}` is not a number"))?)
            }
            "timeout" => limits.timeout = Some(parse_duration(val)?),
            other => return Err(format!("unknown limit `{other}` (mem, tuples, timeout)")),
        }
    }
    Ok(())
}

/// What [`ClientSession::handle`] decided about the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Send this line and keep the connection open.
    Line(String),
    /// Send this line and close the connection.
    Close(String),
}

impl Reply {
    /// The response text, whichever variant.
    pub fn text(&self) -> &str {
        match self {
            Reply::Line(s) | Reply::Close(s) => s,
        }
    }
}

/// One client's protocol state: a [`Session`] (options + limits), the
/// currently selected document, and the open write batch, if any.
pub struct ClientSession {
    service: Arc<QueryService>,
    session: Session,
    current: Option<(String, Arc<Document>)>,
    batch: Option<WriteBatch>,
}

impl ClientSession {
    /// The underlying session (tests tweak options directly).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Handle one protocol line, producing exactly one response line.
    pub fn handle(&mut self, line: &str) -> Reply {
        let line = line.trim();
        if line.is_empty() {
            return Reply::Line("OK".to_owned());
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb {
            "quit" => Reply::Close("OK bye".to_owned()),
            "limits" => {
                if rest.is_empty() {
                    return Reply::Line(format!("OK {}", render_limits(&self.session.limits)));
                }
                match apply_limits_directive(&mut self.session.limits, rest) {
                    Ok(()) => Reply::Line(format!("OK {}", render_limits(&self.session.limits))),
                    Err(e) => Reply::Line(format!("ERR usage {e}")),
                }
            }
            "threads" => {
                if rest.is_empty() {
                    return Reply::Line(format!("OK threads {}", self.session.options.threads));
                }
                match rest.parse::<usize>() {
                    Ok(n) => {
                        self.session = self.session.clone().with_threads(n);
                        Reply::Line(format!("OK threads {}", self.session.options.threads))
                    }
                    Err(_) => Reply::Line(format!("ERR usage threads: `{rest}` is not a number")),
                }
            }
            "options" => match rest {
                "canonical" => {
                    let threads = self.session.options.threads;
                    self.session.options = TranslateOptions::canonical().with_threads(threads);
                    Reply::Line("OK options canonical".to_owned())
                }
                "improved" => {
                    let threads = self.session.options.threads;
                    self.session.options = TranslateOptions::improved().with_threads(threads);
                    Reply::Line("OK options improved".to_owned())
                }
                "extended" => {
                    let threads = self.session.options.threads;
                    self.session.options = TranslateOptions::extended().with_threads(threads);
                    Reply::Line("OK options extended".to_owned())
                }
                "cost-based" => {
                    let threads = self.session.options.threads;
                    self.session.options = TranslateOptions::cost_based().with_threads(threads);
                    Reply::Line("OK options cost-based".to_owned())
                }
                _ => Reply::Line(
                    "ERR usage options <canonical|improved|extended|cost-based>".to_owned(),
                ),
            },
            "doc" => {
                if rest.is_empty() {
                    let names = self.service.engine().document_names();
                    let current = self.current.as_ref().map(|(n, _)| n.as_str());
                    let listing: Vec<String> = names
                        .iter()
                        .map(|n| {
                            if Some(n.as_str()) == current {
                                format!("*{n}")
                            } else {
                                n.clone()
                            }
                        })
                        .collect();
                    return Reply::Line(format!("OK docs {}", listing.join(" ")));
                }
                match self.service.engine().document(rest) {
                    Some(d) => {
                        self.current = Some((rest.to_owned(), d));
                        Reply::Line(format!("OK doc {rest}"))
                    }
                    None => Reply::Line(format!("ERR usage unknown document `{rest}`")),
                }
            }
            "stats" => {
                let s = self.service.engine().cache_stats();
                Reply::Line(format!(
                    "OK cache hits={} misses={} evictions={} stale={} inserts={} entries={} bytes={}",
                    s.hits, s.misses, s.evictions, s.stale_evictions, s.inserts, s.entries, s.bytes
                ))
            }
            "epoch" => match &self.current {
                Some((name, _)) => match self.service.engine().document_epoch(name) {
                    Some(e) => Reply::Line(format!("OK epoch {e}")),
                    None => Reply::Line(format!("ERR usage unknown document `{name}`")),
                },
                None => Reply::Line("ERR usage no document selected (use `doc <name>`)".to_owned()),
            },
            "update" => self.run_update(rest),
            "commit" => match self.batch.take() {
                None => Reply::Line("ERR usage no open write batch".to_owned()),
                Some(batch) => match batch.commit() {
                    Ok(r) => Reply::Line(format!(
                        "OK committed epoch={} ops={} repairs={} stale-plans={}",
                        r.epoch,
                        r.ops,
                        r.repairs.incremental + r.repairs.relabels + r.repairs.full_renumbers,
                        r.stale_plans_evicted
                    )),
                    Err(e) => Reply::Line(format!(
                        "ERR {} {}",
                        error_token(&e),
                        escape_line(&e.to_string())
                    )),
                },
            },
            "rollback" => match self.batch.take() {
                None => Reply::Line("ERR usage no open write batch".to_owned()),
                Some(batch) => {
                    let ops = batch.ops_applied();
                    batch.abort();
                    Reply::Line(format!("OK rolled back ops={ops}"))
                }
            },
            "explain" => {
                if rest.is_empty() {
                    return Reply::Line("ERR usage explain <xpath>".to_owned());
                }
                match self.session.explain(rest) {
                    Ok(plan) => Reply::Line(format!("OK plan {}", escape_line(plan.trim_end()))),
                    Err(e) => Reply::Line(format!("ERR {} {}", error_token(&e), e)),
                }
            }
            "query" => self.run_query(rest),
            // Anything else is an XPath expression.
            _ => self.run_query(line),
        }
    }

    fn run_query(&mut self, query: &str) -> Reply {
        if query.is_empty() {
            return Reply::Line("ERR usage query <xpath>".to_owned());
        }
        let Some((name, doc)) = &self.current else {
            return Reply::Line("ERR usage no document selected (use `doc <name>`)".to_owned());
        };
        // Re-pin the registry's current epoch snapshot: between queries
        // the session observes newly committed epochs; within one query
        // the pin keeps exactly one snapshot alive (a mid-query commit
        // cannot tear the result). If the document was deregistered the
        // session keeps its last snapshot — pinned readers outlive the
        // registry entry by design.
        let pin = self.service.engine().pin(name);
        let doc = match &pin {
            Some(p) => p.doc(),
            None => doc,
        };
        match self.service.execute(&self.session, doc, query) {
            Ok(Ok(out)) => Reply::Line(render_output(&out)),
            Ok(Err(e)) => {
                Reply::Line(format!("ERR {} {}", error_token(&e), escape_line(&e.to_string())))
            }
            Err(Rejected) => Reply::Line("ERR admission queue full".to_owned()),
        }
    }

    /// Apply one `update <op> …` directive to this session's write
    /// batch, opening the batch on the current document if none is open.
    fn run_update(&mut self, rest: &str) -> Reply {
        const USAGE: &str = "ERR usage update <set-content|set-attr|append-element|append-text|\
                             insert-before|remove|remove-attr|move> <xpath> [args…]";
        let mut words = rest.splitn(2, char::is_whitespace);
        let (Some(op), Some(args)) = (words.next(), words.next().map(str::trim)) else {
            return Reply::Line(USAGE.to_owned());
        };
        const OPS: [&str; 8] = [
            "set-content",
            "set-attr",
            "append-element",
            "append-text",
            "insert-before",
            "remove",
            "remove-attr",
            "move",
        ];
        if !OPS.contains(&op) {
            return Reply::Line(USAGE.to_owned());
        }
        // Ops beyond the XPath target that require a non-empty payload.
        let needs_payload =
            matches!(op, "set-attr" | "append-element" | "insert-before" | "remove-attr" | "move");
        if self.batch.is_none() {
            let Some((name, _)) = &self.current else {
                return Reply::Line("ERR usage no document selected (use `doc <name>`)".to_owned());
            };
            match self.service.engine().write_batch(name) {
                Ok(b) => self.batch = Some(b),
                Err(e) => {
                    return Reply::Line(format!(
                        "ERR {} {}",
                        error_token(&e),
                        escape_line(&e.to_string())
                    ))
                }
            }
        }
        let batch = self.batch.as_mut().expect("batch just ensured");
        // First word of `args` is the target XPath; the remainder is the
        // op's payload (content may contain spaces, names may not).
        let mut parts = args.splitn(2, char::is_whitespace);
        let xpath = parts.next().unwrap_or_default();
        let payload = parts.next().map(str::trim);
        if xpath.is_empty() || (needs_payload && payload.is_none()) {
            return Reply::Line(USAGE.to_owned());
        }
        let applied = batch.select_one(xpath).and_then(|target| match op {
            "set-content" => batch.set_content(target, payload.unwrap_or("")),
            "set-attr" => {
                let Some((name, value)) = payload.and_then(|p| p.split_once(char::is_whitespace))
                else {
                    return Err(UpdateError::TargetNotFound(
                        "set-attr needs <xpath> <name> <value>".to_owned(),
                    )
                    .into());
                };
                batch.set_attribute(target, name, value.trim()).map(|_| ())
            }
            "append-element" => {
                batch.append_element(target, payload.unwrap_or_default()).map(|_| ())
            }
            "append-text" => batch.append_text(target, payload.unwrap_or("")).map(|_| ()),
            "insert-before" => {
                batch.insert_element_before(target, payload.unwrap_or_default()).map(|_| ())
            }
            "remove" => batch.remove_subtree(target),
            "remove-attr" => {
                batch.remove_attribute(target, payload.unwrap_or_default()).map(|_| ())
            }
            "move" => {
                let dest = batch.select_one(payload.unwrap_or_default())?;
                batch.move_subtree(target, dest)
            }
            other => unreachable!("op `{other}` was validated against OPS"),
        });
        match applied {
            Ok(()) => Reply::Line(format!("OK update {op} ops={}", batch.ops_applied())),
            Err(e) => {
                Reply::Line(format!("ERR {} {}", error_token(&e), escape_line(&e.to_string())))
            }
        }
    }

    /// Drive the session over a line stream until `quit`/EOF (the stdio
    /// and TCP front-ends share this loop).
    pub fn serve(&mut self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            match self.handle(&line) {
                Reply::Line(r) => {
                    output.write_all(r.as_bytes())?;
                    output.write_all(b"\n")?;
                    output.flush()?;
                }
                Reply::Close(r) => {
                    output.write_all(r.as_bytes())?;
                    output.write_all(b"\n")?;
                    output.flush()?;
                    break;
                }
            }
        }
        Ok(())
    }
}

/// Serve the line protocol over stdin/stdout (blocks until EOF/`quit`).
pub fn serve_stdio(service: &Arc<QueryService>) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    service.client(None).serve(stdin.lock(), stdout.lock())
}

/// A running TCP server; dropping (or [`ServerHandle::stop`]) shuts the
/// accept loop down and joins it. Live client connections each run on
/// their own thread and end at EOF/`quit`.
pub struct ServerHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal shutdown and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serve the line protocol on a TCP loopback address (e.g.
/// `127.0.0.1:0`). Returns immediately with the handle; each accepted
/// connection gets its own [`ClientSession`] on its own thread.
pub fn serve_tcp(service: Arc<QueryService>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = shutdown.clone();
    let accept_thread =
        std::thread::Builder::new().name("natix-accept".to_owned()).spawn(move || {
            let mut clients: Vec<JoinHandle<()>> = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = service.clone();
                        clients.push(
                            std::thread::Builder::new()
                                .name("natix-client".to_owned())
                                .spawn(move || {
                                    let _ = serve_connection(&service, stream);
                                })
                                .expect("spawn client thread"),
                        );
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for c in clients {
                let _ = c.join();
            }
        })?;
    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread) })
}

fn serve_connection(service: &Arc<QueryService>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut client = service.client(None);
    client.serve(reader, stream)
}

/// Convenience used by tests and the throughput bench: run a whole query
/// corpus serially on a fresh session (no pool, no cache bypass) and
/// return the rendered protocol lines — the reference output the
/// concurrent paths must match byte-for-byte.
pub fn serial_reference(doc: &Arc<Document>, session: &Session, corpus: &[String]) -> Vec<String> {
    corpus
        .iter()
        .map(|q| match session.evaluate(doc.store(), q) {
            Ok(out) => render_output(&out),
            Err(e) => format!("ERR {} {}", error_token(&e), escape_line(&e.to_string())),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn service_with_doc() -> Arc<QueryService> {
        let engine = Engine::with_config(EngineConfig::default(), None);
        engine.register_document("main", Document::parse("<a><b>1</b><b>2</b></a>").unwrap());
        QueryService::new(engine, ServiceConfig { workers: 2, queue_depth: 8 })
    }

    #[test]
    fn protocol_roundtrip() {
        let service = service_with_doc();
        let mut c = service.client(None);
        assert_eq!(c.handle("count(/a/b)").text(), "OK num 2");
        assert_eq!(c.handle("query string(/a/b[2])").text(), "OK str 2");
        assert_eq!(c.handle("doc").text(), "OK docs *main");
        assert!(c.handle("stats").text().starts_with("OK cache hits="));
        assert_eq!(c.handle("quit"), Reply::Close("OK bye".to_owned()));
    }

    #[test]
    fn typed_errors_over_protocol() {
        let service = service_with_doc();
        let mut c = service.client(None);
        assert!(c.handle("query ///").text().starts_with("ERR compile "));
        c.handle("limits mem=1");
        let r = c.handle("query //b[. = '1']").text().to_owned();
        assert!(r.starts_with("ERR memory "), "{r}");
    }

    #[test]
    fn stream_loop_closes_on_quit() {
        let service = service_with_doc();
        let mut c = service.client(None);
        let input = b"count(/a/b)\nquit\ncount(/a/b)\n" as &[u8];
        let mut out = Vec::new();
        c.serve(input, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "OK num 2\nOK bye\n");
    }
}
