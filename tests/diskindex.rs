//! Disk-index differential and hardening tests (DESIGN.md §19): an
//! indexed `DiskStore`, a plain (index-blind) `DiskStore` over the same
//! file, and the source arena must answer the whole query corpus byte
//! for byte identically under every optimizer mode; index probes must
//! be visible in EXPLAIN ANALYZE (plan annotation, optimizer decision,
//! runtime gauge); and damage to the persisted index or posting pages
//! must surface as a typed error, never as a silent wrong answer.

use std::collections::HashMap;

use compiler::TranslateOptions;
use proptest::prelude::*;
use xmlstore::diskstore::{create_store_file, DiskStore};
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};
use xmlstore::page::PAGE_SIZE;
use xmlstore::tmp::TempPath;
use xmlstore::{ArenaBuilder, ArenaStore, XmlStore};

mod corpus;
use corpus::{DBLP_QUERIES, TREE_QUERIES};

/// Persist `arena` and open it twice: once with the persisted indexes
/// loaded, once index-blind (`open_plain`, the pre-index cursor path).
fn persist_pair(arena: &ArenaStore) -> (TempPath, DiskStore, DiskStore) {
    let tmp = TempPath::new(".natix");
    create_store_file(arena, tmp.path()).unwrap();
    let indexed = DiskStore::open(tmp.path(), 64).unwrap();
    let plain = DiskStore::open_plain(tmp.path(), 64).unwrap();
    assert!(indexed.structural_index().is_some(), "indexed open loads the structural index");
    assert!(plain.structural_index().is_none(), "open_plain hides every index");
    (tmp, indexed, plain)
}

/// The three-way differential: arena (in-memory oracle), indexed disk
/// store (probe + range-scan paths), plain disk store (cursor walks)
/// must agree on every query under both the cost-based optimizer (which
/// may plant probe annotations) and the paper's improved translation.
fn differential(arena: &ArenaStore, queries: &[&str]) {
    let (_tmp, indexed, plain) = persist_pair(arena);
    for q in queries {
        for opts in [TranslateOptions::cost_based(), TranslateOptions::improved()] {
            let want =
                nqe::evaluate(arena, q, &opts).unwrap_or_else(|e| panic!("arena `{q}`: {e}"));
            let fast =
                nqe::evaluate(&indexed, q, &opts).unwrap_or_else(|e| panic!("indexed `{q}`: {e}"));
            let slow =
                nqe::evaluate(&plain, q, &opts).unwrap_or_else(|e| panic!("plain `{q}`: {e}"));
            assert_eq!(want, fast, "arena vs indexed disk on `{q}`");
            assert_eq!(want, slow, "arena vs plain disk on `{q}`");
        }
    }
}

#[test]
fn tree_corpus_agrees_across_disk_and_arena() {
    for params in [
        TreeParams { max_elements: 200, fanout: 6, max_depth: 4 },
        TreeParams { max_elements: 30, fanout: 1, max_depth: 40 }, // a chain
    ] {
        differential(&generate_tree(params), TREE_QUERIES);
    }
}

#[test]
fn dblp_corpus_agrees_across_disk_and_arena() {
    differential(&generate_dblp(DblpParams { records: 300, seed: 11 }), DBLP_QUERIES);
}

// ---- probes visible in EXPLAIN ANALYZE ---------------------------------

/// Largest value of gauge `name` anywhere in a rendered profile report
/// (rows look like `Υ[…] probe=@key='x']  {… index_probes=3 …}`).
fn max_gauge(report: &str, name: &str) -> u64 {
    let needle = format!("{name}=");
    report
        .match_indices(&needle)
        .map(|(i, _)| {
            let digits: String =
                report[i + needle.len()..].chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn probes_are_visible_in_explain_analyze() {
    let arena = generate_dblp(DblpParams { records: 200, seed: 11 });
    let (_tmp, indexed, _plain) = persist_pair(&arena);
    let opts = TranslateOptions::cost_based();
    let vars = HashMap::new();
    for q in [
        "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
        "/dblp/article[year='1991']/@key",
    ] {
        let want = nqe::evaluate(&arena, q, &opts).unwrap();
        let (out, report) =
            nqe::explain_analyze(&indexed, q, &opts, indexed.root(), &vars).unwrap();
        assert_eq!(out, want, "explain-analyze result differs on `{q}`");

        // The optimizer recorded the probe-vs-scan decision…
        let trace = report.trace.optimizer.as_ref().expect("cost pass ran on disk store");
        assert!(
            trace.decisions.iter().any(|d| d.rule == "index-probe" && d.choice == "probe"),
            "no probe decision for `{q}`: {:?}",
            trace.decisions
        );
        // …the plan annotation shows up on the profiled operator row…
        let text = report.profile.report();
        assert!(text.contains("probe="), "no probe annotation in profile for `{q}`:\n{text}");
        // …and the runtime actually took the probe path.
        assert!(max_gauge(&text, "index_probes") > 0, "probe never fired for `{q}`:\n{text}");
        assert!(
            max_gauge(&text, "probe_postings") > 0,
            "no postings consulted for `{q}`:\n{text}"
        );
    }
}

#[test]
fn plain_store_answers_probe_queries_without_probing() {
    // `open_plain` exposes no indexes: the cost pass cannot run (no
    // statistics) and the runtime has no postings — yet answers match.
    let arena = generate_dblp(DblpParams { records: 200, seed: 11 });
    let (_tmp, _indexed, plain) = persist_pair(&arena);
    let opts = TranslateOptions::cost_based();
    let vars = HashMap::new();
    let q = "/dblp/article[year='1991']/@key";
    let want = nqe::evaluate(&arena, q, &opts).unwrap();
    let (out, report) = nqe::explain_analyze(&plain, q, &opts, plain.root(), &vars).unwrap();
    assert_eq!(out, want);
    assert!(report.trace.optimizer.is_none(), "no statistics without an index");
    assert_eq!(max_gauge(&report.profile.report(), "index_probes"), 0);
}

// ---- random documents (proptest differential) --------------------------

#[derive(Clone, Debug)]
enum Tree {
    Element {
        name: usize,
        attrs: Vec<(usize, String)>,
        children: Vec<Tree>,
    },
    Text(String),
    Comment,
}

const NAMES: [&str; 4] = ["a", "b", "c", "d"];
const ATTRS: [&str; 3] = ["x", "y", "id"];

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        ("[a-z]{1,6}").prop_map(Tree::Text),
        Just(Tree::Comment),
        (0..NAMES.len()).prop_map(|name| Tree::Element { name, attrs: vec![], children: vec![] }),
    ];
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            0..NAMES.len(),
            proptest::collection::vec((0..ATTRS.len(), "[0-9]{1,2}"), 0..3),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn build(t: &Tree, b: &mut ArenaBuilder) {
    match t {
        Tree::Element { name, attrs, children } => {
            b.start_element(NAMES[*name]);
            let mut seen = Vec::new();
            for (a, v) in attrs {
                if !seen.contains(a) {
                    seen.push(*a);
                    b.attribute(ATTRS[*a], v);
                }
            }
            for c in children {
                build(c, b);
            }
            b.end_element();
        }
        Tree::Text(s) => {
            b.text(s);
        }
        Tree::Comment => {
            b.comment("c");
        }
    }
}

fn make_store(t: &Tree) -> ArenaStore {
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    build(t, &mut b);
    b.end_element();
    b.finish()
}

/// Queries chosen so random documents exercise both content-index
/// probes (value predicates on attributes and leaf elements) and the
/// structural paths around them.
const PROP_QUERIES: &[&str] = &[
    "count(//*)",
    "//a[@id='7']",
    "/r/a[@x='5']/b",
    "count(//*[@y='12'])",
    "//b[a='x']",
    "//*[c='foo']/@id",
    "string(/r)",
    "//a[@id]/descendant::b",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Indexed disk store ≡ plain disk store ≡ arena, byte for byte, on
    // random documents — the persisted probe path is a pure optimisation.
    #[test]
    fn random_documents_agree_across_disk_and_arena(t in tree_strategy()) {
        let arena = make_store(&t);
        let (_tmp, indexed, plain) = persist_pair(&arena);
        for q in PROP_QUERIES {
            for opts in [TranslateOptions::cost_based(), TranslateOptions::improved()] {
                let want = nqe::evaluate(&arena, q, &opts).unwrap();
                let fast = nqe::evaluate(&indexed, q, &opts).unwrap();
                let slow = nqe::evaluate(&plain, q, &opts).unwrap();
                prop_assert_eq!(&want, &fast, "arena vs indexed disk on `{}`", q);
                prop_assert_eq!(&want, &slow, "arena vs plain disk on `{}`", q);
            }
        }
    }
}

// ---- seeded corruption of index / posting pages ------------------------

/// Deterministic 64-bit LCG (the sweep reproduces from the seed alone).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn sweep_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_2026)
}

fn header_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

/// Flip random bytes inside the index and posting page regions. Every
/// such page is sealed with a CRC32C trailer, so either the open fails
/// typed, or the deep `verify()` check (the CLI's `--verify-store`)
/// reports corruption; a store that opens must never answer a probe
/// query wrong — only correctly or with a typed error mid-query.
#[test]
fn index_and_posting_page_flips_are_detected() {
    const QUERIES: &[&str] = &[
        "count(//article)",
        "/dblp/article[year='1991']/@key",
        "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
    ];
    let arena = generate_dblp(DblpParams { records: 120, seed: 7 });
    let expect: Vec<_> = QUERIES
        .iter()
        .map(|q| nqe::evaluate(&arena, q, &TranslateOptions::cost_based()).unwrap())
        .collect();

    let tmp = TempPath::new(".natix");
    create_store_file(&arena, tmp.path()).unwrap();
    let pristine = std::fs::read(tmp.path()).unwrap();

    // The v3 header records the region bounds: index pages start at the
    // u32 at offset 40, the meta page that follows the postings at 48.
    let lo = header_u32(&pristine, 40) as usize * PAGE_SIZE;
    let hi = header_u32(&pristine, 48) as usize * PAGE_SIZE;
    assert!(lo < hi && hi <= pristine.len(), "index/posting region bounds {lo}..{hi}");

    let mut rng = Lcg(sweep_seed());
    let damaged = TempPath::new(".natix");
    for _ in 0..200 {
        let off = lo + (rng.next() as usize) % (hi - lo);
        let mask = (rng.next() % 255 + 1) as u8; // never zero: always a real flip
        let mut bytes = pristine.clone();
        bytes[off] ^= mask;
        std::fs::write(damaged.path(), &bytes).unwrap();

        let store = match DiskStore::open(damaged.path(), 8) {
            Ok(s) => s,
            Err(e) => {
                assert!(e.is_corrupt(), "open rejects flip at {off} typed: {e}");
                continue;
            }
        };
        // The flip landed in a sealed page, so the deep check MUST see it.
        let err = store.verify().expect_err("verify misses a flipped index/posting byte");
        assert!(err.is_corrupt(), "verify error is typed: {err}");
        // Lazily-read pages can still surface the damage mid-query:
        // typed error or the pristine answer, never a silent lie.
        for (q, want) in QUERIES.iter().zip(&expect) {
            match nqe::evaluate(&store, q, &TranslateOptions::cost_based()) {
                Ok(got) => assert_eq!(&got, want, "silent wrong answer for `{q}` (flip at {off})"),
                Err(e) => assert!(!e.to_string().is_empty()),
            }
        }
    }
}
