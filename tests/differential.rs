//! Differential tests: the four evaluators (improved/canonical algebraic,
//! context-list/naive interpreters) must produce identical results on a
//! broad query corpus over the paper's generated documents.

use compiler::{CostMode, TranslateOptions};
use interp::{InterpOptions, Interpreter};
use natix::QueryOutput;
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};
use xmlstore::{ArenaStore, XmlStore};

mod corpus;
use corpus::{DBLP_QUERIES, TREE_QUERIES};

fn run_all(store: &ArenaStore, queries: &[&str]) {
    for q in queries {
        let improved = nqe::evaluate(store, q, &TranslateOptions::improved())
            .unwrap_or_else(|e| panic!("improved `{q}`: {e}"));
        let canonical = nqe::evaluate(store, q, &TranslateOptions::canonical())
            .unwrap_or_else(|e| panic!("canonical `{q}`: {e}"));
        assert_eq!(improved, canonical, "improved vs canonical on `{q}`");
        let cl = Interpreter::new(store, InterpOptions::context_list())
            .evaluate(q, store.root())
            .unwrap_or_else(|e| panic!("interp `{q}`: {e}"));
        assert_eq!(improved, cl, "algebraic vs interpreter on `{q}`");
    }
}

#[test]
fn tree_documents_all_engines_agree() {
    for params in [
        TreeParams { max_elements: 40, fanout: 3, max_depth: 3 },
        TreeParams { max_elements: 200, fanout: 6, max_depth: 4 },
        TreeParams { max_elements: 500, fanout: 10, max_depth: 3 },
        // Degenerate shapes.
        TreeParams { max_elements: 30, fanout: 1, max_depth: 40 }, // a chain
        TreeParams { max_elements: 50, fanout: 49, max_depth: 1 }, // flat
    ] {
        let store = generate_tree(params);
        run_all(&store, TREE_QUERIES);
    }
}

/// Hiding the structural index behind `NoIndex` must not change a single
/// answer: the corpus runs once against the indexed arena and once
/// against the delegating wrapper (cursor axes, hash dedup, comparator
/// sort) and the outputs are compared byte for byte.
#[test]
fn indexed_and_unindexed_paths_agree_on_corpus() {
    let store = generate_tree(TreeParams { max_elements: 200, fanout: 6, max_depth: 4 });
    assert!(store.structural_index().is_some());
    let plain = xmlstore::NoIndex(&store);
    assert!(plain.structural_index().is_none(), "the wrapper hides the index");
    for q in TREE_QUERIES {
        for opts in [TranslateOptions::improved(), TranslateOptions::canonical()] {
            let fast =
                nqe::evaluate(&store, q, &opts).unwrap_or_else(|e| panic!("indexed `{q}`: {e}"));
            let slow =
                nqe::evaluate(&plain, q, &opts).unwrap_or_else(|e| panic!("unindexed `{q}`: {e}"));
            assert_eq!(fast, slow, "indexed vs NoIndex on `{q}`");
        }
    }
}

#[test]
fn naive_interpreter_agrees_on_small_documents() {
    let store = generate_tree(TreeParams { max_elements: 60, fanout: 3, max_depth: 3 });
    for q in TREE_QUERIES {
        let improved = nqe::evaluate(&store, q, &TranslateOptions::improved()).unwrap();
        let naive = Interpreter::new(&store, InterpOptions::naive())
            .evaluate(q, store.root())
            .unwrap_or_else(|e| panic!("naive `{q}`: {e}"));
        assert_eq!(improved, naive, "algebraic vs naive on `{q}`");
    }
}

#[test]
fn dblp_document_all_engines_agree() {
    let store = generate_dblp(DblpParams { records: 300, seed: 11 });
    run_all(&store, DBLP_QUERIES);
}

/// DESIGN.md §14: the parallel plan must be byte-identical to the serial
/// one — Exchange merges chunk results in source order and every body
/// operator is partition transparent, so no tolerance is granted.
#[test]
fn parallel_threads_agree_with_serial() {
    let tree = generate_tree(TreeParams { max_elements: 500, fanout: 10, max_depth: 3 });
    let dblp = generate_dblp(DblpParams { records: 300, seed: 11 });
    let corpora: [(&dyn XmlStore, &[&str]); 2] = [(&tree, TREE_QUERIES), (&dblp, DBLP_QUERIES)];
    for (store, queries) in corpora {
        for q in queries {
            let serial = nqe::evaluate(store, q, &TranslateOptions::improved())
                .unwrap_or_else(|e| panic!("serial `{q}`: {e}"));
            for threads in [2, 4, 8] {
                let opts = TranslateOptions::improved().with_threads(threads);
                let par = nqe::evaluate(store, q, &opts)
                    .unwrap_or_else(|e| panic!("threads={threads} `{q}`: {e}"));
                assert_eq!(par, serial, "threads={threads} on `{q}`");
            }
        }
    }
}

#[test]
fn ablation_combinations_agree() {
    // Every combination of the four §4 improvements — with and without
    // the cost-based optimizer on top — must preserve semantics; only
    // performance may change.
    let store = generate_tree(TreeParams { max_elements: 120, fanout: 4, max_depth: 3 });
    let reference: Vec<QueryOutput> = TREE_QUERIES
        .iter()
        .map(|q| nqe::evaluate(&store, q, &TranslateOptions::improved()).unwrap())
        .collect();
    for bits in 0..64u32 {
        let opts = TranslateOptions {
            stacked_outer: bits & 1 != 0,
            push_dedup: bits & 2 != 0,
            memoize_inner: bits & 4 != 0,
            split_expensive: bits & 8 != 0,
            prune_properties: bits & 16 != 0,
            optimize: if bits & 32 != 0 {
                CostMode::CostBased
            } else {
                CostMode::Off
            },
            threads: 1,
        };
        for (q, expect) in TREE_QUERIES.iter().zip(&reference) {
            let got =
                nqe::evaluate(&store, q, &opts).unwrap_or_else(|e| panic!("{opts:?} `{q}`: {e}"));
            assert_eq!(&got, expect, "{opts:?} on `{q}`");
        }
    }
}

#[test]
fn fig5_queries_known_cardinalities() {
    // On a generated document, query 1 and query 4 of Fig. 5 both select
    // id attributes of inner (non-root) elements; sanity-check the
    // cardinalities are stable and plausible.
    let store = generate_tree(TreeParams::small(200));
    let q1 = nqe::evaluate(
        &store,
        "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
        &TranslateOptions::improved(),
    )
    .unwrap();
    // Every element below the root is reachable: descendant/ancestor/
    // descendant covers all non-root elements.
    assert_eq!(q1.as_nodes().unwrap().len(), 199);
    let q4 = nqe::evaluate(
        &store,
        "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
        &TranslateOptions::improved(),
    )
    .unwrap();
    assert_eq!(q4.as_nodes().unwrap().len(), 199);
}

// ---------- numeric/string edge cases --------------------------------------

/// IEEE-754 and XPath §4 corner cases: NaN, signed zero, infinities in
/// string(), substring() with NaN/infinite/out-of-range positions, and
/// id() with duplicate tokens. These stress exactly the paths where the
/// four evaluators are most likely to drift apart.
const EDGE_QUERIES: &[&str] = &[
    // NaN construction and propagation.
    "number('abc')",
    "number('')",
    "0 div 0",
    "number('abc') + 1",
    "boolean(0 div 0)",
    "string(0 div 0)",
    // NaN comparisons: every comparison with NaN is false, so != is true.
    "0 div 0 = 0 div 0",
    "0 div 0 != 0 div 0",
    "0 div 0 < 1",
    "0 div 0 > 1",
    // Signed zero: -0 compares and prints as 0.
    "string(-0)",
    "-0 = 0",
    "string(0 - 0)",
    "string(round(-0.4))",
    "ceiling(-0.5) = 0",
    "1 div (0 - 0) = 1 div 0",
    // Infinities.
    "1 div 0",
    "-1 div 0",
    "string(1 div 0)",
    "string(-1 div 0)",
    "1 div 0 > 1000000",
    "-1 div 0 < 0",
    "round(1 div 0)",
    "floor(-1 div 0)",
    // substring() with NaN / infinite / fractional / out-of-range indices
    // (the spec's own example set, §4.2).
    "substring('12345', 2, 3)",
    "substring('12345', 1.5, 2.6)",
    "substring('12345', 0, 3)",
    "substring('12345', 0 div 0, 3)",
    "substring('12345', 1, 0 div 0)",
    "substring('12345', -42, 1 div 0)",
    "substring('12345', -1 div 0, 1 div 0)",
    "substring('12345', 7, 3)",
    "substring('12345', -2)",
    // id() with duplicate and unknown tokens.
    "id('3 3 7 7 3')/@id",
    "count(id('3 3 7 7 3'))",
    "count(id('99999 99999'))",
    "id('5') | id('5 5')",
];

/// QueryOutput comparison that treats NaN as equal to NaN (the derived
/// PartialEq follows IEEE semantics, under which a NaN-producing query
/// would never equal its own oracle).
fn outputs_agree(a: &QueryOutput, b: &QueryOutput) -> bool {
    match (a, b) {
        (QueryOutput::Num(x), QueryOutput::Num(y)) => (x.is_nan() && y.is_nan()) || x == y,
        _ => a == b,
    }
}

#[test]
fn edge_case_corpus_all_four_evaluators_agree() {
    let store = generate_tree(TreeParams { max_elements: 60, fanout: 3, max_depth: 3 });
    for q in EDGE_QUERIES {
        let improved = nqe::evaluate(&store, q, &TranslateOptions::improved())
            .unwrap_or_else(|e| panic!("improved `{q}`: {e}"));
        for (name, out) in [
            (
                "canonical",
                nqe::evaluate(&store, q, &TranslateOptions::canonical())
                    .unwrap_or_else(|e| panic!("canonical `{q}`: {e}")),
            ),
            (
                "extended",
                nqe::evaluate(&store, q, &TranslateOptions::extended())
                    .unwrap_or_else(|e| panic!("extended `{q}`: {e}")),
            ),
            (
                "context-list",
                Interpreter::new(&store, InterpOptions::context_list())
                    .evaluate(q, store.root())
                    .unwrap_or_else(|e| panic!("interp `{q}`: {e}")),
            ),
            (
                "naive",
                Interpreter::new(&store, InterpOptions::naive())
                    .evaluate(q, store.root())
                    .unwrap_or_else(|e| panic!("naive `{q}`: {e}")),
            ),
        ] {
            assert!(
                outputs_agree(&improved, &out),
                "improved vs {name} on `{q}`: {improved:?} vs {out:?}"
            );
        }
    }
}

// ---------- fault-injection sweep ------------------------------------------

/// Run one query with a fault injected at a precise governor event and
/// check the contract: the result is either the correct answer or a typed
/// error — never a panic, never a wrong answer, never leaked temp state.
fn run_injected(
    store: &ArenaStore,
    q: &str,
    opts: &TranslateOptions,
    fp: nqe::FailPoint,
) -> Result<QueryOutput, algebra::QueryError> {
    let compiled = compiler::compile(q, opts).expect("corpus queries compile");
    let mut phys = nqe::build_physical(&compiled);
    let gov = nqe::ResourceGovernor::with_failpoint(compiler::ResourceLimits::unlimited(), fp);
    let out = phys.execute_governed(store, &std::collections::HashMap::new(), store.root(), &gov);
    assert_eq!(gov.transient_bytes(), 0, "leaked transient charges on `{q}` ({fp:?})");
    out
}

/// Deterministic fault sweep: budget exhaustion at the Nth allocation and
/// cancellation at the Nth tick, over the whole tree corpus, for both the
/// improved and the canonical plans.
#[test]
fn fault_injection_sweep_over_corpus() {
    let store = generate_tree(TreeParams { max_elements: 60, fanout: 3, max_depth: 3 });
    for q in TREE_QUERIES {
        let oracle = nqe::evaluate(&store, q, &TranslateOptions::improved()).unwrap();
        for opts in [TranslateOptions::improved(), TranslateOptions::canonical()] {
            for alloc in [1u64, 2, 3, 5, 8, 13, 21, 50] {
                let fp = nqe::FailPoint { fail_at_alloc: Some(alloc), cancel_at_tick: None };
                match run_injected(&store, q, &opts, fp) {
                    Ok(out) => assert!(
                        outputs_agree(&out, &oracle),
                        "survived injection but wrong on `{q}`: {out:?} vs {oracle:?}"
                    ),
                    Err(e) => assert!(
                        matches!(e, algebra::QueryError::MemoryExceeded { .. }),
                        "alloc failpoint must surface as MemoryExceeded on `{q}`: {e:?}"
                    ),
                }
            }
            for tick in [1u64, 5, 25, 200] {
                let fp = nqe::FailPoint { fail_at_alloc: None, cancel_at_tick: Some(tick) };
                match run_injected(&store, q, &opts, fp) {
                    Ok(out) => assert!(
                        outputs_agree(&out, &oracle),
                        "survived injection but wrong on `{q}`: {out:?} vs {oracle:?}"
                    ),
                    Err(e) => assert!(
                        matches!(e, algebra::QueryError::Cancelled),
                        "tick failpoint must surface as Cancelled on `{q}`: {e:?}"
                    ),
                }
            }
        }
    }
}
