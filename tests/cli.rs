//! CLI regression tests: error paths must render the typed error on
//! stderr and exit non-zero (they used to print and exit 0), and the
//! resource flags must parse and govern.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_natix-cli"))
}

fn write_doc(name: &str, xml: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("natix-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(xml.as_bytes()).unwrap();
    path
}

#[test]
fn successful_query_exits_zero() {
    let doc = write_doc("ok.xml", "<r><a><b/><b/></a></r>");
    let out = cli().arg(&doc).arg("count(/r/a/b)").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("number: 2"));
    std::fs::remove_file(&doc).ok();
}

#[test]
fn compile_error_exits_nonzero_with_typed_message() {
    let doc = write_doc("compile-err.xml", "<r/>");
    let out = cli().arg(&doc).arg("bogus()").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("bogus"), "{stderr}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn memory_trip_exits_nonzero_with_typed_message() {
    let doc = write_doc("mem.xml", "<r><a><b/><b/><b/></a></r>");
    let out = cli()
        .arg(&doc)
        .args(["--max-mem", "64", "/r/a/b[position()=last()]"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("memory budget exceeded"), "{stderr}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn timeout_flag_parses_and_governs() {
    let doc = write_doc("timeout.xml", "<r><a><b/></a></r>");
    // A zero timeout is already expired when execution starts.
    let out = cli().arg(&doc).args(["--timeout", "0s", "/r/a/b"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline exceeded"), "{out:?}");
    // A generous timeout passes.
    let out = cli().arg(&doc).args(["--timeout", "30s", "/r/a/b"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn one_failing_query_among_many_exits_nonzero() {
    let doc = write_doc("mixed.xml", "<r><a><b/></a></r>");
    let out = cli().arg(&doc).arg("count(/r/a/b)").arg("bogus()").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // The good query still ran.
    assert!(String::from_utf8_lossy(&out.stdout).contains("number: 1"));
    std::fs::remove_file(&doc).ok();
}

#[test]
fn bad_flag_value_exits_with_usage_error() {
    let out = cli().args(["--max-mem", "sixteen", "doc.xml", "/r"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = cli().args(["--timeout", "xyz", "doc.xml", "/r"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn analyze_mode_reports_trip_and_exits_nonzero() {
    let doc = write_doc("analyze.xml", "<r><a><b/><b/><b/></a></r>");
    let out = cli()
        .arg(&doc)
        .args(["--analyze", "--max-mem", "64", "/r/a/b[position()=last()]"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stopped:"), "report names the stop reason: {stdout}");
    assert!(stdout.contains("resources:"), "{stdout}");
    std::fs::remove_file(&doc).ok();
}

// ---- failure-class exit codes (DESIGN.md §13) --------------------------

/// Build a valid `.natix` page file via `--persist` and return its path.
fn persist_store(name: &str, xml: &str) -> std::path::PathBuf {
    let doc = write_doc(&format!("{name}.xml"), xml);
    let store =
        std::env::temp_dir().join(format!("natix-cli-test-{}-{name}.natix", std::process::id()));
    let out = cli().arg(&doc).args(["--persist", store.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_file(&doc).ok();
    store
}

#[test]
fn xml_parse_error_exits_3() {
    let doc = write_doc("parse-err.xml", "<r><unclosed></r>");
    let out = cli().arg(&doc).arg("/r").output().unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"), "{out:?}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn depth_limit_exits_3_with_typed_error() {
    let mut xml = String::new();
    for _ in 0..64 {
        xml.push_str("<d>");
    }
    for _ in 0..64 {
        xml.push_str("</d>");
    }
    let doc = write_doc("deep.xml", &xml);
    let out = cli().arg(&doc).args(["--max-depth", "8", "/d"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("nesting deeper"), "{out:?}");
    // Raising the cap makes the same document load.
    let out = cli().arg(&doc).args(["--max-depth", "128", "count(//d)"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn missing_input_file_exits_4() {
    let out = cli().arg("/nonexistent/natix-cli-test-missing.xml").arg("/r").output().unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
}

#[test]
fn corrupt_store_exits_5_with_page_coordinates() {
    let store = persist_store("corrupt5", "<r><a>payload</a><a>text</a></r>");
    // Flip one byte in the node region (beyond the header page) — the
    // page checksum catches it at open.
    let mut bytes = std::fs::read(&store).unwrap();
    let off = 2 * 8192 + 100;
    assert!(bytes.len() > off, "store should span several pages");
    bytes[off] ^= 0xFF;
    std::fs::write(&store, &bytes).unwrap();
    let out = cli().arg(&store).arg("count(//a)").output().unwrap();
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("page"), "diagnostic names the page: {stderr}");
    std::fs::remove_file(&store).ok();
}

#[test]
fn truncated_store_exits_5() {
    let store = persist_store("truncated", "<r><a>x</a></r>");
    let bytes = std::fs::read(&store).unwrap();
    std::fs::write(&store, &bytes[..bytes.len() / 2 - 7]).unwrap();
    let out = cli().arg(&store).arg("/r").output().unwrap();
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    std::fs::remove_file(&store).ok();
}

#[test]
fn verify_store_reports_ok_and_detects_damage() {
    let store = persist_store("verify", "<r><a k='v'>text</a></r>");
    let out = cli().arg(&store).arg("--verify-store").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "{stdout}");
    assert!(stdout.contains("page(s)"), "{stdout}");
    // Index regions are verified and counted: 5 nodes in the structural
    // index, 2 content keys (@k='v', a→'text') with one posting each.
    assert!(stdout.contains("5 index entr(ies)"), "{stdout}");
    assert!(stdout.contains("2 content key(s)"), "{stdout}");
    assert!(stdout.contains("2 posting(s)"), "{stdout}");
    // Damage the file: verification must fail with the corrupt exit code.
    let mut bytes = std::fs::read(&store).unwrap();
    let last = bytes.len() - 10;
    bytes[last] ^= 0x01;
    std::fs::write(&store, &bytes).unwrap();
    let out = cli().arg(&store).arg("--verify-store").output().unwrap();
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    std::fs::remove_file(&store).ok();
}

#[test]
fn verify_store_without_path_is_usage_error() {
    let out = cli().arg("--verify-store").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
