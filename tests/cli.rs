//! CLI regression tests: error paths must render the typed error on
//! stderr and exit non-zero (they used to print and exit 0), and the
//! resource flags must parse and govern.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_natix-cli"))
}

fn write_doc(name: &str, xml: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("natix-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(xml.as_bytes()).unwrap();
    path
}

#[test]
fn successful_query_exits_zero() {
    let doc = write_doc("ok.xml", "<r><a><b/><b/></a></r>");
    let out = cli().arg(&doc).arg("count(/r/a/b)").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("number: 2"));
    std::fs::remove_file(&doc).ok();
}

#[test]
fn compile_error_exits_nonzero_with_typed_message() {
    let doc = write_doc("compile-err.xml", "<r/>");
    let out = cli().arg(&doc).arg("bogus()").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("bogus"), "{stderr}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn memory_trip_exits_nonzero_with_typed_message() {
    let doc = write_doc("mem.xml", "<r><a><b/><b/><b/></a></r>");
    let out = cli()
        .arg(&doc)
        .args(["--max-mem", "64", "/r/a/b[position()=last()]"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("memory budget exceeded"), "{stderr}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn timeout_flag_parses_and_governs() {
    let doc = write_doc("timeout.xml", "<r><a><b/></a></r>");
    // A zero timeout is already expired when execution starts.
    let out = cli().arg(&doc).args(["--timeout", "0s", "/r/a/b"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline exceeded"), "{out:?}");
    // A generous timeout passes.
    let out = cli().arg(&doc).args(["--timeout", "30s", "/r/a/b"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn one_failing_query_among_many_exits_nonzero() {
    let doc = write_doc("mixed.xml", "<r><a><b/></a></r>");
    let out = cli().arg(&doc).arg("count(/r/a/b)").arg("bogus()").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // The good query still ran.
    assert!(String::from_utf8_lossy(&out.stdout).contains("number: 1"));
    std::fs::remove_file(&doc).ok();
}

#[test]
fn bad_flag_value_exits_with_usage_error() {
    let out = cli().args(["--max-mem", "sixteen", "doc.xml", "/r"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = cli().args(["--timeout", "xyz", "doc.xml", "/r"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn analyze_mode_reports_trip_and_exits_nonzero() {
    let doc = write_doc("analyze.xml", "<r><a><b/><b/><b/></a></r>");
    let out = cli()
        .arg(&doc)
        .args(["--analyze", "--max-mem", "64", "/r/a/b[position()=last()]"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stopped:"), "report names the stop reason: {stdout}");
    assert!(stdout.contains("resources:"), "{stdout}");
    std::fs::remove_file(&doc).ok();
}
