//! Property-based tests: random documents × random queries, with the
//! three evaluators as mutual oracles, plus structural invariants of the
//! stores and the parser.

use proptest::prelude::*;

use compiler::TranslateOptions;
use interp::{InterpOptions, Interpreter};
use xmlstore::{parse_document, to_xml, ArenaBuilder, ArenaStore, NodeId, NodeKind, XmlStore};

// ---------- random documents -------------------------------------------

#[derive(Clone, Debug)]
enum Tree {
    Element {
        name: usize,
        attrs: Vec<(usize, String)>,
        children: Vec<Tree>,
    },
    Text(String),
    Comment,
}

const NAMES: [&str; 4] = ["a", "b", "c", "d"];
const ATTRS: [&str; 3] = ["x", "y", "id"];

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        ("[a-z]{1,6}").prop_map(Tree::Text),
        Just(Tree::Comment),
        (0..NAMES.len()).prop_map(|name| Tree::Element { name, attrs: vec![], children: vec![] }),
    ];
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            0..NAMES.len(),
            proptest::collection::vec((0..ATTRS.len(), "[0-9]{1,2}"), 0..3),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn build(t: &Tree, b: &mut ArenaBuilder) {
    match t {
        Tree::Element { name, attrs, children } => {
            b.start_element(NAMES[*name]);
            let mut seen = Vec::new();
            for (a, v) in attrs {
                if !seen.contains(a) {
                    seen.push(*a);
                    b.attribute(ATTRS[*a], v);
                }
            }
            for c in children {
                build(c, b);
            }
            b.end_element();
        }
        Tree::Text(s) => {
            b.text(s);
        }
        Tree::Comment => {
            b.comment("c");
        }
    }
}

fn make_store(t: &Tree) -> ArenaStore {
    let mut b = ArenaBuilder::new();
    // Wrap in a fixed root so the document always has one element root.
    b.start_element("r");
    build(t, &mut b);
    b.end_element();
    b.finish()
}

// ---------- random queries -----------------------------------------------

fn axis_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("child"),
        Just("descendant"),
        Just("descendant-or-self"),
        Just("parent"),
        Just("ancestor"),
        Just("ancestor-or-self"),
        Just("following"),
        Just("following-sibling"),
        Just("preceding"),
        Just("preceding-sibling"),
        Just("self"),
        Just("attribute"),
    ]
}

fn node_test_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("*".to_owned()),
        (0..NAMES.len()).prop_map(|i| NAMES[i].to_owned()),
        Just("node()".to_owned()),
        Just("text()".to_owned()),
        Just("comment()".to_owned()),
    ]
}

fn predicate_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (1..4u32).prop_map(|k| format!("{k}")),
        (1..3u32).prop_map(|k| format!("position() = last() - {k}")),
        Just("position() mod 2 = 1".to_owned()),
        Just("last() > 2".to_owned()),
        (0..ATTRS.len()).prop_map(|i| format!("@{}", ATTRS[i])),
        (0..ATTRS.len(), 0..100u32).prop_map(|(i, v)| format!("@{} = '{}'", ATTRS[i], v)),
        (0..NAMES.len()).prop_map(|i| format!("count({}) > 1", NAMES[i])),
        (0..NAMES.len()).prop_map(|i| NAMES[i].to_string()),
        Just("not(*)".to_owned()),
        Just("string-length(name()) = 1".to_owned()),
    ]
}

fn step_strategy() -> impl Strategy<Value = String> {
    (
        axis_strategy(),
        node_test_strategy(),
        proptest::collection::vec(predicate_strategy(), 0..2),
    )
        .prop_map(|(axis, test, preds)| {
            let mut s = format!("{axis}::{test}");
            for p in preds {
                s.push_str(&format!("[{p}]"));
            }
            s
        })
}

fn query_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(step_strategy(), 1..4)
        .prop_map(|steps| format!("/{}", steps.join("/")))
}

// ---------- oracle comparison ---------------------------------------------

fn nodes_of(out: &algebra::QueryOutput) -> Vec<NodeId> {
    out.as_nodes().expect("node-set").to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engines_agree_on_random_documents_and_queries(
        t in tree_strategy(),
        q in query_strategy(),
    ) {
        let store = make_store(&t);
        let improved = nqe::evaluate(&store, &q, &TranslateOptions::improved());
        let canonical = nqe::evaluate(&store, &q, &TranslateOptions::canonical());
        let extended = nqe::evaluate(&store, &q, &TranslateOptions::extended());
        let interp = Interpreter::new(&store, InterpOptions::context_list())
            .evaluate(&q, store.root());
        let (improved, canonical, extended, interp) = (
            improved.expect("improved"),
            canonical.expect("canonical"),
            extended.expect("extended"),
            interp.expect("interp"),
        );
        prop_assert_eq!(nodes_of(&improved), nodes_of(&canonical), "improved vs canonical: {}", q);
        prop_assert_eq!(nodes_of(&improved), nodes_of(&extended), "improved vs extended: {}", q);
        prop_assert_eq!(nodes_of(&improved), nodes_of(&interp), "algebraic vs interp: {}", q);
    }

    #[test]
    fn results_are_duplicate_free_and_document_ordered(
        t in tree_strategy(),
        q in query_strategy(),
    ) {
        let store = make_store(&t);
        let out = nqe::evaluate(&store, &q, &TranslateOptions::improved()).expect("eval");
        let ns = nodes_of(&out);
        for w in ns.windows(2) {
            prop_assert!(store.order(w[0]) < store.order(w[1]));
        }
    }

    #[test]
    fn serialize_parse_roundtrip(t in tree_strategy()) {
        let store = make_store(&t);
        let xml = to_xml(&store);
        let reparsed = parse_document(&xml).expect("reparse");
        prop_assert_eq!(to_xml(&reparsed), xml);
    }

    #[test]
    fn document_order_is_total_and_preorder(t in tree_strategy()) {
        let store = make_store(&t);
        let n = store.node_count() as u32;
        let mut orders: Vec<u64> = (0..n).map(|i| store.order(NodeId(i))).collect();
        orders.sort_unstable();
        orders.dedup();
        prop_assert_eq!(orders.len(), n as usize, "orders must be unique");
        // Parent precedes child; attributes precede children.
        for i in 0..n {
            let node = NodeId(i);
            if let Some(p) = store.parent(node) {
                prop_assert!(store.order(p) < store.order(node));
            }
        }
    }

    #[test]
    fn axis_partition_on_random_documents(t in tree_strategy()) {
        use xmlstore::{axis_nodes, Axis};
        let store = make_store(&t);
        // Pick a handful of nodes to keep runtime bounded.
        let count = store.node_count() as u32;
        for i in (0..count).step_by(7.max(count as usize / 5)) {
            let node = NodeId(i);
            if store.kind(node) == NodeKind::Attribute {
                continue;
            }
            let mut all: Vec<NodeId> = Vec::new();
            for ax in [Axis::SelfAxis, Axis::Ancestor, Axis::Descendant, Axis::Preceding, Axis::Following] {
                all.extend(axis_nodes(&store, ax, node));
            }
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            prop_assert_eq!(all.len(), before, "axes must be disjoint");
            let expected = (0..count)
                .map(NodeId)
                .filter(|&x| store.kind(x) != NodeKind::Attribute)
                .count();
            prop_assert_eq!(all.len(), expected, "axes must cover the document");
        }
    }

    #[test]
    fn fault_injection_never_panics_or_corrupts(
        t in tree_strategy(),
        q in query_strategy(),
        // 0 means "no failpoint on this channel" (the vendored proptest
        // has no option strategy).
        alloc in (0u64..40).prop_map(|v| (v > 0).then_some(v)),
        tick in (0u64..200).prop_map(|v| (v > 0).then_some(v)),
    ) {
        use nqe::{FailPoint, ResourceGovernor};
        let store = make_store(&t);
        let opts = TranslateOptions::improved();
        let oracle = nqe::evaluate(&store, &q, &opts).expect("ungoverned oracle");
        let compiled = compiler::compile(&q, &opts).expect("compiles");
        let mut phys = nqe::build_physical(&compiled);
        let gov = ResourceGovernor::with_failpoint(
            compiler::ResourceLimits::unlimited(),
            FailPoint { fail_at_alloc: alloc, cancel_at_tick: tick },
        );
        let out = phys.execute_governed(
            &store,
            &std::collections::HashMap::new(),
            store.root(),
            &gov,
        );
        prop_assert_eq!(gov.transient_bytes(), 0, "leaked transient charges: {}", q);
        match out {
            // If the query survived the injection, the answer must be the
            // ungoverned one (node-set queries: derived PartialEq is safe).
            Ok(got) => prop_assert_eq!(nodes_of(&got), nodes_of(&oracle), "wrong answer: {}", q),
            Err(e) => prop_assert!(
                matches!(
                    e,
                    algebra::QueryError::MemoryExceeded { .. } | algebra::QueryError::Cancelled
                ),
                "injection must surface as its typed error on {}: {:?}", q, e
            ),
        }
    }

    #[test]
    fn disk_store_equals_arena_on_random_documents(t in tree_strategy()) {
        let arena = make_store(&t);
        let path = xmlstore::tmp::TempPath::new(".natix");
        let disk = xmlstore::diskstore::DiskStore::create_from(&arena, path.path(), 3)
            .expect("disk store");
        prop_assert_eq!(to_xml(&disk), to_xml(&arena));
        for i in 0..arena.node_count() as u32 {
            let n = NodeId(i);
            prop_assert_eq!(arena.kind(n), disk.kind(n));
            // Disk orders are dense ranks; arena keys are gap-scaled.
            prop_assert_eq!(arena.order(n), disk.order(n) << xmlstore::ORDER_GAP_SHIFT);
            prop_assert_eq!(arena.parent(n), disk.parent(n));
        }
    }
}

/// Body of `range_scan_axes_equal_cursor_on_random_documents`, hoisted
/// out of the `proptest!` block (the vendored macro munches its input
/// token by token, so long bodies overflow the recursion limit).
fn check_axes_against_cursor(store: &ArenaStore) -> Result<(), proptest::prelude::TestCaseError> {
    use xmlstore::{axis_nodes, indexed_axis_nodes, Axis};
    const AXES: [Axis; 13] = [
        Axis::Child,
        Axis::Descendant,
        Axis::Parent,
        Axis::Ancestor,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Following,
        Axis::Preceding,
        Axis::Attribute,
        Axis::Namespace,
        Axis::SelfAxis,
        Axis::DescendantOrSelf,
        Axis::AncestorOrSelf,
    ];
    let idx = store.structural_index().expect("arena stores are indexed");
    prop_assert_eq!(idx.len(), store.node_count(), "every node is ranked");
    for rank in 0..idx.len() as u32 {
        let node = idx.node_at(rank);
        prop_assert_eq!(idx.rank_of(node), Some(rank), "rank_of inverts node_at");
        for ax in AXES {
            let fast = indexed_axis_nodes(store, ax, node);
            let slow = axis_nodes(store, ax, node);
            prop_assert_eq!(fast, slow, "axis {:?} of rank {}", ax, rank);
            let interval = matches!(
                ax,
                Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding
            );
            prop_assert_eq!(
                idx.range_scan(ax, node).is_some(),
                interval,
                "range scans cover exactly the interval axes ({:?})",
                ax
            );
        }
    }
    Ok(())
}

// A second block: the vendored `proptest!` macro's recursion depth grows
// with the number of tests per invocation, so the index properties get
// their own.
proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // The structural index's range scans are a pure optimisation: on
    // every random document, for every node and all thirteen axes, the
    // indexed kernel returns exactly what the `AxisCursor` oracle walks
    // — and the four interval axes really do take the range-scan path.
    // (Plain comments: `///` desugars to `#[doc]`, which the vendored
    // macro's `#[test] fn` matcher does not accept.)
    #[test]
    fn range_scan_axes_equal_cursor_on_random_documents(t in tree_strategy()) {
        check_axes_against_cursor(&make_store(&t))?;
    }

    // `NoIndex` forces the legacy cursor/hash/comparator paths through
    // the whole engine; answers must be byte-identical to the indexed
    // run on random documents × random queries.
    #[test]
    fn indexed_and_unindexed_engines_agree(
        t in tree_strategy(),
        q in query_strategy(),
    ) {
        let store = make_store(&t);
        let plain = xmlstore::NoIndex(&store);
        let fast = nqe::evaluate(&store, &q, &TranslateOptions::improved()).expect("indexed");
        let slow = nqe::evaluate(&plain, &q, &TranslateOptions::improved()).expect("unindexed");
        prop_assert_eq!(nodes_of(&fast), nodes_of(&slow), "indexed vs NoIndex: {}", q);
    }
}

/// Body of `parallel_governed_runs_trip_typed_and_leak_nothing` (hoisted:
/// the vendored `proptest!` macro overflows its recursion limit on long
/// bodies). A parallel plan runs under a tight budget; whether a worker or
/// the coordinator trips it, the error must be the typed one and the
/// governor must hold zero transient bytes afterwards (DESIGN.md §14's
/// first-error-wins unwind).
fn check_governed_parallel(
    store: &ArenaStore,
    q: &str,
    threads: usize,
    mem: Option<u64>,
    tuples: Option<u64>,
) -> Result<(), proptest::prelude::TestCaseError> {
    use nqe::ResourceGovernor;
    let opts = TranslateOptions::improved().with_threads(threads);
    let oracle = nqe::evaluate(store, q, &TranslateOptions::improved()).expect("serial oracle");
    let compiled = compiler::compile(q, &opts).expect("compiles");
    let mut phys = nqe::build_physical(&compiled);
    let limits = compiler::ResourceLimits {
        max_memory_bytes: mem,
        max_tuples: tuples,
        ..compiler::ResourceLimits::unlimited()
    };
    let gov = ResourceGovernor::new(limits);
    let out = phys.execute_governed(store, &std::collections::HashMap::new(), store.root(), &gov);
    prop_assert_eq!(gov.transient_bytes(), 0, "leaked transient charges: {}", q);
    match out {
        Ok(got) => prop_assert_eq!(nodes_of(&got), nodes_of(&oracle), "wrong answer: {}", q),
        Err(e) => prop_assert!(
            matches!(
                e,
                algebra::QueryError::MemoryExceeded { .. }
                    | algebra::QueryError::TuplesExceeded { .. }
            ),
            "budget trip must surface typed on {}: {:?}",
            q,
            e
        ),
    }
    Ok(())
}

// Parallel execution properties (DESIGN.md §14): Exchange must be
// invisible in every answer and in every governor postcondition.
proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    // Parallel execution is a pure optimisation: for threads ∈ {2, 4, 8}
    // the answer must be byte-identical to the serial engine on random
    // documents × random queries (the planner decides per query whether
    // an Exchange pays off; both outcomes are exercised).
    #[test]
    fn parallel_and_serial_engines_agree(
        t in tree_strategy(),
        q in query_strategy(),
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let store = make_store(&t);
        let serial = nqe::evaluate(&store, &q, &TranslateOptions::improved()).expect("serial");
        let opts = TranslateOptions::improved().with_threads(threads);
        let par = nqe::evaluate(&store, &q, &opts).expect("parallel");
        prop_assert_eq!(
            nodes_of(&par), nodes_of(&serial),
            "threads={} vs serial: {}", threads, q
        );
    }

    // Governed parallel runs: random tight memory/tuple budgets make
    // workers trip mid-partition. 0 on a channel means "unlimited".
    #[test]
    fn parallel_governed_runs_trip_typed_and_leak_nothing(
        t in tree_strategy(),
        q in query_strategy(),
        threads in prop_oneof![Just(2usize), Just(4)],
        mem in (0u64..4096).prop_map(|v| (v > 0).then_some(v)),
        tuples in (0u64..200).prop_map(|v| (v > 0).then_some(v)),
    ) {
        check_governed_parallel(&make_store(&t), &q, threads, mem, tuples)?;
    }
}
