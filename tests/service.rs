//! The PR 7 concurrency battery: N client threads over one shared
//! [`Engine`] must be byte-identical to serial execution, per-session
//! budget trips must surface as typed errors (never panics or poisoned
//! state), the worker pool's admission bound must reject rather than
//! queue without bound, and the TCP front-end must serve concurrent
//! connections. Random-input cases run under the `PROPTEST_SEED`
//! convention shared with `tests/property.rs`.

use std::sync::{Arc, Barrier};

use proptest::prelude::*;

use natix::service::{error_token, render_output, serial_reference};
use natix::{
    Document, Engine, EngineConfig, NatixError, QueryService, ResourceLimits, ServiceConfig,
    Session,
};
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};
use xmlstore::ArenaBuilder;

/// A fixed mixed-shape corpus: node-sets, scalars, unions, predicates.
const CORPUS: [&str; 10] = [
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() = 3]/title",
    "/dblp/article[position() = last()]/title",
    "/dblp/article/title | /dblp/inproceedings/title",
    "/dblp/article[count(author)=2]/@key",
    "count(/dblp/article)",
    "string(/dblp/article[1]/title)",
    "boolean(/dblp/inproceedings)",
    "/dblp/inproceedings[author][year]/@key",
];

fn shared_engine(records: usize) -> (Arc<Engine>, Arc<Document>) {
    let engine = Engine::new();
    let doc = engine.register_document(
        "dblp",
        Document::Arena(generate_dblp(DblpParams { records, seed: 42 })),
    );
    (engine, doc)
}

/// Render one session's pass over the corpus exactly as the protocol
/// would (the byte-comparable unit).
fn corpus_pass(session: &Session, doc: &Document, corpus: &[String]) -> Vec<String> {
    corpus
        .iter()
        .map(|q| match session.evaluate(doc.store(), q) {
            Ok(out) => render_output(&out),
            Err(e) => format!("ERR {} {}", error_token(&e), e),
        })
        .collect()
}

/// N concurrent clients, one shared engine (plan cache and telemetry
/// included), each replaying the corpus `reps` times — every pass must
/// be byte-identical to the serial reference.
fn assert_differential(threads: usize, corpus: &[String], reps: usize) {
    let (engine, doc) = shared_engine(40);
    let reference = serial_reference(&doc, &engine.session(), corpus);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let session = engine.session();
                let (doc, reference, barrier) = (&doc, &reference, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for _ in 0..reps {
                        let got = corpus_pass(&session, doc, corpus);
                        assert_eq!(&got, reference, "concurrent pass diverged from serial");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread must not panic");
        }
    });
    // Every query ran through the one shared cache: exactly one compile
    // per corpus entry, everything else hits.
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, corpus.len() as u64);
    assert!(stats.hits >= (threads * reps - 1) as u64 * corpus.len() as u64);
}

fn fixed_corpus() -> Vec<String> {
    CORPUS.iter().map(|q| q.to_string()).collect()
}

#[test]
fn two_concurrent_clients_match_serial() {
    assert_differential(2, &fixed_corpus(), 4);
}

#[test]
fn four_concurrent_clients_match_serial() {
    assert_differential(4, &fixed_corpus(), 3);
}

#[test]
fn eight_concurrent_clients_match_serial() {
    assert_differential(8, &fixed_corpus(), 2);
}

#[test]
fn budget_trips_are_typed_and_isolated() {
    let (engine, doc) = shared_engine(60);
    let tight = engine.session().with_limits(ResourceLimits::unlimited().with_max_memory(64));
    let free = engine.session();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let (tight, free, doc) = (tight.clone(), free.clone(), &doc);
                scope.spawn(move || {
                    for _ in 0..5 {
                        // The tight session trips its governor with a typed
                        // resource error…
                        let q = "/dblp/article/title | /dblp/inproceedings/title";
                        match tight.evaluate(doc.store(), q) {
                            Err(NatixError::Resource(_)) => {}
                            other => panic!("client {i}: expected Resource trip, got {other:?}"),
                        }
                        // …while the unlimited session on the same engine
                        // (and the same cached plans) is unaffected.
                        free.evaluate(doc.store(), q).expect("unlimited session");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics under budget trips");
        }
    });
    // The two budgets hash to different static contexts, so the shared
    // cache holds one plan per session flavour — never a shared entry.
    assert_eq!(engine.cache_stats().entries, 2);
}

#[test]
fn admission_queue_rejects_when_full() {
    let engine = Engine::new();
    let doc =
        engine.register_document("tree", Document::Arena(generate_tree(TreeParams::large(40_000))));
    let service = QueryService::new(engine, ServiceConfig { workers: 1, queue_depth: 1 });
    let clients = 8;
    let barrier = Barrier::new(clients);
    let heavy = "/xdoc/descendant::*/ancestor::*/descendant::*";
    let (accepted, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (service, doc, barrier) = (service.clone(), doc.clone(), &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let session = service.engine().session();
                    service.execute(&session, &doc, heavy).is_ok()
                })
            })
            .collect();
        let mut accepted = 0;
        let mut rejected = 0;
        for h in handles {
            if h.join().expect("submitting client must not panic") {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        (accepted, rejected)
    });
    assert_eq!(accepted + rejected, clients);
    // One worker + one queue slot against 8 simultaneous heavy queries:
    // at least one submission must be refused (in practice most are).
    assert!(rejected >= 1, "bounded queue never rejected ({accepted} accepted)");
    assert!(accepted >= 1, "someone must get through");
}

#[test]
fn tcp_loopback_serves_concurrent_clients() {
    use std::io::{BufRead, BufReader, Write};

    let engine = Engine::new();
    engine.register_document(
        "dblp",
        Document::Arena(generate_dblp(DblpParams { records: 20, seed: 42 })),
    );
    let service = QueryService::new(engine, ServiceConfig { workers: 2, queue_depth: 16 });
    let handle = natix::service::serve_tcp(service, "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr;

    let client = |queries: Vec<&'static str>| {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut replies = Vec::new();
        for q in queries {
            writeln!(stream, "{q}").expect("send");
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            replies.push(line.trim_end().to_owned());
        }
        replies
    };
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| client(vec!["count(/dblp/article)", "stats", "quit"]));
        let hb = scope.spawn(|| client(vec!["string(/dblp/article[1]/@key)", "quit"]));
        (ha.join().expect("client a"), hb.join().expect("client b"))
    });
    assert!(a[0].starts_with("OK num "), "{a:?}");
    assert!(a[1].starts_with("OK cache hits="), "{a:?}");
    assert_eq!(a[2], "OK bye");
    assert!(b[0].starts_with("OK str "), "{b:?}");
    assert_eq!(b[1], "OK bye");
    handle.stop();
}

// ---------- random-input differential ------------------------------------

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Clone, Debug)]
struct RandTree {
    name: usize,
    children: Vec<RandTree>,
    text: Option<String>,
}

fn rand_tree_strategy() -> impl Strategy<Value = RandTree> {
    let text = prop_oneof![Just(None), "[a-z]{1,4}".prop_map(Some)];
    let leaf =
        (0..NAMES.len(), text).prop_map(|(name, text)| RandTree { name, children: vec![], text });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (0..NAMES.len(), proptest::collection::vec(inner, 0..4))
            .prop_map(|(name, children)| RandTree { name, children, text: None })
    })
}

fn build_rand(t: &RandTree, b: &mut ArenaBuilder) {
    b.start_element(NAMES[t.name]);
    if let Some(text) = &t.text {
        b.text(text);
    }
    for c in &t.children {
        build_rand(c, b);
    }
    b.end_element();
}

fn rand_query_strategy() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..NAMES.len()).prop_map(|i| NAMES[i].to_owned()),
        Just("*".to_owned()),
        (0..NAMES.len()).prop_map(|i| format!("descendant::{}", NAMES[i])),
        Just("descendant-or-self::node()".to_owned()),
        (1..3u32).prop_map(|k| format!("*[{k}]")),
        (0..NAMES.len()).prop_map(|i| format!("*[count({}) > 0]", NAMES[i])),
    ];
    proptest::collection::vec(step, 1..4).prop_map(|steps| format!("/{}", steps.join("/")))
}

/// Hoisted body (the vendored `proptest!` macro overflows its recursion
/// limit on long inline bodies).
fn random_corpus_differential(t: &RandTree, queries: &[String]) {
    let engine = Engine::with_config(
        EngineConfig { cache_entries: 8, cache_bytes: 1 << 20, max_concurrent: 0 },
        None,
    );
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    build_rand(t, &mut b);
    b.end_element();
    let doc = engine.register_document("r", Document::Arena(b.finish()));
    let reference = serial_reference(&doc, &engine.session(), queries);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = engine.session();
                let doc = &doc;
                scope.spawn(move || corpus_pass(&session, doc, queries))
            })
            .collect();
        for h in handles {
            let got = h.join().expect("no panics");
            assert_eq!(got, reference, "random corpus diverged under concurrency");
        }
    });
}

/// Hoisted body: random queries under a tight budget must yield typed
/// errors or clean results — never a panic, and never a wrong answer
/// once re-run without the budget.
fn tight_budget_never_panics(t: &RandTree, queries: &[String]) {
    let engine = Engine::new();
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    build_rand(t, &mut b);
    b.end_element();
    let doc = engine.register_document("r", Document::Arena(b.finish()));
    let tight = engine
        .session()
        .with_limits(ResourceLimits::unlimited().with_max_memory(512).with_max_tuples(64));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (tight, doc) = (tight.clone(), &doc);
                scope.spawn(move || {
                    for q in queries {
                        match tight.evaluate(doc.store(), q) {
                            Ok(_) | Err(NatixError::Resource(_)) | Err(NatixError::Compile(_)) => {}
                            Err(other) => panic!("untyped failure for `{q}`: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("governed execution must not panic");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_random_corpus_matches_serial(
        t in rand_tree_strategy(),
        queries in proptest::collection::vec(rand_query_strategy(), 1..8),
    ) {
        random_corpus_differential(&t, &queries);
    }

    #[test]
    fn random_queries_under_budget_yield_typed_errors(
        t in rand_tree_strategy(),
        queries in proptest::collection::vec(rand_query_strategy(), 1..6),
    ) {
        tight_budget_never_panics(&t, &queries);
    }
}

/// Cloning a session shares the engine but copies the client-local
/// budget — a worker's tightened limits never leak back.
#[test]
fn session_clone_shares_engine_but_copies_limits() {
    let (engine, doc) = shared_engine(10);
    let base = engine.session();
    let tight = base.clone().with_limits(ResourceLimits::unlimited().with_max_memory(1));
    assert!(base.evaluate(doc.store(), "/dblp/article/title").is_ok());
    assert!(matches!(
        tight.evaluate(doc.store(), "/dblp/article/title | /dblp/article/year"),
        Err(NatixError::Resource(_))
    ));
    // The clone's limits never leaked back into the original.
    assert!(base.evaluate(doc.store(), "/dblp/article/title | /dblp/article/year").is_ok());
}
