//! Plan-cache correctness: hand-computed hit/miss/eviction sequences,
//! static-context discrimination (same expression, different options/
//! limits/threads must never share a plan), byte-budget eviction driven
//! by [`plan_weight`], and a 1000-query exact reconcile of the cache
//! counters against the telemetry registry (PR 6 style: the registry is
//! an aggregation of the same events, so equality is exact).

use std::sync::Arc;

use compiler::{compile, TranslateOptions};
use natix::{
    plan_weight, static_context_hash, Document, Engine, EngineConfig, QueryOutput, ResourceLimits,
    Telemetry,
};
use xmlstore::gen::{generate_dblp, DblpParams};

const QUERIES: [&str; 8] = [
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() < 10]/title",
    "/dblp/article[year='1991']/@key",
    "/dblp/article/title | /dblp/inproceedings/title",
    "count(/dblp/article)",
    "string(/dblp/*[1]/title)",
    "count(//author) > 0",
];

fn engine(entries: usize, bytes: u64) -> (Arc<Engine>, Arc<Document>) {
    let eng = Engine::with_config(
        EngineConfig {
            cache_entries: entries,
            cache_bytes: bytes,
            max_concurrent: 0,
        },
        None,
    );
    let doc = eng.register_document(
        "dblp",
        Document::Arena(generate_dblp(DblpParams { records: 30, seed: 42 })),
    );
    (eng, doc)
}

/// Hand-computed sequence on a 2-entry cache:
///   A miss · B miss · A hit · C miss→evicts B (LRU) · B miss→evicts A.
#[test]
fn lru_eviction_sequence_by_hand() {
    let (eng, doc) = engine(2, 1 << 20);
    let s = eng.session();
    let (a, b, c) = (QUERIES[0], QUERIES[1], QUERIES[2]);

    s.evaluate(doc.store(), a).unwrap(); // A: miss, insert
    s.evaluate(doc.store(), b).unwrap(); // B: miss, insert (cache full)
    s.evaluate(doc.store(), a).unwrap(); // A: hit (A now more recent than B)
    let st = eng.cache_stats();
    assert_eq!((st.hits, st.misses, st.evictions, st.inserts, st.entries), (1, 2, 0, 2, 2));

    s.evaluate(doc.store(), c).unwrap(); // C: miss, evicts B (least recent)
    let st = eng.cache_stats();
    assert_eq!((st.hits, st.misses, st.evictions, st.inserts, st.entries), (1, 3, 1, 3, 2));

    s.evaluate(doc.store(), a).unwrap(); // A survived: hit
    s.evaluate(doc.store(), b).unwrap(); // B was evicted: miss, evicts C
    let st = eng.cache_stats();
    assert_eq!((st.hits, st.misses, st.evictions, st.inserts, st.entries), (2, 4, 2, 4, 2));
}

/// The cache key's static-context half: any difference in translation
/// options, thread count, execution budget or parse limits must produce
/// a distinct cache entry for the same expression.
#[test]
fn static_context_discriminates_plans() {
    let (eng, doc) = engine(64, 1 << 20);
    let q = QUERIES[4];

    let flavours = [
        eng.session(),
        eng.session().with_options(TranslateOptions::canonical()),
        eng.session().with_options(TranslateOptions::extended()),
        eng.session().with_threads(4),
        eng.session().with_limits(ResourceLimits::unlimited().with_max_tuples(10_000)),
        eng.session().with_limits(ResourceLimits::unlimited().with_max_memory(1 << 30)),
        eng.session().with_limits(ResourceLimits::unlimited().with_max_parse_depth(100)),
    ];
    for s in &flavours {
        s.evaluate(doc.store(), q).unwrap();
    }
    let st = eng.cache_stats();
    assert_eq!(st.entries, flavours.len() as u64, "one plan per static context");
    assert_eq!(st.misses, flavours.len() as u64);
    assert_eq!(st.hits, 0);

    // Re-running every flavour hits its own entry.
    for s in &flavours {
        s.evaluate(doc.store(), q).unwrap();
    }
    let st = eng.cache_stats();
    assert_eq!(st.hits, flavours.len() as u64);
    assert_eq!(st.entries, flavours.len() as u64);

    // And the raw hashes are pairwise distinct.
    let mut hashes: Vec<u64> =
        flavours.iter().map(|s| static_context_hash(&s.options, &s.limits)).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), flavours.len(), "context hashes must be pairwise distinct");
}

/// Byte-budget eviction: with a budget sized for exactly one of two
/// plans, inserting the second evicts the first, and the resident byte
/// gauge always equals the [`plan_weight`] sum of resident plans.
#[test]
fn byte_budget_evicts_by_weight() {
    let (a, b) = (QUERIES[0], QUERIES[4]);
    let opts = TranslateOptions::improved();
    let wa = plan_weight(&compile(a, &opts).unwrap());
    let wb = plan_weight(&compile(b, &opts).unwrap());

    // Budget holds either plan alone but never both.
    let budget = wa.max(wb) + wa.min(wb) / 2;
    let (eng, doc) = engine(64, budget);
    let s = eng.session();

    s.evaluate(doc.store(), a).unwrap();
    let st = eng.cache_stats();
    assert_eq!((st.entries, st.bytes), (1, wa));

    s.evaluate(doc.store(), b).unwrap(); // over budget: evicts A
    let st = eng.cache_stats();
    assert_eq!((st.entries, st.bytes, st.evictions), (1, wb, 1));

    s.evaluate(doc.store(), a).unwrap(); // A is gone: miss, evicts B
    let st = eng.cache_stats();
    assert_eq!((st.entries, st.bytes, st.evictions, st.misses, st.hits), (1, wa, 2, 3, 0));
    assert!(st.bytes_high_water <= budget, "the cache governor never overcharges");
}

/// A plan heavier than the whole byte budget is executed but never
/// cached (it would evict everything for no reuse benefit).
#[test]
fn oversized_plan_is_not_cached() {
    let opts = TranslateOptions::improved();
    let w = plan_weight(&compile(QUERIES[4], &opts).unwrap());
    let (eng, doc) = engine(64, w - 1);
    let s = eng.session();
    assert!(matches!(s.evaluate(doc.store(), QUERIES[4]), Ok(QueryOutput::Nodes(_))));
    let st = eng.cache_stats();
    assert_eq!((st.entries, st.bytes, st.inserts), (0, 0, 0));
}

/// `cache_entries = 0` disables caching: every lookup is a miss, nothing
/// is ever inserted, results are unchanged.
#[test]
fn zero_capacity_disables_cache() {
    let (eng, doc) = engine(0, 1 << 20);
    let s = eng.session();
    let first = s.evaluate(doc.store(), QUERIES[0]).unwrap();
    let second = s.evaluate(doc.store(), QUERIES[0]).unwrap();
    assert_eq!(first, second);
    let st = eng.cache_stats();
    assert_eq!((st.hits, st.misses, st.inserts, st.entries), (0, 2, 0, 0));
}

/// The PR 6-style exact reconcile, extended to the cache: 1000 queries
/// over the 8-query corpus through a telemetry-carrying engine must
/// produce exactly 8 misses (first pass) and 992 hits, and the registry
/// series must equal the cache's own counters and the query total —
/// u64 equality, no tolerance.
#[test]
fn thousand_query_cache_counters_reconcile_with_registry() {
    let t = Telemetry::new().shared();
    let eng = Engine::with_config(EngineConfig::default(), Some(t.clone()));
    let doc = eng.register_document(
        "dblp",
        Document::Arena(generate_dblp(DblpParams { records: 30, seed: 42 })),
    );
    let s = eng.session();

    for i in 0..1000 {
        s.evaluate(doc.store(), QUERIES[i % QUERIES.len()]).expect("corpus query");
    }

    let st = eng.cache_stats();
    assert_eq!(st.misses, 8, "one compile per distinct query");
    assert_eq!(st.hits, 992, "everything else is a hit");
    assert_eq!(st.inserts, 8);
    assert_eq!(st.evictions, 0);
    assert_eq!(st.entries, 8);

    let reg = |name: &str| {
        t.registry.value(name).unwrap_or_else(|| panic!("series {name} not registered"))
    };
    assert_eq!(reg("natix_plan_cache_hits_total"), st.hits);
    assert_eq!(reg("natix_plan_cache_misses_total"), st.misses);
    assert_eq!(reg("natix_plan_cache_inserts_total"), st.inserts);
    assert_eq!(reg("natix_plan_cache_evictions_total"), st.evictions);
    assert_eq!(reg("natix_plan_cache_entries"), st.entries);
    assert_eq!(reg("natix_plan_cache_bytes"), st.bytes);
    assert_eq!(reg("natix_queries_total"), 1000, "every query also folded into telemetry");
    // hits + misses is exactly the lookup count — no double counting.
    assert_eq!(st.hits + st.misses, 1000);
}

/// Cached plans are logical (store-independent): the same engine serves
/// two different documents from one cache entry, with correct per-store
/// results.
#[test]
fn cached_plan_rebinds_across_stores() {
    let eng = Engine::new();
    let small = eng.register_document(
        "small",
        Document::Arena(generate_dblp(DblpParams { records: 5, seed: 42 })),
    );
    let large = eng.register_document(
        "large",
        Document::Arena(generate_dblp(DblpParams { records: 25, seed: 42 })),
    );
    let s = eng.session();
    let q = "count(/dblp/article/title)";
    let on_small = s.evaluate(small.store(), q).unwrap();
    let on_large = s.evaluate(large.store(), q).unwrap();
    let st = eng.cache_stats();
    assert_eq!((st.misses, st.hits), (1, 1), "second store reuses the cached logical plan");
    let (QueryOutput::Num(a), QueryOutput::Num(b)) = (on_small, on_large) else {
        panic!("count() returns numbers");
    };
    assert!(b > a, "results still reflect each store ({a} vs {b})");
}

/// Cost-based plans are shaped by store statistics, so two stores with
/// different statistics fingerprints must never share a cache entry —
/// each store compiles (and caches) its own plan. The same session in
/// `CostMode::Off` keeps the historical sharing behaviour.
#[test]
fn stats_fingerprints_isolate_cost_based_entries() {
    let eng = Engine::new();
    let small = eng.register_document(
        "small",
        Document::Arena(generate_dblp(DblpParams { records: 5, seed: 42 })),
    );
    let large = eng.register_document(
        "large",
        Document::Arena(generate_dblp(DblpParams { records: 25, seed: 42 })),
    );
    let fp_small = small.store().structural_index().unwrap().stats().fingerprint;
    let fp_large = large.store().structural_index().unwrap().stats().fingerprint;
    assert_ne!(fp_small, fp_large, "different documents, different fingerprints");

    let s = eng.session().with_options(TranslateOptions::cost_based());
    let q = QUERIES[3];
    let on_small = s.evaluate(small.store(), q).unwrap();
    let on_large = s.evaluate(large.store(), q).unwrap();
    let st = eng.cache_stats();
    assert_eq!((st.misses, st.hits, st.entries), (2, 0, 2), "one cost-based plan per store");

    // Re-running against each store hits that store's own entry.
    assert_eq!(s.evaluate(small.store(), q).unwrap(), on_small);
    assert_eq!(s.evaluate(large.store(), q).unwrap(), on_large);
    let st = eng.cache_stats();
    assert_eq!((st.misses, st.hits, st.entries), (2, 2, 2));
}

/// Disk-backed documents load their persisted structural index, so
/// cost-based sessions see real statistics: the fingerprint is nonzero,
/// equals the source arena store's (same document, same statistics, so
/// arena and disk share one cache entry), and a plain (index-disabled)
/// open falls back to the store-independent fingerprint-0 class.
#[test]
fn disk_documents_carry_real_fingerprints() {
    let path =
        std::env::temp_dir().join(format!("natix-plancache-fp-{}.natix", std::process::id()));
    let arena = Document::Arena(generate_dblp(DblpParams { records: 20, seed: 42 }));
    let fp_arena = arena.store().structural_index().unwrap().stats().fingerprint;
    let disk = arena.persist(&path, 64).unwrap();
    let fp_disk = disk.store().structural_index().unwrap().stats().fingerprint;
    assert_ne!(fp_disk, 0, "persisted index must yield real statistics");
    assert_eq!(fp_disk, fp_arena, "persisted index reproduces the arena statistics");
    let plain = Document::open_plain(&path, 64).unwrap();
    assert!(plain.store().structural_index().is_none(), "plain open hides the index");

    let eng = Engine::new();
    let arena_doc = eng.register_document("arena", arena);
    let disk_doc = eng.register_document("disk", disk);
    let s = eng.session().with_options(TranslateOptions::cost_based());
    let q = QUERIES[3];
    let a = s.evaluate(arena_doc.store(), q).unwrap();
    let d = s.evaluate(disk_doc.store(), q).unwrap();
    assert_eq!(a, d, "arena and disk agree on {q}");
    let st = eng.cache_stats();
    assert_eq!((st.misses, st.hits), (1, 1), "identical fingerprints share one entry");
    std::fs::remove_file(&path).ok();
}

/// A cache hit on a cost-based plan replays the optimizer's decision
/// record: EXPLAIN ANALYZE of the second run still carries the trace
/// (with the store's fingerprint) and reconciles estimates against
/// actuals, even though nothing was compiled.
#[test]
fn cache_hit_replays_optimizer_trace() {
    let eng = Engine::new();
    let doc = eng.register_document(
        "dblp",
        Document::Arena(generate_dblp(DblpParams { records: 30, seed: 42 })),
    );
    let s = eng.session().with_options(TranslateOptions::cost_based());
    let q = QUERIES[0];
    let (_, first) = s.analyze(doc.store(), q).unwrap();
    let (_, second) = s.analyze(doc.store(), q).unwrap();
    let st = eng.cache_stats();
    assert_eq!((st.misses, st.hits), (1, 1));

    let fp = doc.store().structural_index().unwrap().stats().fingerprint;
    for (rep, label) in [(&first, "miss"), (&second, "hit")] {
        let opt = rep.trace.optimizer.as_ref().unwrap_or_else(|| panic!("{label}: no trace"));
        assert_eq!(opt.stats_fingerprint, fp, "{label}");
        assert!(!rep.cardinality.is_empty(), "{label}: est-vs-actual must reconcile");
    }
    assert_eq!(
        first.trace.optimizer.as_ref().unwrap().decisions,
        second.trace.optimizer.as_ref().unwrap().decisions,
        "the hit replays the decisions recorded at compile time"
    );
    // The hit compiled nothing: no compile phases in its trace.
    assert!(second.trace.phases.iter().all(|p| p.name == "codegen" || p.name == "execute"));

    // Off-mode sessions on the same engine key separately (optimize is
    // part of the static context) and record no optimizer trace.
    let off = eng.session();
    let (_, rep) = off.analyze(doc.store(), q).unwrap();
    assert!(rep.trace.optimizer.is_none());
    assert!(rep.cardinality.is_empty());
}
