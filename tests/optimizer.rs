//! Cost-based optimizer differential battery: whatever alternatives the
//! optimizer picks, results must be byte-identical to `CostMode::Off` —
//! across random documents, the full 40-query corpus, and every
//! `TranslateOptions` preset. The cost pass may only change *how* a
//! query runs, never *what* it returns. Run in CI as the
//! `optimizer-differential` job under a fixed `PROPTEST_SEED`.

use proptest::prelude::*;

use compiler::{CostMode, TranslateOptions};
use natix::{Document, Engine, EngineConfig, Telemetry};
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};
use xmlstore::XmlStore;

mod corpus;
use corpus::{DBLP_QUERIES, TREE_QUERIES};

/// The option presets the battery crosses with the cost mode. Each is
/// compiled twice — `Off` and `CostBased` — and compared query by query.
fn presets() -> [TranslateOptions; 3] {
    [
        TranslateOptions::canonical(),
        TranslateOptions::improved(),
        TranslateOptions::extended(),
    ]
}

fn assert_cost_mode_is_transparent(store: &dyn XmlStore, queries: &[&str], doc: &str) {
    for base in presets() {
        let off = base.with_optimize(CostMode::Off);
        let on = base.with_optimize(CostMode::CostBased);
        for q in queries {
            let want =
                nqe::evaluate(store, q, &off).unwrap_or_else(|e| panic!("{doc}: off `{q}`: {e}"));
            let got = nqe::evaluate(store, q, &on)
                .unwrap_or_else(|e| panic!("{doc}: cost-based `{q}`: {e}"));
            assert_eq!(got, want, "{doc}: cost-based vs off on `{q}` ({base:?})");
        }
    }
}

/// Body of `cost_based_matches_off_on_random_trees`, hoisted out of the
/// `proptest!` block (the vendored macro munches its input token by
/// token, so long bodies overflow the recursion limit): a random tree
/// document × the 40-query corpus × every preset.
fn check_random_tree(shape: (usize, usize, usize)) {
    let (max_elements, fanout, max_depth) = shape;
    let store = generate_tree(TreeParams { max_elements, fanout, max_depth });
    assert_cost_mode_is_transparent(
        &store,
        TREE_QUERIES,
        &format!("tree({max_elements},{fanout},{max_depth})"),
    );
}

/// Body of `cost_based_matches_off_on_random_dblp`: a random dblp
/// document (varying record counts and seeds — and with them tag
/// histograms, fan-outs and fingerprints) × the dblp corpus.
fn check_random_dblp(shape: (usize, u64)) {
    let (records, seed) = shape;
    let store = generate_dblp(DblpParams { records, seed });
    assert_cost_mode_is_transparent(&store, DBLP_QUERIES, &format!("dblp({records},{seed})"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn cost_based_matches_off_on_random_trees(shape in (20usize..300, 1usize..8, 1usize..6)) {
        check_random_tree(shape);
    }

    #[test]
    fn cost_based_matches_off_on_random_dblp(shape in (1usize..80, 0u64..1000)) {
        check_random_dblp(shape);
    }
}

/// A store without a structural index has no statistics, so
/// `CostMode::CostBased` must fall back to the exact `Off` plan — and
/// the exact `Off` results.
#[test]
fn cost_based_without_stats_matches_off() {
    let store = generate_tree(TreeParams { max_elements: 150, fanout: 5, max_depth: 3 });
    let plain = xmlstore::NoIndex(&store);
    assert_cost_mode_is_transparent(&plain, TREE_QUERIES, "tree-without-index");
}

/// End-to-end metrics fold: a cost-based query through a
/// telemetry-carrying engine lands decisions in
/// `natix_optimizer_decisions_total` and (profiled) its estimation error
/// in the `natix_optimizer_est_error_pct` histogram; the `optimize`
/// phase series is populated.
#[test]
fn optimizer_metrics_fold_into_registry() {
    let t = Telemetry::new().shared();
    let eng = Engine::with_config(EngineConfig::default(), Some(t.clone()));
    let doc = eng.register_document(
        "dblp",
        Document::Arena(generate_dblp(DblpParams { records: 50, seed: 42 })),
    );
    let s = eng.session().with_options(TranslateOptions::cost_based());
    let (_, rep) = s.analyze(doc.store(), "/dblp/article[year='1991']/@key").unwrap();
    let decisions = rep.trace.optimizer.as_ref().map_or(0, |o| o.decisions.len() as u64);
    assert!(decisions > 0, "the corpus query must exercise at least one decision");
    assert_eq!(t.registry.value("natix_optimizer_decisions_total"), Some(decisions));
    assert!(!rep.cardinality.is_empty(), "profiled run must reconcile estimates");
    let text = t.render_text();
    assert!(
        text.contains("natix_optimizer_est_error_pct_count 1"),
        "one profiled cost-based run, one error observation: {text}"
    );
    assert!(
        text.contains("natix_compile_nanos_total{phase=\"optimize\"}"),
        "optimize phase series present"
    );
}
