//! The shared differential query corpus, used by `tests/differential.rs`,
//! `tests/optimizer.rs` and `tests/updates.rs`: 40 tree-document queries
//! exercising every axis, positional machinery, nested predicates,
//! scalars and unions, plus 17 dblp-shaped queries matching the
//! generated bibliography documents (root `dblp`,
//! `article`/`inproceedings` records). Not every test binary uses both
//! corpora, hence the allow.
#![allow(dead_code)]

/// Queries over the generated tree documents (root `xdoc`, elements
/// named a–e with consecutive `id` attributes).
pub const TREE_QUERIES: &[&str] = &[
    // The paper's Fig. 5 queries.
    "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
    "/child::xdoc/descendant::*/preceding-sibling::*/following::*/attribute::id",
    "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id",
    "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
    // Axis soup.
    "//a/following-sibling::*[1]/@id",
    "//b/preceding-sibling::*/@id",
    "//c/ancestor-or-self::*/@id",
    "//d/descendant-or-self::*/@id",
    "//e/preceding::b/@id",
    "//a/following::c/@id",
    "/xdoc/*/*/parent::*/@id",
    "//*[@id='17']/ancestor::*/@id",
    "//*[@id='17']/following::*[3]/@id",
    // Positional.
    "/xdoc/*[1]/@id",
    "/xdoc/*[last()]/@id",
    "/xdoc/*/*[position() = last()]/@id",
    "/xdoc/*/*[position() mod 3 = 1]/@id",
    "(//b)[4]/@id",
    "(//c)[last()]/@id",
    "(//a | //b)[position() < 5]/@id",
    // Predicates with nested paths.
    "//*[count(*) > 2]/@id",
    "//*[*[@id]]/@id",
    "//*[not(*)][3]/@id",
    "//a[following-sibling::b]/@id",
    "//*[count(ancestor::*) = 2][5]/@id",
    // Scalars.
    "count(//*)",
    "count(//a/descendant::*)",
    "sum(/xdoc/*/@id)",
    "string(//*[@id='3'])",
    "count(//*[@id='5']/ancestor::*)",
    "boolean(//e)",
    "name((//*)[7])",
    // Unions and filters.
    "//a | //b | //c",
    "(//a/parent::* | //b/parent::*)/@id",
    "id('12 7 99999')/@id",
    // Duplicate-heavy bases under filters and aggregates.
    "(//b/parent::*)[2]/@id",
    "(//c/ancestor::*)[last()]/@id",
    "count(//c/parent::*/child::c)",
    "(//b/parent::*)[position() < 3]/@id",
];

/// Queries matching the generated dblp documents.
pub const DBLP_QUERIES: &[&str] = &[
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() = 3]/title",
    "/dblp/article[position() < 10]/title",
    "/dblp/article[position() = last()]/title",
    "/dblp/article[position()=last()-10]/title",
    "/dblp/article/title | /dblp/inproceedings/title",
    "/dblp/article[count(author)=4]/@key",
    "/dblp/article[year='1991']/@key",
    "/dblp/inproceedings[year='1991']/@key",
    "/dblp/*[author='Guido Moerkotte']/@key",
    "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
    "/dblp/inproceedings[author='Guido Moerkotte'][position()=last()]/title",
    "count(/dblp/*/author)",
    "/dblp/phdthesis/author",
    "/dblp/*[ee][position() mod 50 = 0]/@key",
    "/dblp/article[starts-with(@key, 'journals/tods')]/year",
];
