//! End-to-end telemetry tests: engine-wide counters reconcile *exactly*
//! with the per-query EXPLAIN ANALYZE reports they aggregate, the
//! exposition text parses, the JSONL query log round-trips, slow-query
//! EXPLAIN capture fires, and a telemetry-free engine touches no
//! registry at all (the zero-overhead-when-disabled guarantee).

use std::collections::HashMap;
use std::time::Duration;

use natix::{expr_hash, Document, Json, QueryLogger, ResourceLimits, Telemetry, XPathEngine};
use telemetry::parse_exposition;
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};

/// The mixed batch: node-set paths, positional predicates, scalar
/// expressions, a union — every result kind the engine produces.
const BATCH_QUERIES: [&str; 8] = [
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() < 10]/title",
    "/dblp/article[year='1991']/@key",
    "/dblp/article/title | /dblp/inproceedings/title",
    "count(/dblp/article)",
    "string(/dblp/*[1]/title)",
    "count(//author) > 0",
];

fn dblp(records: usize) -> xmlstore::ArenaStore {
    generate_dblp(DblpParams { records, seed: 42 })
}

fn registry_value(t: &Telemetry, name: &str) -> u64 {
    t.registry.value(name).unwrap_or_else(|| panic!("series {name} not registered"))
}

/// The acceptance-criterion test: a 1000-query mixed batch through a
/// telemetry-enabled engine, with every per-query EXPLAIN ANALYZE report
/// summed by hand on the side. The registry totals must equal the hand
/// sums *exactly* (u64 equality, no tolerance) — the registry is an
/// aggregation of the reports, not a second measurement.
#[test]
fn thousand_query_batch_reconciles_with_profiles() {
    let store = dblp(120);
    let t = Telemetry::new().shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());

    let mut queries = 0u64;
    let mut tuples = 0u64;
    let mut opens = 0u64;
    let mut charged_bytes = 0u64;
    let mut tuples_charged = 0u64;
    let mut result_items = 0u64;
    let mut mem_high_water = 0u64;
    let mut phase_nanos: HashMap<String, u64> = HashMap::new();

    for i in 0..1000 {
        let q = BATCH_QUERIES[i % BATCH_QUERIES.len()];
        let (out, report) = engine.analyze_governed(&store, q).expect("compiles");
        assert!(out.is_ok(), "{q}");
        queries += 1;
        tuples += report.profile.total_tuples();
        for e in &report.profile.entries {
            opens += e.stats.lock().opens;
        }
        charged_bytes += report.resources.charged_bytes;
        tuples_charged += report.resources.tuples_charged;
        mem_high_water = mem_high_water.max(report.resources.high_water_bytes);
        result_items += report.result_count as u64;
        for p in &report.trace.phases {
            *phase_nanos.entry(p.name.clone()).or_default() += p.nanos;
        }
    }

    assert_eq!(registry_value(&t, "natix_queries_total"), queries);
    assert_eq!(registry_value(&t, "natix_operator_tuples_total"), tuples);
    assert_eq!(registry_value(&t, "natix_operator_opens_total"), opens);
    assert_eq!(registry_value(&t, "natix_mem_charged_bytes_total"), charged_bytes);
    assert_eq!(registry_value(&t, "natix_tuples_charged_total"), tuples_charged);
    assert_eq!(registry_value(&t, "natix_mem_high_water_bytes"), mem_high_water);
    assert_eq!(registry_value(&t, "natix_result_items_total"), result_items);
    for (phase, nanos) in &phase_nanos {
        assert_eq!(
            registry_value(&t, &format!("natix_compile_nanos_total{{phase=\"{phase}\"}}")),
            *nanos,
            "phase {phase}"
        );
    }
    // The latency histogram saw every query.
    assert_eq!(t.metrics.query_latency_nanos.count(), queries);
    // No errors anywhere in the batch.
    for class in ["memory", "tuples", "deadline", "compile"] {
        assert_eq!(
            registry_value(&t, &format!("natix_query_errors_total{{class=\"{class}\"}}")),
            0
        );
    }

    // The exposition renders, parses back, and carries the same totals.
    let text = t.render_text();
    let parsed = parse_exposition(&text).expect("exposition parses");
    let find = |name: &str| -> f64 {
        parsed
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .1
    };
    assert_eq!(find("natix_queries_total") as u64, queries);
    assert_eq!(find("natix_operator_tuples_total") as u64, tuples);
    assert_eq!(find("natix_query_latency_nanos_count") as u64, queries);
}

/// Slow-query capture: a threshold of zero marks everything slow, so
/// every record must carry its full EXPLAIN ANALYZE JSON inline.
#[test]
fn slow_threshold_zero_captures_explain_for_every_query() {
    let store = dblp(50);
    let t = Telemetry::with_logger(QueryLogger::in_memory(Some(Duration::ZERO))).shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());

    for q in ["/dblp/article/title", "count(/dblp/article)"] {
        engine.evaluate(&store, q).expect("evaluates");
    }
    assert_eq!(registry_value(&t, "natix_slow_queries_total"), 2);
    let ring = t.logger.slowlog();
    assert_eq!(ring.len(), 2);
    for logged in &ring {
        assert!(logged.slow);
        let explain = logged.record.explain.as_ref().expect("slow ⇒ explain captured");
        // With a slow threshold set, plain evaluate() runs profiled, so
        // the capture has real operator rows — not an empty shell.
        let ops = explain.get("operators").and_then(Json::as_arr).expect("operators");
        assert!(!ops.is_empty(), "captured explain has a populated profile");
        assert!(explain.get("phases").is_some());
    }
}

/// Discrimination: a deliberately slow query (quartic axis stack on a
/// 2000-element tree) trips a millisecond threshold; a trivial lookup
/// stays under it. Debug-build margins are ~50× on both sides.
#[test]
fn slow_threshold_discriminates_fast_from_slow() {
    let tree = generate_tree(TreeParams::small(2000));
    let t = Telemetry::with_logger(QueryLogger::in_memory(Some(Duration::from_millis(5)))).shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());

    engine.evaluate(&tree, "count(/xdoc)").expect("fast query");
    engine
        .evaluate(
            &tree,
            "/child::xdoc/descendant::*/preceding-sibling::*/following::*/attribute::id",
        )
        .expect("deliberately slow query");

    assert_eq!(registry_value(&t, "natix_slow_queries_total"), 1);
    let ring = t.logger.slowlog();
    assert_eq!(ring.len(), 1, "only the slow query is ring-buffered");
    assert!(ring[0].record.query.contains("preceding-sibling"));
    assert!(ring[0].record.explain.is_some());
}

/// The JSONL file sink: every line is a standalone JSON object with the
/// stable schema, and `expr_hash` matches the library hash of the text.
#[test]
fn query_log_file_round_trips() {
    let dir = std::env::temp_dir().join(format!("natix-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("query.jsonl");
    let _ = std::fs::remove_file(&path);

    let store = dblp(30);
    let t = Telemetry::with_logger(
        QueryLogger::to_file(&path, Some(Duration::ZERO)).expect("open log"),
    )
    .shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());
    let batch = [
        "/dblp/article/title",
        "count(//author)",
        "/dblp/bogus/child::nope",
    ];
    for q in batch {
        engine.evaluate(&store, q).expect("evaluates");
    }
    // One compile failure must be logged too.
    assert!(engine.evaluate(&store, "///").is_err());

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "{text}");
    for (i, line) in lines.iter().enumerate() {
        let rec = Json::parse(line).expect("line parses");
        assert_eq!(rec.get("seq").and_then(Json::as_num), Some((i + 1) as f64));
        let query = rec.get("query").and_then(Json::as_str).unwrap();
        assert_eq!(
            rec.get("expr_hash").and_then(Json::as_str),
            Some(format!("{:016x}", expr_hash(query)).as_str())
        );
        for field in ["outcome", "latency_nanos", "result_kind", "tuples", "slow"] {
            assert!(rec.get(field).is_some(), "field {field} in line {i}");
        }
    }
    let last = Json::parse(lines[3]).unwrap();
    assert_eq!(last.get("outcome").and_then(Json::as_str), Some("compile"));
    assert_eq!(registry_value(&t, "natix_query_errors_total{class=\"compile\"}"), 1);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Typed runtime errors land in their per-class counters and the query
/// log, and the report's governor accounting still aggregates.
#[test]
fn governor_trips_count_per_error_class() {
    let store = dblp(200);
    let t = Telemetry::new().shared();
    // The canonical translation buffers the context sequence for the
    // positional predicate, charging one tuple per buffered row — which
    // blows the 50-tuple cap on a 200-record document.
    let engine = XPathEngine::canonical()
        .with_limits(ResourceLimits::unlimited().with_max_tuples(50))
        .with_telemetry(t.clone());

    let out = engine.evaluate(&store, "/dblp/article[position()=last()]/title");
    assert!(out.is_err(), "tuple cap must trip");
    assert_eq!(registry_value(&t, "natix_query_errors_total{class=\"tuples\"}"), 1);
    assert_eq!(registry_value(&t, "natix_queries_total"), 1);
    // A failed query contributes no result items.
    assert_eq!(registry_value(&t, "natix_result_items_total"), 0);
    assert_eq!(t.logger.logged(), 1);
}

/// Buffer-manager counters aggregate the per-query storage deltas when
/// the engine runs against the paged disk store.
#[test]
fn disk_store_page_counters_reconcile() {
    let dir = std::env::temp_dir().join(format!("natix-telemetry-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.natix");
    let _ = std::fs::remove_file(&path);

    let arena = Document::Arena(generate_tree(TreeParams::small(500)));
    let disk = arena.persist(&path, 16).expect("persist");
    let t = Telemetry::new().shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());

    let mut hits = 0u64;
    let mut reads = 0u64;
    let mut evictions = 0u64;
    for q in [
        "count(//*)",
        "/xdoc/child::*/attribute::id",
        "string(//*[@id='42'])",
    ] {
        let (out, report) = engine.analyze_governed(disk.store(), q).expect("compiles");
        assert!(out.is_ok());
        let s = report.storage.as_ref().expect("disk store ⇒ storage report");
        hits += s.page_hits;
        reads += s.pages_read;
        evictions += s.evictions;
    }
    assert!(hits + reads > 0, "paged evaluation touched the buffer manager");
    assert_eq!(registry_value(&t, "natix_page_hits_total"), hits);
    assert_eq!(registry_value(&t, "natix_page_reads_total"), reads);
    assert_eq!(registry_value(&t, "natix_page_evictions_total"), evictions);
    assert_eq!(registry_value(&t, "natix_checksum_failures_total"), 0);

    drop(disk);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Exchange statistics flow into the registry on profiled parallel runs.
#[test]
fn parallel_runs_populate_exchange_counters() {
    let tree = generate_tree(TreeParams::small(2000));
    let t = Telemetry::new().shared();
    let engine = XPathEngine::new().with_threads(4).with_telemetry(t.clone());

    let (out, report) = engine
        .analyze_governed(&tree, "/xdoc/descendant::*/attribute::id")
        .expect("compiles");
    assert!(out.is_ok());
    if report.profile.parallel.is_empty() {
        // Plan didn't parallelise on this shape — nothing to reconcile.
        return;
    }
    assert!(registry_value(&t, "natix_exchange_runs_total") >= 1);
    let worker_tuples: u64 = report
        .profile
        .parallel
        .iter()
        .map(|s| s.lock().worker_tuples.iter().sum::<u64>())
        .sum();
    assert_eq!(registry_value(&t, "natix_exchange_worker_tuples_total"), worker_tuples);
}

/// `:metrics reset` semantics: counters zero, registration and the query
/// log survive, and aggregation continues from zero.
#[test]
fn reset_zeroes_counters_but_keeps_registration_and_log() {
    let store = dblp(30);
    let t = Telemetry::new().shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());

    for _ in 0..3 {
        engine.evaluate(&store, "/dblp/article/title").unwrap();
    }
    assert_eq!(registry_value(&t, "natix_queries_total"), 3);
    assert_eq!(t.logger.logged(), 3);

    t.reset_metrics();
    assert_eq!(registry_value(&t, "natix_queries_total"), 0);
    assert_eq!(t.metrics.query_latency_nanos.count(), 0);
    assert_eq!(t.logger.logged(), 3, "reset does not touch the query log");
    let text = t.render_text();
    assert!(text.contains("natix_compile_nanos_total{phase=\"parse\"} 0"));

    engine.evaluate(&store, "count(//author)").unwrap();
    assert_eq!(registry_value(&t, "natix_queries_total"), 1);
}

/// The zero-overhead-when-disabled guarantee: with `telemetry: None` the
/// engine's evaluation methods take the pre-telemetry code path behind a
/// single `Option` branch (see the `match &self.telemetry` arms in
/// src/lib.rs) and record into nothing. A registry held elsewhere in the
/// process must stay untouched — every series zero, the histogram empty,
/// the query log silent — and results must be identical to a
/// telemetry-enabled engine's.
#[test]
fn disabled_telemetry_records_nothing_and_changes_no_result() {
    let store = dblp(40);
    let bystander = Telemetry::new().shared();
    let plain = XPathEngine::new();
    assert!(plain.telemetry.is_none(), "telemetry is off by default");
    let observed = XPathEngine::new().with_telemetry(bystander.clone());

    for i in 0..50 {
        let q = BATCH_QUERIES[i % BATCH_QUERIES.len()];
        let a = plain.evaluate(&store, q).expect("plain engine evaluates");
        // Cross-check results against the observed engine once per shape.
        if i < BATCH_QUERIES.len() {
            let b = observed.evaluate(&store, q).expect("observed engine evaluates");
            assert_eq!(a, b, "telemetry must not change results for {q}");
        }
    }

    // The observed engine recorded its 8 queries and nothing else: the
    // plain engine's 50 evaluations touched no registry in the process.
    assert_eq!(registry_value(&bystander, "natix_queries_total"), 8);
    let text = bystander.render_text();
    for (name, value) in parse_exposition(&text).expect("parses") {
        if name == "natix_queries_total"
            || name == "natix_result_items_total"
            || name == "natix_operator_opens_total"
            || name.starts_with("natix_query_latency_nanos")
            || name.starts_with("natix_compile_nanos_total")
            || name.starts_with("natix_rewrites_fired_total")
            || name.starts_with("natix_mem_")
            || name.starts_with("natix_tuples_")
        {
            continue; // the observed engine's own 8 queries
        }
        assert_eq!(value, 0.0, "series {name} must be untouched");
    }
    assert_eq!(bystander.logger.logged(), 8);

    // And a fresh never-attached registry is exactly all-zero.
    let untouched = Telemetry::new();
    for (name, value) in parse_exposition(&untouched.render_text()).expect("parses") {
        assert_eq!(value, 0.0, "fresh series {name}");
    }
}

/// CLI surface smoke: `--metrics-out`, `--query-log` and `--slow-ms 0`
/// together produce a parseable exposition whose query count matches the
/// JSONL line count.
#[test]
fn cli_writes_exposition_and_query_log() {
    let dir = std::env::temp_dir().join(format!("natix-telemetry-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("doc.xml");
    let metrics = dir.join("metrics.txt");
    let qlog = dir.join("query.jsonl");
    std::fs::write(&xml, "<a><b>1</b><b>2</b><c>x</c></a>").unwrap();
    let _ = std::fs::remove_file(&qlog);

    let exe = env!("CARGO_BIN_EXE_natix-cli");
    let out = std::process::Command::new(exe)
        .args([
            xml.to_str().unwrap(),
            "count(/a/b)",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--query-log",
            qlog.to_str().unwrap(),
            "--slow-ms",
            "0",
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "number: 2");

    let exposition = std::fs::read_to_string(&metrics).unwrap();
    let parsed = parse_exposition(&exposition).expect("exposition parses");
    let queries = parsed.iter().find(|(n, _)| n == "natix_queries_total").unwrap().1;
    assert_eq!(queries, 1.0);
    let docs = parsed.iter().find(|(n, _)| n == "natix_parse_docs_total").unwrap().1;
    assert_eq!(docs, 1.0);

    let log_text = std::fs::read_to_string(&qlog).unwrap();
    let lines: Vec<&str> = log_text.lines().collect();
    assert_eq!(lines.len(), 1);
    let rec = Json::parse(lines[0]).unwrap();
    assert_eq!(rec.get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(rec.get("slow"), Some(&Json::Bool(true)), "--slow-ms 0 marks everything");
    assert!(rec.get("explain").map(|e| *e != Json::Null).unwrap_or(false));

    for f in [&xml, &metrics, &qlog] {
        let _ = std::fs::remove_file(f);
    }
    let _ = std::fs::remove_dir(&dir);
}

/// Regression test for the `:metrics reset` race: the reset used to
/// zero series one at a time while query folds were landing, so a
/// concurrent reader could observe `natix_queries_total` disagreeing
/// with the latency histogram count (a fold half-applied across the
/// reset). `reset_metrics` now takes the fold write barrier, and
/// `Telemetry::quiesced` exposes the same barrier to readers. This
/// hammers the registry with query folds, resets and consistency
/// snapshots concurrently; every snapshot must see the cross-counter
/// invariant intact.
#[test]
fn metrics_reset_is_atomic_under_concurrent_queries() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let store = dblp(10);
    let t = Telemetry::new().shared();
    let engine = XPathEngine::new().with_telemetry(t.clone());
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Query hammers: keep folds landing for the whole test.
        for w in 0..3 {
            let (engine, store, stop) = (&engine, &store, &stop);
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let q = BATCH_QUERIES[i % BATCH_QUERIES.len()];
                    let (out, _) = engine.analyze_governed(store, q).expect("compiles");
                    out.expect("corpus query runs");
                    i += 1;
                }
            });
        }
        // Resetter: a REPL `:metrics reset` firing mid-traffic, repeatedly.
        let resetter = {
            let t = &t;
            scope.spawn(move || {
                for _ in 0..200 {
                    t.reset_metrics();
                    std::thread::yield_now();
                }
            })
        };
        // Checker: consistent snapshots interleaved with the resets.
        // Before the fix this tripped within a handful of iterations.
        for _ in 0..300 {
            t.quiesced(|| {
                let total = registry_value(&t, "natix_queries_total");
                let folded = t.metrics.query_latency_nanos.count();
                assert_eq!(
                    total, folded,
                    "queries_total must equal the latency histogram count in every snapshot"
                );
            });
        }
        resetter.join().expect("resetter");
        stop.store(true, Ordering::Relaxed);
    });

    // One final quiesced snapshot after the dust settles.
    t.quiesced(|| {
        assert_eq!(
            registry_value(&t, "natix_queries_total"),
            t.metrics.query_latency_nanos.count()
        );
    });
}
