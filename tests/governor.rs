//! End-to-end resource-governor tests: budget trips surface as typed
//! errors through every public layer (engine facade, pipeline entry
//! points, EXPLAIN ANALYZE), cancellation and deadlines are observed
//! cooperatively, and a tripped query never leaks transient charges.

use std::collections::HashMap;
use std::time::Duration;

use compiler::TranslateOptions;
use natix::{Document, NatixError, QueryError, ResourceLimits, XPathEngine};
use nqe::{FailPoint, ResourceGovernor};
use xmlstore::gen::{generate_tree, TreeParams};
use xmlstore::{ArenaBuilder, XmlStore};

/// The blow-up bench document: `<r><a><b/>×width</a></r>`.
fn blowup_doc(width: usize) -> xmlstore::ArenaStore {
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    b.start_element("a");
    for _ in 0..width {
        b.start_element("b");
        b.end_element();
    }
    b.end_element();
    b.end_element();
    b.finish()
}

/// CI smoke test: the canonical plan for a positional predicate buffers
/// the whole context sequence in Tmp^cs; on a wide blow-up document a
/// 16 MiB cap must surface as a typed MemoryExceeded — not an OOM, not a
/// panic, not a wrong answer.
#[test]
fn blowup_canonical_plan_trips_16mib_memory_cap() {
    let store = blowup_doc(200_000);
    let limits = ResourceLimits::unlimited().with_max_memory(16 * 1024 * 1024);
    let out = nqe::evaluate_governed(
        &store,
        "/r/a/b[position()=last()]",
        &TranslateOptions::canonical(),
        &limits,
        store.root(),
        &HashMap::new(),
    );
    match out {
        Err(compiler::PipelineError::Resource(QueryError::MemoryExceeded { limit, .. })) => {
            assert_eq!(limit, 16 * 1024 * 1024);
        }
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
    // Within budget the same plan completes and answers correctly.
    let small = blowup_doc(64);
    let out = nqe::evaluate_governed(
        &small,
        "/r/a/b[position()=last()]",
        &TranslateOptions::canonical(),
        &limits,
        small.root(),
        &HashMap::new(),
    )
    .expect("small document fits the cap");
    match out {
        natix::QueryOutput::Nodes(ns) => assert_eq!(ns.len(), 1, "last() selects one node"),
        other => panic!("expected nodes, got {other:?}"),
    }
}

/// The exponential d-join family trips the materialized-tuple budget on
/// the canonical plan while the improved plan finishes inside the same
/// budget — the bench's governed showcase, pinned as a test.
#[test]
fn blowup_family_tuple_budget_separates_translations() {
    let store = blowup_doc(4);
    let mut q = String::from("/r/a/b");
    for _ in 0..9 {
        q.push_str("/parent::a/child::b");
    }
    q.push_str("[position()=last()]");
    let limits = ResourceLimits::unlimited()
        .with_max_memory(16 * 1024 * 1024)
        .with_max_tuples(500_000);
    let canonical = nqe::evaluate_governed(
        &store,
        &q,
        &TranslateOptions::canonical(),
        &limits,
        store.root(),
        &HashMap::new(),
    );
    assert!(
        matches!(
            canonical,
            Err(compiler::PipelineError::Resource(QueryError::TuplesExceeded { limit: 500_000 }))
        ),
        "canonical re-materializes width^pairs groups: {canonical:?}"
    );
    let improved = nqe::evaluate_governed(
        &store,
        &q,
        &TranslateOptions::improved(),
        &limits,
        store.root(),
        &HashMap::new(),
    );
    assert!(improved.is_ok(), "improved stays inside the budget: {improved:?}");
}

/// A pre-raised cancellation token stops execution at the very first
/// cooperative check — before any tuple flows.
#[test]
fn pre_raised_cancellation_stops_immediately() {
    let store = generate_tree(TreeParams { max_elements: 500, fanout: 5, max_depth: 4 });
    let compiled = compiler::compile("//*/ancestor::*/@id", &TranslateOptions::improved()).unwrap();
    let mut phys = nqe::build_physical(&compiled);
    let gov = ResourceGovernor::new(ResourceLimits::unlimited());
    gov.cancel_handle().store(true, std::sync::atomic::Ordering::Relaxed);
    let out = phys.execute_governed(&store, &HashMap::new(), store.root(), &gov);
    assert!(matches!(out, Err(QueryError::Cancelled)), "{out:?}");
    assert_eq!(gov.transient_bytes(), 0, "nothing held after the unwind");
}

/// A token raised mid-flight (at the Nth tick, via the fault-injection
/// hook) is observed within one tick interval.
#[test]
fn mid_flight_cancellation_observed_within_one_interval() {
    let store = generate_tree(TreeParams { max_elements: 500, fanout: 5, max_depth: 4 });
    let compiled = compiler::compile("//*/ancestor::*/@id", &TranslateOptions::improved()).unwrap();
    let mut phys = nqe::build_physical(&compiled);
    let interval = 4u32;
    let gov = ResourceGovernor::with_failpoint(
        ResourceLimits::unlimited().with_tick_interval(interval),
        FailPoint { cancel_at_tick: Some(101), ..FailPoint::none() },
    );
    let out = phys.execute_governed(&store, &HashMap::new(), store.root(), &gov);
    assert!(matches!(out, Err(QueryError::Cancelled)), "{out:?}");
    // Raised at tick 101; the next interval boundary is tick 104.
    assert!(
        gov.ticks_seen() >= 101 && gov.ticks_seen() <= 101 + interval as u64,
        "observed {} ticks for a token raised at 101 (interval {interval})",
        gov.ticks_seen()
    );
    assert_eq!(gov.transient_bytes(), 0);
}

/// An already-expired deadline surfaces as DeadlineExceeded.
#[test]
fn expired_deadline_trips() {
    let store = generate_tree(TreeParams { max_elements: 500, fanout: 5, max_depth: 4 });
    let limits = ResourceLimits::unlimited().with_timeout(Duration::ZERO);
    let out = nqe::evaluate_governed(
        &store,
        "//*/ancestor::*/@id",
        &TranslateOptions::improved(),
        &limits,
        store.root(),
        &HashMap::new(),
    );
    assert!(
        matches!(out, Err(compiler::PipelineError::Resource(QueryError::DeadlineExceeded { .. }))),
        "{out:?}"
    );
}

/// The engine facade honours `with_limits` and maps trips to
/// `NatixError::Resource`.
#[test]
fn facade_engine_surfaces_resource_errors() {
    let doc = Document::parse("<r><a><b/><b/><b/></a></r>").unwrap();
    let engine = XPathEngine::new().with_limits(ResourceLimits::unlimited().with_max_memory(8));
    let out = engine.evaluate(doc.store(), "/r/a/b[position()=last()]");
    match out {
        Err(NatixError::Resource(QueryError::MemoryExceeded { limit: 8, .. })) => {}
        other => panic!("expected Resource(MemoryExceeded), got {other:?}"),
    }
    // The same engine with room finishes.
    let engine =
        XPathEngine::new().with_limits(ResourceLimits::unlimited().with_max_memory(1 << 20));
    assert!(engine.evaluate(doc.store(), "/r/a/b[position()=last()]").is_ok());
}

/// EXPLAIN ANALYZE keeps the report when the governor stops the query:
/// the inner error is typed, the text names the stop reason, the JSON
/// carries the resources block, and no transient charges leak.
#[test]
fn analyze_reports_survive_governor_trips() {
    let doc = Document::parse("<r><a><b/><b/><b/></a></r>").unwrap();
    let engine =
        XPathEngine::canonical().with_limits(ResourceLimits::unlimited().with_max_memory(8));
    let (out, report) = engine.analyze_governed(doc.store(), "/r/a/b[position()=last()]").unwrap();
    assert!(matches!(out, Err(QueryError::MemoryExceeded { .. })));
    assert_eq!(report.resources.transient_bytes, 0, "trip unwound cleanly");
    assert!(report.resources.error.is_some());
    let text = report.text();
    assert!(text.contains("stopped:"), "text report names the stop reason:\n{text}");
    assert!(text.contains("memory budget exceeded"), "{text}");
    let json = report.to_json().pretty();
    assert!(json.contains("\"resources\""), "{json}");
    assert!(json.contains("\"high_water_bytes\""), "{json}");
    assert!(json.contains("\"max_memory_bytes\": 8"), "{json}");
}
