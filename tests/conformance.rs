//! XPath 1.0 conformance suite: a table of queries with expected results,
//! executed by the improved translation, the canonical translation, and
//! the context-list interpreter. Every row must agree with the expectation
//! on all three evaluators.

use interp::{InterpOptions, Interpreter};
use natix::{Document, QueryOutput, XPathEngine};

const FIXTURE: &str = r#"<shop xml:lang="en">
  <dept name="fruit">
    <item sku="f1" price="1.10"><name>apple</name><stock>10</stock></item>
    <item sku="f2" price="2.50"><name>mango</name><stock>0</stock></item>
    <item sku="f3" price="0.80"><name>plum</name><stock>55</stock></item>
  </dept>
  <dept name="tools">
    <item sku="t1" price="9.99"><name>hammer</name><stock>3</stock></item>
    <item sku="t2" price="14.50"><name>saw</name><stock>7</stock></item>
  </dept>
  <note id="n1">check <b>stock</b> weekly</note>
  <!-- end of catalog -->
  <?audit on?>
</shop>"#;

/// Expected result forms.
enum Want {
    Strings(&'static [&'static str]),
    Count(usize),
    Num(f64),
    Str(&'static str),
    Bool(bool),
}

fn check(doc: &Document, q: &str, want: &Want) {
    let engines: Vec<(String, QueryOutput)> = vec![
        (
            "improved".into(),
            XPathEngine::new()
                .evaluate(doc.store(), q)
                .unwrap_or_else(|e| panic!("{q}: {e}")),
        ),
        (
            "canonical".into(),
            XPathEngine::canonical()
                .evaluate(doc.store(), q)
                .unwrap_or_else(|e| panic!("{q}: {e}")),
        ),
        ("interp".into(), {
            let store = doc.store();
            Interpreter::new(store, InterpOptions::context_list())
                .evaluate(q, store.root())
                .unwrap_or_else(|e| panic!("{q}: {e}"))
        }),
    ];
    for (name, got) in engines {
        match want {
            Want::Strings(exp) => {
                let got_strings: Vec<String> = got
                    .as_nodes()
                    .unwrap_or_else(|| panic!("{name} {q}: expected nodes, got {got:?}"))
                    .iter()
                    .map(|&n| doc.store().string_value(n))
                    .collect();
                assert_eq!(&got_strings, exp, "{name}: {q}");
            }
            Want::Count(c) => {
                let n = got.as_nodes().map(|x| x.len()).unwrap_or(usize::MAX);
                assert_eq!(n, *c, "{name}: {q} -> {got:?}");
            }
            Want::Num(x) => assert_eq!(got, QueryOutput::Num(*x), "{name}: {q}"),
            Want::Str(s) => assert_eq!(got, QueryOutput::Str((*s).into()), "{name}: {q}"),
            Want::Bool(b) => assert_eq!(got, QueryOutput::Bool(*b), "{name}: {q}"),
        }
    }
}

fn cases() -> Vec<(&'static str, Want)> {
    use Want::*;
    vec![
        // --- location paths & axes ------------------------------------
        ("/shop/dept/item/name", Strings(&["apple", "mango", "plum", "hammer", "saw"])),
        ("/shop/dept[@name='tools']/item/name", Strings(&["hammer", "saw"])),
        ("//item/name", Count(5)),
        ("/descendant::item", Count(5)),
        ("//name/parent::item/@sku", Strings(&["f1", "f2", "f3", "t1", "t2"])),
        ("//stock/ancestor::dept/@name", Strings(&["fruit", "tools"])),
        ("//item[@sku='f2']/following-sibling::item/@sku", Strings(&["f3"])),
        ("//item[@sku='t2']/preceding-sibling::item/@sku", Strings(&["t1"])),
        ("//item[@sku='f3']/following::item/@sku", Strings(&["t1", "t2"])),
        ("//item[@sku='t1']/preceding::item/@sku", Strings(&["f1", "f2", "f3"])),
        ("//b/ancestor-or-self::*", Count(3)),
        ("//name/self::name", Count(5)),
        ("/shop/dept/item/descendant-or-self::item", Count(5)),
        ("//item/..", Count(2)),
        ("/shop//item", Count(5)),
        // --- node tests -------------------------------------------------
        ("/shop/note/text()", Strings(&["check ", " weekly"])),
        ("/shop/comment()", Count(1)),
        ("/shop/processing-instruction()", Count(1)),
        ("/shop/processing-instruction('audit')", Count(1)),
        ("/shop/processing-instruction('other')", Count(0)),
        ("/shop/node()", Count(11)), // 5 children + 6 whitespace text nodes
        ("//dept/@*", Count(2)),
        // --- positions ---------------------------------------------------
        ("/shop/dept[1]/item/name", Strings(&["apple", "mango", "plum"])),
        ("/shop/dept[2]/item[2]/name", Strings(&["saw"])),
        ("/shop/dept/item[1]/name", Strings(&["apple", "hammer"])),
        ("/shop/dept/item[last()]/name", Strings(&["plum", "saw"])),
        ("/shop/dept/item[position()=last()-1]/name", Strings(&["mango", "hammer"])),
        ("/shop/dept/item[position() > 1]/@sku", Strings(&["f2", "f3", "t2"])),
        ("(//item)[3]/@sku", Strings(&["f3"])),
        ("(//item)[last()]/@sku", Strings(&["t2"])),
        ("(//item)[position() mod 2 = 0]/@sku", Strings(&["f2", "t1"])),
        ("//item[@sku='f3']/preceding-sibling::item[1]/@sku", Strings(&["f2"])),
        // --- predicates --------------------------------------------------
        ("//item[stock > 5]/@sku", Strings(&["f1", "f3", "t2"])),
        ("//item[stock = 0]/name", Strings(&["mango"])),
        ("//item[@price < 2]/name", Strings(&["apple", "plum"])),
        ("//item[name = 'saw']/@price", Strings(&["14.50"])),
        ("//item[starts-with(name, 'ha')]/@sku", Strings(&["t1"])),
        ("//item[contains(name, 'a')]/@sku", Strings(&["f1", "f2", "t1", "t2"])),
        ("//item[string-length(name) = 4]/name", Strings(&["plum"])),
        ("//dept[count(item) = 3]/@name", Strings(&["fruit"])),
        ("//dept[item/stock = 0]/@name", Strings(&["fruit"])),
        ("//item[not(stock = 0)]", Count(4)),
        ("//item[stock][price]", Count(0)),
        ("//item[stock][@price]", Count(5)),
        ("//item[position()=2 and stock=0]/name", Strings(&["mango"])),
        ("//item[position()=1 or position()=last()]", Count(4)),
        // --- functions ----------------------------------------------------
        ("count(//item)", Num(5.0)),
        ("count(//item/@sku)", Num(5.0)),
        ("sum(//stock)", Num(75.0)),
        ("sum(//item/@price)", Num(1.10 + 2.50 + 0.80 + 9.99 + 14.50)),
        ("floor(sum(//item/@price))", Num(28.0)),
        ("ceiling(2.1)", Num(3.0)),
        ("round(2.5)", Num(3.0)),
        ("round(-2.5)", Num(-2.0)),
        ("string(//item[1]/name)", Str("apple")),
        ("string(//nothing)", Str("")),
        (
            "concat(string(//item[1]/name), '-', string(//item[2]/name))",
            Str("apple-mango"),
        ),
        ("substring('hello world', 7)", Str("world")),
        ("substring('hello', 2, 3)", Str("ell")),
        ("substring-before('a=b', '=')", Str("a")),
        ("substring-after('a=b', '=')", Str("b")),
        ("normalize-space('  a   b  ')", Str("a b")),
        ("translate('abcabc', 'ab', 'BA')", Str("BAcBAc")),
        ("string-length('çedilla')", Num(7.0)),
        ("boolean(//item)", Bool(true)),
        ("boolean(//widget)", Bool(false)),
        ("boolean(0)", Bool(false)),
        ("boolean('false')", Bool(true)),
        ("not(1 = 2)", Bool(true)),
        ("true() and false()", Bool(false)),
        ("number('12.5') * 2", Num(25.0)),
        ("number(//item[1]/stock) + 1", Num(11.0)),
        ("name(//*[@sku='t1'])", Str("item")),
        ("local-name(//*[@sku='t1'])", Str("item")),
        ("namespace-uri(//item[1])", Str("")),
        // lang() from the document node is false (no ancestor element);
        // within the tree the root's xml:lang applies.
        ("lang('en')", Bool(false)),
        ("count(//item[lang('en')])", Num(5.0)),
        ("count(//item[lang('de')])", Num(0.0)),
        ("string(id('n1')/b)", Str("stock")),
        ("count(id('n1 missing'))", Num(1.0)),
        // --- comparisons ---------------------------------------------------
        ("//item/@price > 14", Bool(true)),
        ("//item/@price > 15", Bool(false)),
        ("//item/stock < //item/@price", Bool(true)),
        ("//dept/@name = 'fruit'", Bool(true)),
        ("//dept/@name != 'fruit'", Bool(true)),
        ("//dept[1]/@name != //dept[1]/@name", Bool(false)),
        ("2 + 2 = 4", Bool(true)),
        ("'4' = 4", Bool(true)),
        ("'a' < 'b'", Bool(false)), // relational on strings → NaN
        // --- unions ---------------------------------------------------------
        ("//name | //stock", Count(10)),
        ("//item[@sku='f1'] | //item[@sku='f1']", Count(1)),
        ("//note | //dept", Count(3)),
        // --- arithmetic -------------------------------------------------------
        ("7 mod 2", Num(1.0)),
        ("7 div 2", Num(3.5)),
        ("-3 + 10", Num(7.0)),
        ("3 * (2 + 1)", Num(9.0)),
        // --- filter + path combinations ----------------------------------------
        ("(//dept)[2]/item[1]/name", Strings(&["hammer"])),
        ("(//item[stock > 5])[last()]/@sku", Strings(&["t2"])),
        ("id('n1')/b", Count(1)),
        ("//dept[2]/item/name[. = 'saw']", Strings(&["saw"])),
        // --- abbreviations and dot forms ---------------------------------------
        ("//item/.", Count(5)),
        ("//name/../@sku", Count(5)),
        (".//item", Count(5)),
        ("//item/./name/..", Count(5)),
        ("//b/../b", Count(1)),
        // --- predicates on the attribute axis ----------------------------------
        ("//item/@*[1]", Count(5)),
        ("//item/@*[2]", Count(5)),
        ("//dept/@*[last()]", Count(2)),
        ("//item[@*]", Count(5)),
        // --- node() positional ---------------------------------------------------
        ("/shop/note/node()[1]", Strings(&["check "])),
        ("/shop/note/node()[last()]", Strings(&[" weekly"])),
        ("/shop/note/node()[2]", Count(1)),
        // --- nested/multiple predicates ------------------------------------------
        // //x[1] counts per parent context (the classic XPath gotcha).
        ("//item[stock > 1][@price > 1][1]/@sku", Strings(&["f1", "t1"])),
        // successive predicates renumber the surviving context.
        ("(//item)[position() > 1][position() < 3]/@sku", Strings(&["f2", "f3"])),
        ("//dept[item[stock = 0]]/@name", Strings(&["fruit"])),
        ("//item[../@name = 'tools']/@sku", Strings(&["t1", "t2"])),
        // --- unions inside predicates ---------------------------------------------
        ("//dept[item/name = 'saw' or item/name = 'apple']", Count(2)),
        ("count(//item[name | stock])", Num(5.0)),
        // --- arithmetic edge cases ---------------------------------------------------
        ("1 div 0 > 0", Bool(true)),
        ("-1 div 0 < 0", Bool(true)),
        ("number('x') = number('x')", Bool(false)),
        ("string(1 div 0)", Str("Infinity")),
        ("string(0 div 0)", Str("NaN")),
        ("string(-(1 div 0))", Str("-Infinity")),
        ("ceiling(-0.5) = 0", Bool(true)),
        // --- string-value of elements with mixed content ---------------------------
        ("string(/shop/note)", Str("check stock weekly")),
        ("string-length(string(//note))", Num(18.0)),
        ("normalize-space(string(//dept[1]/item[1]))", Str("apple10")),
        // --- comparisons against the empty set --------------------------------------
        ("//nothing = 'x'", Bool(false)),
        ("//nothing != 'x'", Bool(false)),
        ("//nothing < 1", Bool(false)),
        ("not(//nothing = //item)", Bool(true)),
        // --- positional arithmetic ----------------------------------------------------
        ("//item[position() = 2 + 1]/@sku", Strings(&["f3"])),
        ("//item[position() = last() div 2 + 0.5]/@sku", Strings(&["f2"])),
        ("(//item)[position() = last() - 3]/@sku", Strings(&["f2"])),
    ]
}

#[test]
fn conformance_suite() {
    let doc = Document::parse(FIXTURE).unwrap();
    let all = cases();
    assert!(all.len() >= 90, "suite should stay comprehensive");
    for (q, want) in &all {
        check(&doc, q, want);
    }
}

#[test]
fn conformance_suite_on_disk_store() {
    let arena = Document::parse(FIXTURE).unwrap();
    let path = xmlstore::tmp::TempPath::new(".natix");
    let doc = arena.persist(path.path(), 4).unwrap();
    for (q, want) in &cases() {
        check(&doc, q, want);
    }
}
