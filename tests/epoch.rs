//! Epoch-snapshot concurrency (DESIGN.md §18): online updates under
//! live readers. The headline property is the race differential —
//! readers racing a committing writer always see results byte-identical
//! to a serial run against either the pre-commit or the post-commit
//! snapshot, never a torn mix — plus the fault-injection matrix: an
//! injected alloc failure, cancellation or index-repair abort anywhere
//! inside a batch leaves the published epoch untouched and the batch's
//! governor with zero transient bytes.

use std::sync::Arc;

use natix::service::render_output;
use natix::{
    Document, Engine, EngineConfig, FailPoint, NatixError, QueryOutput, RepairFailPoint,
    ResourceLimits, TranslateOptions, UpdateError,
};
use telemetry::Telemetry;
use xmlstore::to_xml;

fn engine_with(xml: &str) -> Arc<Engine> {
    let engine = Engine::new();
    engine.register_document("main", Document::parse(xml).unwrap());
    engine
}

#[test]
fn registry_epochs_and_pins() {
    let engine = engine_with("<r><item>1</item></r>");
    assert_eq!(engine.document_epoch("main"), Some(1));

    // A reader pins epoch 1.
    let pin = engine.pin("main").unwrap();
    assert_eq!(pin.epoch(), 1);

    // A writer appends an item and commits.
    let mut batch = engine.write_batch("main").unwrap();
    let r = batch.select_one("/r").unwrap();
    let item = batch.append_element(r, "item").unwrap();
    batch.append_text(item, "2").unwrap();
    let receipt = batch.commit().unwrap();
    assert_eq!(receipt.epoch, 2);
    assert_eq!(receipt.ops, 2);
    assert_eq!(engine.document_epoch("main"), Some(2));

    // The pinned reader still sees the old snapshot; a fresh pin sees
    // the new epoch.
    let session = engine.session();
    assert_eq!(
        session.evaluate(pin.doc().store(), "count(/r/item)").unwrap(),
        QueryOutput::Num(1.0)
    );
    let fresh = engine.pin("main").unwrap();
    assert_eq!(fresh.epoch(), 2);
    assert_eq!(
        session.evaluate(fresh.doc().store(), "count(/r/item)").unwrap(),
        QueryOutput::Num(2.0)
    );
}

#[test]
fn single_writer_per_document() {
    let engine = engine_with("<r/>");
    let first = engine.write_batch("main").unwrap();
    match engine.write_batch("main") {
        Err(NatixError::Update(UpdateError::WriterConflict(doc))) => assert_eq!(doc, "main"),
        other => panic!("expected writer conflict, got {other:?}"),
    }
    drop(first);
    // The slot frees on drop (abort path).
    engine.write_batch("main").unwrap();
    assert_eq!(engine.document_epoch("main"), Some(1), "aborted batches publish nothing");
}

#[test]
fn disk_documents_are_immutable_snapshots() {
    use xmlstore::tmp::TempPath;
    let t = TempPath::new(".natix");
    let arena = Document::parse("<r><a/></r>").unwrap();
    let disk = arena.persist(t.path(), 8).unwrap();
    let engine = Engine::new();
    engine.register_document("frozen", disk);
    match engine.write_batch("frozen") {
        Err(NatixError::Update(UpdateError::ImmutableSnapshot)) => {}
        other => panic!("expected immutable-snapshot, got {other:?}"),
    }
    // The refused batch must not leak the writer slot.
    match engine.write_batch("frozen") {
        Err(NatixError::Update(UpdateError::ImmutableSnapshot)) => {}
        other => panic!("writer slot leaked: {other:?}"),
    }
}

/// The race differential: N reader threads race a writer that commits
/// one append per epoch. Every reader pins a snapshot, runs several
/// queries under that single pin, and checks the rendered protocol
/// lines against the closed-form serial answer for the pinned epoch —
/// epoch k has exactly k-1 items with texts 1..k-1, so a reader that
/// ever observed a half-applied batch (or two different epochs inside
/// one pin) would produce a line no serial run could.
#[test]
fn readers_race_writer_without_tearing() {
    let engine = engine_with("<r></r>");
    const COMMITS: u64 = 40;
    const READERS: usize = 4;

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let session = engine.session();
                let mut distinct_epochs = std::collections::BTreeSet::new();
                for _ in 0..150 {
                    let pin = engine.pin("main").unwrap();
                    let store = pin.doc().store();
                    let items = pin.epoch() - 1;
                    // Three queries under one pin: all must agree with
                    // the pinned epoch's serial answer, byte for byte.
                    let count = render_output(&session.evaluate(store, "count(/r/item)").unwrap());
                    assert_eq!(count, format!("OK num {items}"), "epoch {}", pin.epoch());
                    let sum = render_output(&session.evaluate(store, "sum(/r/item)").unwrap());
                    assert_eq!(
                        sum,
                        format!("OK num {}", items * (items + 1) / 2),
                        "epoch {}",
                        pin.epoch()
                    );
                    let last =
                        render_output(&session.evaluate(store, "string(/r/item[last()])").unwrap());
                    let expect_last = if items == 0 {
                        "OK str ".to_owned()
                    } else {
                        format!("OK str {items}")
                    };
                    assert_eq!(last, expect_last, "epoch {}", pin.epoch());
                    distinct_epochs.insert(pin.epoch());
                }
                distinct_epochs.len()
            })
        })
        .collect();

    let writer = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for k in 1..=COMMITS {
                let mut batch = engine.write_batch("main").unwrap();
                let r = batch.select_one("/r").unwrap();
                let item = batch.append_element(r, "item").unwrap();
                batch.append_text(item, &k.to_string()).unwrap();
                let receipt = batch.commit().unwrap();
                assert_eq!(receipt.epoch, k + 1);
            }
        })
    };
    for r in readers {
        assert!(r.join().unwrap() > 0, "every reader made progress");
    }
    writer.join().unwrap();
    assert_eq!(engine.document_epoch("main"), Some(COMMITS + 1));
}

/// The fault-injection matrix: whatever aborts a batch — an injected
/// allocation failure, an injected cancellation, or an injected
/// structural-index repair abort — the published snapshot stays
/// byte-identical, the epoch does not move, and the batch's governor
/// releases every transient byte.
#[test]
fn injected_faults_discard_the_batch_whole() {
    let faults: &[(FailPoint, RepairFailPoint, &str)] = &[
        (
            FailPoint { fail_at_alloc: Some(2), cancel_at_tick: None },
            RepairFailPoint::none(),
            "alloc",
        ),
        (
            FailPoint { fail_at_alloc: None, cancel_at_tick: Some(3) },
            RepairFailPoint::none(),
            "cancel",
        ),
        (FailPoint::none(), RepairFailPoint { fail_repair_at: Some(2) }, "repair"),
    ];
    for (fp, rfp, label) in faults {
        let engine = engine_with("<r><a>1</a><b>2</b></r>");
        let before_xml = to_xml(engine.document("main").unwrap().store());
        let mut batch =
            engine.write_batch_with("main", ResourceLimits::unlimited(), *fp, *rfp).unwrap();
        let gov = batch.governor();

        // Keep applying ops until the injected fault fires.
        let mut failed = None;
        for i in 0..10u32 {
            let r = match batch.select_one("/r") {
                Ok(r) => r,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            if let Err(e) = batch.append_element(r, &format!("x{i}")) {
                failed = Some(e);
                break;
            }
        }
        let failed = failed.unwrap_or_else(|| panic!("{label}: fault never fired"));
        match (*label, &failed) {
            ("alloc", NatixError::Resource(natix::QueryError::MemoryExceeded { .. })) => {}
            ("cancel", NatixError::Resource(natix::QueryError::Cancelled)) => {}
            ("repair", NatixError::Update(UpdateError::RepairAborted)) => {}
            other => panic!("{label}: unexpected failure {other:?}"),
        }
        assert!(batch.is_poisoned(), "{label}: fault poisons the batch");

        // Every further op (and commit) is refused.
        match batch.select_one("/r") {
            Err(NatixError::Update(UpdateError::BatchPoisoned)) => {}
            other => panic!("{label}: poisoned batch accepted an op: {other:?}"),
        }
        match batch.commit() {
            Err(NatixError::Update(UpdateError::BatchPoisoned)) => {}
            other => panic!("{label}: poisoned batch committed: {other:?}"),
        }

        // Atomicity: the published snapshot is byte-identical, the epoch
        // did not move, and no transient governor state leaked.
        assert_eq!(engine.document_epoch("main"), Some(1), "{label}");
        assert_eq!(to_xml(engine.document("main").unwrap().store()), before_xml, "{label}");
        assert_eq!(gov.transient_bytes(), 0, "{label}: governor leak");

        // The writer slot is free again and a clean batch succeeds.
        let mut retry = engine.write_batch("main").unwrap();
        let retry_gov = retry.governor();
        let r = retry.select_one("/r").unwrap();
        retry.append_element(r, "c").unwrap();
        let receipt = retry.commit().unwrap();
        assert_eq!(receipt.epoch, 2, "{label}: retry after fault publishes");
        assert_eq!(retry_gov.transient_bytes(), 0, "{label}");
    }
}

#[test]
fn commit_releases_governor_and_counts_repairs() {
    let engine = engine_with("<r><a/><b/></r>");
    let mut batch = engine.write_batch("main").unwrap();
    let gov = batch.governor();
    let r = batch.select_one("/r").unwrap();
    batch.append_element(r, "c").unwrap();
    let a = batch.select_one("/r/a").unwrap();
    batch.remove_subtree(a).unwrap();
    assert!(gov.transient_bytes() > 0, "open batch holds its op charges");
    let receipt = batch.commit().unwrap();
    assert_eq!(gov.transient_bytes(), 0, "commit releases the whole charge");
    assert_eq!(receipt.repairs.incremental, 2);
    assert_eq!(receipt.repairs.full_renumbers, 0);
}

#[test]
fn stale_plans_evicted_on_epoch_publish() {
    let engine = engine_with("<r><a>1</a><a>2</a><b>3</b></r>");
    let session = engine.session().with_options(TranslateOptions::cost_based());

    // Compile a cost-based plan: keyed under the current statistics
    // fingerprint.
    let doc = engine.document("main").unwrap();
    assert_eq!(session.evaluate(doc.store(), "count(//a)").unwrap(), QueryOutput::Num(2.0));
    let stats = engine.cache_stats();
    assert_eq!((stats.entries, stats.stale_evictions), (1, 0));

    // A structural commit changes the statistics fingerprint: the old
    // entry is eagerly evicted at publish, not left to LRU pressure.
    let mut batch = engine.write_batch("main").unwrap();
    let r = batch.select_one("/r").unwrap();
    batch.append_element(r, "a").unwrap();
    let receipt = batch.commit().unwrap();
    assert_eq!(receipt.stale_plans_evicted, 1);
    let stats = engine.cache_stats();
    assert_eq!((stats.entries, stats.stale_evictions), (0, 1));

    // The next evaluation recompiles under the new fingerprint and
    // sees the new document.
    let doc = engine.document("main").unwrap();
    assert_eq!(session.evaluate(doc.store(), "count(//a)").unwrap(), QueryOutput::Num(3.0));
    assert_eq!(engine.cache_stats().entries, 1);
}

#[test]
fn content_only_commits_keep_plans() {
    // A content-only update leaves the structural statistics (and their
    // fingerprint) untouched, so cached plans stay valid and resident.
    let engine = engine_with("<r><a>1</a></r>");
    let session = engine.session().with_options(TranslateOptions::cost_based());
    let doc = engine.document("main").unwrap();
    session.evaluate(doc.store(), "count(//a)").unwrap();
    assert_eq!(engine.cache_stats().entries, 1);

    let mut batch = engine.write_batch("main").unwrap();
    let text = batch.select_one("/r/a/text()").unwrap();
    batch.set_content(text, "updated").unwrap();
    let receipt = batch.commit().unwrap();
    assert_eq!(receipt.stale_plans_evicted, 0);
    let stats = engine.cache_stats();
    assert_eq!((stats.entries, stats.stale_evictions), (1, 0));
}

#[test]
fn epoch_metrics_flow_to_telemetry() {
    let telemetry = Telemetry::new().shared();
    let engine = Engine::with_config(EngineConfig::default(), Some(telemetry.clone()));
    engine.register_document("main", Document::parse("<r><a/></r>").unwrap());
    assert_eq!(telemetry.registry.value("natix_store_epoch"), Some(1));
    assert_eq!(telemetry.registry.value("natix_epoch_readers"), Some(0));

    {
        let _pin1 = engine.pin("main").unwrap();
        let _pin2 = engine.pin("main").unwrap();
        assert_eq!(telemetry.registry.value("natix_epoch_readers"), Some(2));
    }
    assert_eq!(telemetry.registry.value("natix_epoch_readers"), Some(0));

    let mut batch = engine.write_batch("main").unwrap();
    let r = batch.select_one("/r").unwrap();
    batch.append_element(r, "b").unwrap();
    batch.append_element(r, "c").unwrap();
    batch.commit().unwrap();
    assert_eq!(telemetry.registry.value("natix_store_epoch"), Some(2));
    assert_eq!(telemetry.registry.value("natix_index_repairs_total"), Some(2));
    assert_eq!(
        telemetry.registry.value("natix_plan_cache_stale_evictions_total"),
        Some(0),
        "no cost-based plans were cached"
    );
}

#[test]
fn update_protocol_roundtrip() {
    use natix::{QueryService, ServiceConfig};
    let engine = engine_with("<r><a>1</a><b>2</b></r>");
    let service = QueryService::new(engine, ServiceConfig { workers: 2, queue_depth: 8 });
    let mut c = service.client(None);

    assert_eq!(c.handle("epoch").text(), "OK epoch 1");
    assert_eq!(c.handle("count(/r/*)").text(), "OK num 2");

    // Batched updates: invisible to queries until commit.
    assert_eq!(c.handle("update append-element /r c").text(), "OK update append-element ops=1");
    assert_eq!(c.handle("update set-attr /r/a x 9").text(), "OK update set-attr ops=2");
    assert_eq!(c.handle("count(/r/*)").text(), "OK num 2", "uncommitted batch is invisible");
    let commit = c.handle("commit").text().to_owned();
    assert!(commit.starts_with("OK committed epoch=2 ops=2"), "{commit}");
    assert_eq!(c.handle("count(/r/*)").text(), "OK num 3");
    assert_eq!(c.handle("string(/r/a/@x)").text(), "OK str 9");
    assert_eq!(c.handle("epoch").text(), "OK epoch 2");

    // Rollback discards.
    assert_eq!(c.handle("update remove /r/b").text(), "OK update remove ops=1");
    assert_eq!(c.handle("rollback").text(), "OK rolled back ops=1");
    assert_eq!(c.handle("count(/r/b)").text(), "OK num 1");

    // Typed error classes on the wire: `ERR update <class>: …`.
    let r = c.handle("update move /r/a /r/a").text().to_owned();
    assert!(r.starts_with("ERR update cycle:"), "{r}");
    // The failed op poisoned the batch.
    let r = c.handle("update remove /r/b").text().to_owned();
    assert!(r.starts_with("ERR update batch-poisoned:"), "{r}");
    assert_eq!(c.handle("rollback").text(), "OK rolled back ops=0");
    // A missed target is a typed error but does not poison the batch.
    let r = c.handle("update remove /r/nosuch").text().to_owned();
    assert!(r.starts_with("ERR update target-not-found:"), "{r}");
    assert_eq!(c.handle("update remove /r/b").text(), "OK update remove ops=1");
    assert_eq!(c.handle("rollback").text(), "OK rolled back ops=1");
    assert_eq!(c.handle("commit").text(), "ERR usage no open write batch");
    assert_eq!(c.handle("rollback").text(), "ERR usage no open write batch");
}
