//! Corruption-hardening tests (DESIGN.md §13): every way a store file can
//! rot — damaged header fields, random single-byte flips, truncations,
//! reads that error or come up short mid-query, crashes mid-build — must
//! surface as a typed error or a correct answer, never a panic and never
//! a silently wrong answer. The random sweeps are deterministic: the seed
//! comes from `PROPTEST_SEED` (the same env var the property tests use)
//! so CI failures reproduce exactly.

use std::collections::HashMap;

use algebra::QueryOutput;
use compiler::TranslateOptions;
use natix::{QueryError, ResourceLimits};
use xmlstore::diskstore::{create_store_file, create_store_file_with, DiskStore};
use xmlstore::page::{seal_page, PAGE_SIZE};
use xmlstore::parser::parse_document;
use xmlstore::tmp::TempPath;
use xmlstore::{ArenaStore, IoFailPoint, XmlStore};

/// Queries run against every store that still opens after damage; their
/// answers must match the pristine baseline exactly.
const PROBES: &[&str] = &[
    "count(//*)",
    "count(//entry[@seq])",
    "string(/log/entry[3])",
    "count(//entry[text = 'message 7'])",
];

/// A document big enough to span several pages in every region: names,
/// node records, and long string chains.
fn sample_store() -> ArenaStore {
    let mut s = parse_document("<log></log>").unwrap();
    let root = s.first_child(s.root()).unwrap();
    for i in 0..300 {
        let e = s.append_element(root, "entry").unwrap();
        s.set_attribute(e, "seq", &i.to_string()).unwrap();
        let t = s.append_element(e, "text").unwrap();
        s.append_text(t, &format!("message {i}")).unwrap();
    }
    // A long text value so string chains cross page boundaries.
    let big = s.append_element(root, "blob").unwrap();
    s.append_text(big, &"x".repeat(3 * PAGE_SIZE)).unwrap();
    s
}

fn baseline(store: &dyn XmlStore) -> Vec<QueryOutput> {
    PROBES
        .iter()
        .map(|q| nqe::evaluate(store, q, &TranslateOptions::improved()).unwrap())
        .collect()
}

/// The hardening contract for a damaged file: opening and querying either
/// fails typed or answers exactly like the pristine store. Any panic
/// fails the test (and the harness) outright.
fn assert_typed_error_or_correct(path: &std::path::Path, expect: &[QueryOutput]) {
    let store = match DiskStore::open(path, 4) {
        Ok(s) => s,
        Err(e) => {
            // Typed rejection: fine. The Display string must not be empty
            // so the CLI diagnostic carries information.
            assert!(!e.to_string().is_empty());
            return;
        }
    };
    if store.verify().is_err() {
        // Damage detected by the deep check — also a typed outcome.
        return;
    }
    for (q, want) in PROBES.iter().zip(expect) {
        match nqe::evaluate(&store, q, &TranslateOptions::improved()) {
            Ok(got) => assert_eq!(&got, want, "silent wrong answer for `{q}`"),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}

/// Deterministic 64-bit LCG (so the sweep reproduces from the seed alone).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn sweep_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_2026)
}

// ---- header-field sweep ------------------------------------------------

/// Overwrite the u32 at `off` in page 0 and reseal the page checksum, so
/// the mutation exercises field validation rather than the CRC.
fn patch_header_u32(pristine: &[u8], off: usize, val: u32) -> Vec<u8> {
    let mut bytes = pristine.to_vec();
    bytes[off..off + 4].copy_from_slice(&val.to_le_bytes());
    let mut page0: [u8; PAGE_SIZE] = bytes[..PAGE_SIZE].try_into().unwrap();
    seal_page(&mut page0);
    bytes[..PAGE_SIZE].copy_from_slice(&page0);
    bytes
}

#[test]
fn every_header_field_mutation_is_typed_or_harmless() {
    let arena = sample_store();
    let expect = baseline(&arena);
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();
    let pristine = std::fs::read(t.path()).unwrap();

    // All header u32 fields: version, node_count, names_start,
    // names_bytes, nodes_start, strings_start, name_count, total_pages,
    // plus the v3 index-region fields: index_start, postings_start,
    // meta_start, dir_start, index_count, meta_bytes.
    let damaged = TempPath::new(".natix");
    for off in [8usize, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60] {
        let orig = u32::from_le_bytes(pristine[off..off + 4].try_into().unwrap());
        for val in [
            0,
            1,
            orig ^ 1,
            orig.wrapping_add(1),
            orig.wrapping_sub(1),
            u32::MAX,
        ] {
            if val == orig {
                continue;
            }
            std::fs::write(damaged.path(), patch_header_u32(&pristine, off, val)).unwrap();
            assert_typed_error_or_correct(damaged.path(), &expect);
        }
    }

    // Magic bytes, resealed so only the magic check can reject.
    for i in 0..8 {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0x20;
        let mut page0: [u8; PAGE_SIZE] = bytes[..PAGE_SIZE].try_into().unwrap();
        seal_page(&mut page0);
        bytes[..PAGE_SIZE].copy_from_slice(&page0);
        std::fs::write(damaged.path(), bytes).unwrap();
        let err = DiskStore::open(damaged.path(), 4).unwrap_err();
        assert!(err.is_corrupt(), "magic byte {i}: {err}");
    }

    // Unsealed header mutation: the page checksum alone must catch it.
    let mut bytes = pristine.clone();
    bytes[12] ^= 0xFF;
    std::fs::write(damaged.path(), bytes).unwrap();
    let err = DiskStore::open(damaged.path(), 4).unwrap_err();
    assert!(err.is_corrupt(), "{err}");
    assert!(err.to_string().contains("page"), "diagnostic names the page: {err}");
}

// ---- random single-byte flips ------------------------------------------

#[test]
fn thousand_random_byte_flips_never_panic_or_lie() {
    let arena = sample_store();
    let expect = baseline(&arena);
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();
    let pristine = std::fs::read(t.path()).unwrap();

    let mut rng = Lcg(sweep_seed());
    let damaged = TempPath::new(".natix");
    for _ in 0..1000 {
        let off = (rng.next() % pristine.len() as u64) as usize;
        let mask = (rng.next() % 255 + 1) as u8; // never zero: always a real flip
        let mut bytes = pristine.clone();
        bytes[off] ^= mask;
        std::fs::write(damaged.path(), &bytes).unwrap();
        assert_typed_error_or_correct(damaged.path(), &expect);
    }
}

// ---- truncations -------------------------------------------------------

#[test]
fn truncations_are_rejected_typed() {
    let arena = sample_store();
    let expect = baseline(&arena);
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();
    let pristine = std::fs::read(t.path()).unwrap();

    let damaged = TempPath::new(".natix");
    // Zero-length file.
    std::fs::write(damaged.path(), b"").unwrap();
    let err = DiskStore::open(damaged.path(), 4).unwrap_err();
    assert!(err.is_corrupt(), "{err}");

    // Page-aligned truncations (lost tail pages) and ragged ones.
    let pages = pristine.len() / PAGE_SIZE;
    for p in 1..pages {
        std::fs::write(damaged.path(), &pristine[..p * PAGE_SIZE]).unwrap();
        let err = DiskStore::open(damaged.path(), 4).unwrap_err();
        assert!(err.is_corrupt(), "truncated to {p} page(s): {err}");
    }
    let mut rng = Lcg(sweep_seed() ^ 0xA5A5);
    for _ in 0..40 {
        let len = (rng.next() % pristine.len() as u64) as usize;
        std::fs::write(damaged.path(), &pristine[..len]).unwrap();
        assert_typed_error_or_correct(damaged.path(), &expect);
    }
}

// ---- injected faults mid-query -----------------------------------------

#[test]
fn pin_failure_at_every_point_unwinds_typed_with_no_leaked_charges() {
    let arena = sample_store();
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();

    // Count pins deterministically: a 1-frame buffer makes every probe
    // repin, and hits+misses is exactly the pin count.
    let probe = DiskStore::open(t.path(), 1).unwrap();
    let s = probe.buffer_stats();
    let open_pins = s.hits + s.misses;
    let q = "count(//entry[@seq = '250'])";
    let want = nqe::evaluate(&probe, q, &TranslateOptions::improved()).unwrap();
    let s = probe.buffer_stats();
    let total_pins = s.hits + s.misses;
    assert!(total_pins > open_pins, "the probe query must pin pages");
    drop(probe);

    // Fail each pin the query performs (capped: the interesting behaviour
    // is identical across the plateau in the middle).
    let picks: Vec<u64> = (open_pins + 1..=total_pins).collect();
    let step = (picks.len() / 40).max(1);
    for &n in picks.iter().step_by(step).chain(std::iter::once(&total_pins)) {
        let store = DiskStore::open_with(
            t.path(),
            1,
            IoFailPoint { fail_pin_at: Some(n), ..IoFailPoint::none() },
        )
        .unwrap();
        let (out, report) = nqe::explain_analyze_governed(
            &store,
            q,
            &TranslateOptions::improved(),
            &ResourceLimits::unlimited(),
            store.root(),
            &HashMap::new(),
        )
        .unwrap();
        match out {
            Err(QueryError::Storage { io, ref detail }) => {
                assert!(io, "an injected read error is an I/O fault: {detail}");
                assert!(detail.contains("injected"), "{detail}");
            }
            Ok(ref got) => assert_eq!(got, &want, "pin {n}: wrong answer"),
            Err(ref e) => panic!("pin {n}: unexpected error class {e}"),
        }
        // A storage unwind must not leak transient charges (the same
        // invariant the governor enforces for budget trips).
        assert_eq!(report.resources.transient_bytes, 0, "pin {n} leaked charges");
    }
}

#[test]
fn short_read_and_bit_rot_mid_query_are_corruption_not_io() {
    let arena = sample_store();
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();

    // A read that comes up short after open: typed failure.
    let probe = DiskStore::open(t.path(), 1).unwrap();
    let s = probe.buffer_stats();
    let open_reads = s.misses;
    drop(probe);
    match DiskStore::open_with(
        t.path(),
        1,
        IoFailPoint { short_read_at: Some(open_reads + 1), ..IoFailPoint::none() },
    ) {
        Err(e) => assert!(!e.to_string().is_empty()),
        Ok(store) => {
            let out = nqe::evaluate(&store, "count(//entry)", &TranslateOptions::improved());
            match out {
                Ok(v) => assert_eq!(v, QueryOutput::Num(300.0)),
                Err(e) => assert!(e.to_string().contains("storage"), "{e}"),
            }
        }
    }

    // Bit rot on a node page is caught by the checksum and classified as
    // corruption (exit code 5 territory), not as an I/O error.
    let pages = std::fs::metadata(t.path()).unwrap().len() as u32 / PAGE_SIZE as u32;
    let rotted = pages - 2; // a node/string page, never the header
    let err = DiskStore::open_with(
        t.path(),
        1,
        IoFailPoint { flip_byte: Some((rotted, 17)), ..IoFailPoint::none() },
    )
    .and_then(|s| s.verify().map(|_| ()))
    .unwrap_err();
    assert!(err.is_corrupt(), "{err}");
    assert!(err.to_string().contains("page"), "{err}");
}

// ---- atomic builds ------------------------------------------------------

#[test]
fn interrupted_build_leaves_no_file_and_preserves_a_previous_store() {
    let arena = sample_store();
    let t = TempPath::new(".natix");

    // Find how many writes a full build performs.
    create_store_file(&arena, t.path()).unwrap();
    let pages = std::fs::metadata(t.path()).unwrap().len() / PAGE_SIZE as u64;
    std::fs::remove_file(t.path()).unwrap();

    // Crash at every write point: no store file may appear.
    for k in 1..=pages {
        let fp = IoFailPoint { fail_write_at: Some(k), ..IoFailPoint::none() };
        create_store_file_with(&arena, t.path(), &fp).unwrap_err();
        assert!(!t.path().exists(), "failed build at write {k} left a file");
    }
    for fp in [
        IoFailPoint { fail_sync: true, ..IoFailPoint::none() },
        IoFailPoint { fail_rename: true, ..IoFailPoint::none() },
    ] {
        create_store_file_with(&arena, t.path(), &fp).unwrap_err();
        assert!(!t.path().exists(), "{fp:?} left a file");
    }

    // With a valid store already in place, a crashed rebuild must leave
    // the original untouched and fully readable.
    create_store_file(&arena, t.path()).unwrap();
    let before = std::fs::read(t.path()).unwrap();
    let mid = IoFailPoint { fail_write_at: Some(pages / 2), ..IoFailPoint::none() };
    create_store_file_with(&arena, t.path(), &mid).unwrap_err();
    assert_eq!(std::fs::read(t.path()).unwrap(), before, "rebuild crash damaged the store");
    DiskStore::open(t.path(), 4).unwrap().verify().unwrap();
}

// ---- hostile input ------------------------------------------------------

#[test]
fn hundred_thousand_deep_document_fails_typed_not_by_stack_overflow() {
    let mut xml = String::with_capacity(900_000);
    for _ in 0..100_000 {
        xml.push_str("<d>");
    }
    for _ in 0..100_000 {
        xml.push_str("</d>");
    }
    let err = parse_document(&xml).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("nesting"), "typed depth rejection, got: {msg}");
}

// ---- observability reconciliation ---------------------------------------

#[test]
fn verification_counters_reconcile_with_hand_computed_page_reads() {
    let arena = sample_store();
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();
    let file_pages = std::fs::metadata(t.path()).unwrap().len() / PAGE_SIZE as u64;

    // With a buffer larger than the file, open + full verify reads every
    // page from disk exactly once, and every read is verified.
    let store = DiskStore::open(t.path(), file_pages as usize + 8).unwrap();
    let report = store.verify().unwrap();
    assert_eq!(report.pages, file_pages, "verify covers the whole file");
    let s = store.buffer_stats();
    assert_eq!(s.misses, file_pages, "each page read exactly once");
    assert_eq!(s.pages_verified, file_pages, "every read is checksummed");
    assert_eq!(s.checksum_failures, 0);

    // The EXPLAIN ANALYZE storage section reports the same counters as an
    // execution delta: with a 1-frame buffer the query's reads all miss,
    // and reads == verifications.
    let store = DiskStore::open(t.path(), 1).unwrap();
    let (out, report) = nqe::explain_analyze_governed(
        &store,
        "count(//entry)",
        &TranslateOptions::improved(),
        &ResourceLimits::unlimited(),
        store.root(),
        &HashMap::new(),
    )
    .unwrap();
    assert_eq!(out.unwrap(), QueryOutput::Num(300.0));
    let storage = report.storage.expect("disk stores report a storage section");
    assert!(storage.pages_read > 0, "a 1-frame buffer must re-read pages");
    assert_eq!(storage.pages_verified, storage.pages_read, "verified == read");
    assert_eq!(storage.checksum_failures, 0);

    // Arena stores have no storage section.
    let (_, report) = nqe::explain_analyze_governed(
        &arena,
        "count(//entry)",
        &TranslateOptions::improved(),
        &ResourceLimits::unlimited(),
        arena.root(),
        &HashMap::new(),
    )
    .unwrap();
    assert!(report.storage.is_none(), "arena stores report no storage section");
}

#[test]
fn checksum_failure_counter_increments_on_damaged_page() {
    use xmlstore::buffer::{BufferManager, BufferOptions};

    let arena = sample_store();
    let t = TempPath::new(".natix");
    create_store_file(&arena, t.path()).unwrap();
    let mut bytes = std::fs::read(t.path()).unwrap();
    let damaged_page = 2u32;
    bytes[damaged_page as usize * PAGE_SIZE + 33] ^= 0x40;
    std::fs::write(t.path(), &bytes).unwrap();

    let buf = BufferManager::open_with(
        t.path(),
        4,
        BufferOptions { verify_checksums: true, failpoint: IoFailPoint::none() },
    )
    .unwrap();
    buf.pin(0).unwrap();
    let err = buf.pin(damaged_page).unwrap_err();
    assert!(err.is_corrupt(), "{err}");
    assert!(err.to_string().contains(&format!("page {damaged_page}")), "{err}");
    let s = buf.stats();
    assert_eq!(s.checksum_failures, 1, "exactly the damaged page fails");
    assert_eq!(s.pages_verified, 2, "both reads were checked");
}
