//! Integration: document updates followed by queries on all evaluators.
//! Updates must be equally visible to the algebraic engine and the
//! interpreter, and re-persisting an updated arena must round-trip.
//! The randomized differential at the bottom drives long random update
//! sequences and checks the incrementally repaired store against a
//! rebuilt-from-scratch (serialize → reparse) store over the full
//! 40-query corpus.

use compiler::TranslateOptions;
use interp::{InterpOptions, Interpreter};
use natix::QueryOutput;
use xmlstore::{parse_document, ArenaStore, XmlStore};

mod corpus;

fn agree(store: &ArenaStore, q: &str) -> QueryOutput {
    let a = nqe::evaluate(store, q, &TranslateOptions::improved()).unwrap();
    let b = Interpreter::new(store, InterpOptions::context_list())
        .evaluate(q, store.root())
        .unwrap();
    assert_eq!(a, b, "{q}");
    a
}

#[test]
fn engines_see_structural_updates() {
    let mut s = parse_document("<r><a>1</a><a>2</a></r>").unwrap();
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(2.0));

    let r = s.first_child(s.root()).unwrap();
    let a3 = s.append_element(r, "a").unwrap();
    s.append_text(a3, "3").unwrap();
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(3.0));
    assert_eq!(agree(&s, "string(/r/a[last()])"), QueryOutput::Str("3".into()));
    assert_eq!(agree(&s, "sum(/r/a)"), QueryOutput::Num(6.0));

    // Insert in the middle; positions shift.
    let second = match agree(&s, "/r/a[2]") {
        QueryOutput::Nodes(ns) => ns[0],
        other => panic!("{other:?}"),
    };
    let mid = s.insert_element_before(second, "a").unwrap();
    s.append_text(mid, "1.5").unwrap();
    assert_eq!(agree(&s, "string(/r/a[2])"), QueryOutput::Str("1.5".into()));
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(4.0));

    // Remove the first.
    let first = match agree(&s, "/r/a[1]") {
        QueryOutput::Nodes(ns) => ns[0],
        other => panic!("{other:?}"),
    };
    s.remove_subtree(first).unwrap();
    assert_eq!(agree(&s, "string(/r/a[1])"), QueryOutput::Str("1.5".into()));
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(3.0));
}

#[test]
fn id_index_follows_updates() {
    let mut s = parse_document(r#"<r><x id="one"/></r>"#).unwrap();
    assert_eq!(agree(&s, "count(id('one'))"), QueryOutput::Num(1.0));
    let r = s.first_child(s.root()).unwrap();
    let y = s.append_element(r, "y").unwrap();
    s.set_attribute(y, "id", "two").unwrap();
    assert_eq!(agree(&s, "name(id('two'))"), QueryOutput::Str("y".into()));
    // Removing the element drops its id.
    let x = s.first_child(r).unwrap();
    s.remove_subtree(x).unwrap();
    assert_eq!(agree(&s, "count(id('one'))"), QueryOutput::Num(0.0));
    assert_eq!(agree(&s, "count(id('two'))"), QueryOutput::Num(1.0));
}

#[test]
fn updated_document_persists_and_requeries() {
    use xmlstore::diskstore::DiskStore;
    use xmlstore::tmp::TempPath;
    let mut s = parse_document("<log></log>").unwrap();
    let root = s.first_child(s.root()).unwrap();
    for i in 0..50 {
        let e = s.append_element(root, "entry").unwrap();
        s.set_attribute(e, "seq", &i.to_string()).unwrap();
        s.append_text(e, &format!("message {i}")).unwrap();
    }
    let t = TempPath::new(".natix");
    let disk = DiskStore::create_from(&s, t.path(), 8).unwrap();
    for q in [
        "count(/log/entry)",
        "string(/log/entry[last()]/@seq)",
        "string(/log/entry[@seq='25'])",
    ] {
        let arena = nqe::evaluate(&s, q, &TranslateOptions::improved()).unwrap();
        let paged = nqe::evaluate(&disk, q, &TranslateOptions::improved()).unwrap();
        assert_eq!(arena, paged, "{q}");
    }
    assert_eq!(
        nqe::evaluate(&disk, "count(/log/entry)", &TranslateOptions::improved()).unwrap(),
        QueryOutput::Num(50.0)
    );
}

/// Deterministic splitmix64 (seeded; no external PRNG dependency).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random reachable node (by index rank, so tombstones are excluded).
fn random_node(s: &ArenaStore, rng: &mut Rng) -> xmlstore::NodeId {
    let idx = s.structural_index().unwrap();
    idx.node_at(rng.below(idx.len() as u64) as u32)
}

/// Node-id-free rendering of a query output, so results are comparable
/// across two stores whose ids differ (the updated store keeps
/// tombstoned slots; the reparsed store is dense).
fn canonical(s: &ArenaStore, out: &QueryOutput) -> String {
    match out {
        QueryOutput::Nodes(ns) => ns
            .iter()
            .map(|&n| {
                let name = s.name(n).map_or(String::new(), |id| s.names().text(id).to_owned());
                format!("{:?}|{name}|{}", s.kind(n), s.string_value(n))
            })
            .collect::<Vec<_>>()
            .join("\u{1e}"),
        other => format!("{other:?}"),
    }
}

/// The randomized update-sequence differential: starting from a
/// generated tree document, apply batches of random structural and
/// content updates (invalid picks — cycles, tombstones, root conflicts —
/// are skipped as typed errors), and after every batch require the
/// incrementally repaired store to agree with a store rebuilt from
/// scratch by serializing and reparsing, across the whole 40-query
/// corpus. Every answer the repaired index produces must be one a
/// fresh parse would also produce.
#[test]
fn random_update_sequences_match_rebuilt_store() {
    use xmlstore::gen::{generate_tree, TreeParams};
    let mut rng = Rng(0x5eed_2026_0805);
    let mut s = generate_tree(TreeParams { max_elements: 60, fanout: 4, max_depth: 3 });
    let names = ["a", "b", "c", "d", "e"];
    let mut next_id = 10_000u64;

    for batch in 0..12 {
        for _ in 0..10 {
            let target = random_node(&s, &mut rng);
            let name = names[rng.below(names.len() as u64) as usize];
            // Any typed error (wrong kind, cycle, root occupied, …) just
            // skips the op: the generator probes, the store validates.
            let _ = match rng.below(8) {
                0 => {
                    next_id += 1;
                    s.append_element(target, name).map(|e| {
                        let _ = s.set_attribute(e, "id", &next_id.to_string());
                    })
                }
                1 => s.append_text(target, "t").map(|_| ()),
                2 => s.insert_element_before(target, name).map(|e| {
                    next_id += 1;
                    let _ = s.set_attribute(e, "id", &next_id.to_string());
                }),
                3 => s.set_attribute(target, "tag", "v").map(|_| ()),
                4 => s.set_content(target, "rewritten"),
                5 => s.remove_attribute(target, "tag").map(|_| ()),
                6 => {
                    // Bound subtree removals so the document stays
                    // interesting for the whole run.
                    let idx = s.structural_index().unwrap();
                    if idx.len() > 40 {
                        s.remove_subtree(target)
                    } else {
                        Ok(())
                    }
                }
                _ => {
                    let dest = random_node(&s, &mut rng);
                    s.move_subtree(target, dest)
                }
            };
        }

        // Rebuild from scratch: serialize + reparse is the oracle.
        let rebuilt = parse_document(&xmlstore::to_xml(&s)).unwrap();
        for q in corpus::TREE_QUERIES {
            let live = nqe::evaluate(&s, q, &TranslateOptions::improved())
                .unwrap_or_else(|e| panic!("batch {batch} live `{q}`: {e}"));
            let fresh = nqe::evaluate(&rebuilt, q, &TranslateOptions::improved())
                .unwrap_or_else(|e| panic!("batch {batch} rebuilt `{q}`: {e}"));
            assert_eq!(
                canonical(&s, &live),
                canonical(&rebuilt, &fresh),
                "batch {batch}, query `{q}`"
            );
        }
    }
    // The sequence must have exercised the incremental path.
    assert!(s.repair_stats().incremental > 50, "{:?}", s.repair_stats());
}
