//! Integration: document updates followed by queries on all evaluators.
//! Updates must be equally visible to the algebraic engine and the
//! interpreter, and re-persisting an updated arena must round-trip.

use compiler::TranslateOptions;
use interp::{InterpOptions, Interpreter};
use natix::QueryOutput;
use xmlstore::{parse_document, ArenaStore, XmlStore};

fn agree(store: &ArenaStore, q: &str) -> QueryOutput {
    let a = nqe::evaluate(store, q, &TranslateOptions::improved()).unwrap();
    let b = Interpreter::new(store, InterpOptions::context_list())
        .evaluate(q, store.root())
        .unwrap();
    assert_eq!(a, b, "{q}");
    a
}

#[test]
fn engines_see_structural_updates() {
    let mut s = parse_document("<r><a>1</a><a>2</a></r>").unwrap();
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(2.0));

    let r = s.first_child(s.root()).unwrap();
    let a3 = s.append_element(r, "a").unwrap();
    s.append_text(a3, "3").unwrap();
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(3.0));
    assert_eq!(agree(&s, "string(/r/a[last()])"), QueryOutput::Str("3".into()));
    assert_eq!(agree(&s, "sum(/r/a)"), QueryOutput::Num(6.0));

    // Insert in the middle; positions shift.
    let second = match agree(&s, "/r/a[2]") {
        QueryOutput::Nodes(ns) => ns[0],
        other => panic!("{other:?}"),
    };
    let mid = s.insert_element_before(second, "a").unwrap();
    s.append_text(mid, "1.5").unwrap();
    assert_eq!(agree(&s, "string(/r/a[2])"), QueryOutput::Str("1.5".into()));
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(4.0));

    // Remove the first.
    let first = match agree(&s, "/r/a[1]") {
        QueryOutput::Nodes(ns) => ns[0],
        other => panic!("{other:?}"),
    };
    s.remove_subtree(first).unwrap();
    assert_eq!(agree(&s, "string(/r/a[1])"), QueryOutput::Str("1.5".into()));
    assert_eq!(agree(&s, "count(/r/a)"), QueryOutput::Num(3.0));
}

#[test]
fn id_index_follows_updates() {
    let mut s = parse_document(r#"<r><x id="one"/></r>"#).unwrap();
    assert_eq!(agree(&s, "count(id('one'))"), QueryOutput::Num(1.0));
    let r = s.first_child(s.root()).unwrap();
    let y = s.append_element(r, "y").unwrap();
    s.set_attribute(y, "id", "two").unwrap();
    assert_eq!(agree(&s, "name(id('two'))"), QueryOutput::Str("y".into()));
    // Removing the element drops its id.
    let x = s.first_child(r).unwrap();
    s.remove_subtree(x).unwrap();
    assert_eq!(agree(&s, "count(id('one'))"), QueryOutput::Num(0.0));
    assert_eq!(agree(&s, "count(id('two'))"), QueryOutput::Num(1.0));
}

#[test]
fn updated_document_persists_and_requeries() {
    use xmlstore::diskstore::DiskStore;
    use xmlstore::tmp::TempPath;
    let mut s = parse_document("<log></log>").unwrap();
    let root = s.first_child(s.root()).unwrap();
    for i in 0..50 {
        let e = s.append_element(root, "entry").unwrap();
        s.set_attribute(e, "seq", &i.to_string()).unwrap();
        s.append_text(e, &format!("message {i}")).unwrap();
    }
    let t = TempPath::new(".natix");
    let disk = DiskStore::create_from(&s, t.path(), 8).unwrap();
    for q in [
        "count(/log/entry)",
        "string(/log/entry[last()]/@seq)",
        "string(/log/entry[@seq='25'])",
    ] {
        let arena = nqe::evaluate(&s, q, &TranslateOptions::improved()).unwrap();
        let paged = nqe::evaluate(&disk, q, &TranslateOptions::improved()).unwrap();
        assert_eq!(arena, paged, "{q}");
    }
    assert_eq!(
        nqe::evaluate(&disk, "count(/log/entry)", &TranslateOptions::improved()).unwrap(),
        QueryOutput::Num(50.0)
    );
}
