//! Positional predicates and filter expressions: the paper's §3.3/§3.4
//! machinery (`position()`, `last()`, counter maps, Tmp^cs, document-order
//! sorting) demonstrated on a small roster document.
//!
//! ```sh
//! cargo run --example positional
//! ```

use natix::{Document, QueryOutput, XPathEngine};

fn show(doc: &Document, engine: &XPathEngine, q: &str) {
    let out = engine.evaluate(doc.store(), q).expect("evaluation");
    let rendered = match &out {
        QueryOutput::Nodes(ns) => {
            ns.iter().map(|&n| doc.store().string_value(n)).collect::<Vec<_>>().join(", ")
        }
        other => format!("{other:?}"),
    };
    println!("{q:<60} => {rendered}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = Document::parse(
        r#"<league>
            <team name="A"><player>a1</player><player>a2</player><player>a3</player></team>
            <team name="B"><player>b1</player><player>b2</player></team>
            <team name="C"><player>c1</player><player>c2</player><player>c3</player><player>c4</player></team>
        </league>"#,
    )?;
    let engine = XPathEngine::new();

    println!("— per-context positions (counter resets per team):");
    show(&doc, &engine, "/league/team/player[1]");
    show(&doc, &engine, "/league/team/player[last()]");
    show(&doc, &engine, "/league/team/player[position() = last() - 1]");
    show(&doc, &engine, "/league/team/player[position() mod 2 = 1]");

    println!("— filter expressions count over the whole sequence:");
    show(&doc, &engine, "(/league/team/player)[1]");
    show(&doc, &engine, "(/league/team/player)[last()]");
    show(&doc, &engine, "(/league/team/player)[position() > 6]");

    println!("— reverse axes count from the context node:");
    show(&doc, &engine, "//player[. = 'c3']/preceding-sibling::player[1]");
    show(&doc, &engine, "//player[. = 'c3']/preceding::player[3]");

    println!("— the Tmp^cs plan behind a last() predicate:");
    print!("{}", engine.explain("/league/team/player[position() = last()]")?);
    Ok(())
}
