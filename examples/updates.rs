//! Document updates between queries: the substrate's "updatable form"
//! (paper §5.2.2). Content edits are in-place; structural edits re-derive
//! document order; queries always see the current state.
//!
//! ```sh
//! cargo run --example updates
//! ```

use natix::{QueryOutput, XPathEngine};
use xmlstore::{parse_document, XmlStore};

fn show(store: &xmlstore::ArenaStore, engine: &XPathEngine, q: &str) {
    let out = engine.evaluate(store, q).expect("evaluate");
    let rendered = match &out {
        QueryOutput::Nodes(ns) => {
            ns.iter().map(|&n| store.string_value(n)).collect::<Vec<_>>().join(", ")
        }
        other => format!("{other:?}"),
    };
    println!("  {q:<42} => {rendered}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut store = parse_document(
        r#"<tasks><task state="open">write report</task><task state="done">book travel</task></tasks>"#,
    )?;
    let engine = XPathEngine::new();

    println!("initial document:");
    show(&store, &engine, "count(//task)");
    show(&store, &engine, "//task[@state='open']");

    // Structural update: add a task.
    let root = store.first_child(store.root()).unwrap();
    let t = store.append_element(root, "task")?;
    store.set_attribute(t, "state", "open")?;
    store.append_text(t, "review PR")?;
    println!("\nafter appending a task:");
    show(&store, &engine, "count(//task)");
    show(&store, &engine, "//task[@state='open']");
    show(&store, &engine, "//task[last()]");

    // In-place update: close the first open task.
    let first_open = match engine.evaluate(&store, "//task[@state='open'][1]")? {
        QueryOutput::Nodes(ns) => ns[0],
        other => panic!("{other:?}"),
    };
    store.set_attribute(first_open, "state", "done")?;
    println!("\nafter closing '{}':", store.string_value(first_open));
    show(&store, &engine, "//task[@state='open']");
    show(&store, &engine, "count(//task[@state='done'])");

    // Remove finished tasks.
    while let QueryOutput::Nodes(ns) = engine.evaluate(&store, "//task[@state='done']")? {
        match ns.first() {
            Some(&n) => store.remove_subtree(n)?,
            None => break,
        }
    }
    println!("\nafter removing done tasks:");
    show(&store, &engine, "count(//task)");
    show(&store, &engine, "//task");
    println!("\nfinal XML: {}", xmlstore::to_xml(&store));
    Ok(())
}
