//! The paper's Fig. 10 DBLP workload, end to end on the synthetic DBLP
//! document, with the algebraic engine and the baseline interpreter
//! side by side.
//!
//! ```sh
//! cargo run --release --example dblp_queries [records]
//! ```

use std::time::Instant;

use interp::{InterpOptions, Interpreter};
use natix::{QueryOutput, XPathEngine, XmlStore};
use xmlstore::gen::{generate_dblp, DblpParams};

const QUERIES: &[&str] = &[
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() = 3]/title",
    "/dblp/article[position() < 100]/title",
    "/dblp/article[position() = last()]/title",
    "/dblp/article[position()=last()-10]/title",
    "/dblp/article/title | /dblp/inproceedings/title",
    "/dblp/article[count(author)=4]/@key",
    "/dblp/article[year='1991']/@key",
    "/dblp/inproceedings[year='1991']/@key",
    "/dblp/*[author='Guido Moerkotte']/@key",
    "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
    "/dblp/inproceedings[author='Guido Moerkotte'][position()=last()]/title",
];

fn summary(store: &dyn XmlStore, out: &QueryOutput) -> String {
    match out {
        QueryOutput::Nodes(ns) => match ns.first() {
            Some(&n) => format!("{} nodes, first: {}", ns.len(), store.string_value(n)),
            None => "0 nodes".to_owned(),
        },
        other => format!("{other:?}"),
    }
}

fn main() {
    let records: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5_000);
    println!("generating synthetic DBLP with {records} records…");
    let store = generate_dblp(DblpParams { records, seed: 42 });
    let engine = XPathEngine::new();
    let interp = Interpreter::new(&store, InterpOptions::context_list());

    for q in QUERIES {
        let t0 = Instant::now();
        let algebraic = engine.evaluate(&store, q).expect("algebraic evaluation");
        let t_alg = t0.elapsed();
        let t0 = Instant::now();
        let interpreted = interp.evaluate(q, store.root()).expect("interpreter evaluation");
        let t_int = t0.elapsed();
        assert_eq!(algebraic, interpreted, "engines disagree on {q}");
        println!(
            "{q}\n    -> {}   [natix {:>8.3?} | interp {:>8.3?}]",
            summary(&store, &algebraic),
            t_alg,
            t_int
        );
    }
}
