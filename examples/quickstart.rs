//! Quickstart: parse a document, run a few queries, look at a plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use natix::{Document, QueryOutput, XPathEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = Document::parse(
        r#"<catalog>
            <cd genre="rock"><title>Abbey Road</title><year>1969</year><price>12.99</price></cd>
            <cd genre="jazz"><title>Kind of Blue</title><year>1959</year><price>9.99</price></cd>
            <cd genre="rock"><title>Nevermind</title><year>1991</year><price>7.49</price></cd>
        </catalog>"#,
    )?;
    let engine = XPathEngine::new();

    // Node-set query.
    let titles = engine.evaluate(doc.store(), "/catalog/cd[@genre='rock']/title")?;
    if let QueryOutput::Nodes(nodes) = &titles {
        println!("rock titles:");
        for &n in nodes {
            println!("  - {}", doc.store().string_value(n));
        }
    }

    // Scalar queries.
    println!("cd count   = {:?}", engine.evaluate(doc.store(), "count(/catalog/cd)")?);
    println!("total cost = {:?}", engine.evaluate(doc.store(), "sum(/catalog/cd/price)")?);
    println!(
        "pre-1990?  = {:?}",
        engine.evaluate(doc.store(), "boolean(/catalog/cd[year < 1990])")?
    );

    // Positional predicates (the paper's §3.3 machinery).
    println!(
        "last cd    = {:?}",
        engine.evaluate(doc.store(), "string(/catalog/cd[last()]/title)")?
    );

    // Look at the translated algebra plan (paper Fig. 3 shape).
    println!("\nplan for /catalog/cd[last()]/title:");
    print!("{}", engine.explain("/catalog/cd[last()]/title")?);
    Ok(())
}
