//! Build a paged on-disk document and query it through the buffer
//! manager — the "no main-memory representation" evaluation path of the
//! paper (§5.2.2).
//!
//! ```sh
//! cargo run --release --example disk_store [elements]
//! ```

use natix::{Document, XPathEngine};
use xmlstore::gen::{generate_tree, TreeParams};
use xmlstore::tmp::TempPath;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let elements: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);

    println!("generating a breadth-first document with {elements} elements…");
    let arena = generate_tree(TreeParams::large(elements));
    let arena_doc = Document::Arena(arena);

    let path = TempPath::new(".natix");
    // A deliberately small buffer: 64 pages of 8 KiB.
    let disk_doc = arena_doc.persist(path.path(), 64)?;
    let bytes = std::fs::metadata(path.path())?.len();
    println!("page file: {} KiB at {}", bytes / 1024, path.path().display());

    let engine = XPathEngine::new();
    for q in [
        "count(/xdoc/descendant::*)",
        "count(//*[@id='42'])",
        "string(/child::xdoc/child::*[1]/@id)",
        "count(/child::xdoc/descendant::*/ancestor::*)",
    ] {
        let mem = engine.evaluate(arena_doc.store(), q)?;
        let disk = engine.evaluate(disk_doc.store(), q)?;
        assert_eq!(mem, disk, "stores disagree on {q}");
        println!("{q:<55} => {disk:?}");
    }

    if let Document::Disk(ds) = &disk_doc {
        let stats = ds.buffer_stats();
        println!(
            "\nbuffer manager: {} hits, {} misses, {} evictions ({} frames)",
            stats.hits, stats.misses, stats.evictions, 64
        );
    }
    Ok(())
}
