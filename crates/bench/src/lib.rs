//! Shared infrastructure for the experiment harnesses reproducing the
//! paper's evaluation (§6): query sets, document builders, and a uniform
//! evaluator interface over the algebraic engine and the baseline
//! interpreters.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use compiler::{ResourceLimits, TranslateOptions};
use interp::{InterpOptions, Interpreter};
use nqe::Json;
use xmlstore::gen::{generate_dblp, generate_tree, DblpParams, TreeParams};
use xmlstore::{ArenaStore, XmlStore};

/// The paper's Fig. 5 queries (full axis names; the figure abbreviates
/// desc/anc/pre-sib/fol/par).
pub const FIG5_QUERIES: [(&str, &str); 4] = [
    ("q1", "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id"),
    (
        "q2",
        "/child::xdoc/descendant::*/preceding-sibling::*/following::*/attribute::id",
    ),
    ("q3", "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id"),
    ("q4", "/child::xdoc/child::*/parent::*/descendant::*/attribute::id"),
];

/// The paper's Fig. 10 queries (rows in table order; row 7 of the figure
/// is the two-path union printed across two lines).
pub const FIG10_QUERIES: [&str; 13] = [
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() = 3]/title",
    "/dblp/article[position() < 100]/title",
    "/dblp/article[position() = last()]/title",
    "/dblp/article[position()=last()-10]/title",
    "/dblp/article/title | /dblp/inproceedings/title",
    "/dblp/article[count(author)=4]/@key",
    "/dblp/article[year='1991']/@key",
    "/dblp/inproceedings[year='1991']/@key",
    "/dblp/*[author='Guido Moerkotte']/@key",
    "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
    "/dblp/inproceedings[author='Guido Moerkotte'][position()=last()]/title",
];

/// The experiment B7 service corpus: compile-heavy queries (long
/// unions, multi-step paths, stacked predicates) that execute cheaply on
/// a small DBLP document, so the compiled-plan cache's savings —
/// skipping parse/semantic/fold/translate — dominate the per-query cost.
/// Shared by `bench/bin/throughput` and the `regress` warm-cache gate so
/// their measurements are comparable.
pub const SERVICE_CORPUS: [&str; 12] = [
    "/dblp/article/title | /dblp/inproceedings/title | /dblp/article/year | /dblp/inproceedings/year",
    "/dblp/article[position()=1]/title | /dblp/article[position()=last()]/title",
    "count(/dblp/article/author) + count(/dblp/inproceedings/author) + count(/dblp/article/title)",
    "/dblp/*[author and year]/title",
    "/dblp/article[count(author)=2]/@key",
    "string(/dblp/article[1]/title)",
    "/dblp/article[year='1991' or year='1992' or year='1993']/@key",
    "/dblp/inproceedings[position() < 5]/title",
    "/dblp/child::*/child::title/parent::*/child::author",
    "boolean(/dblp/article) and boolean(/dblp/inproceedings)",
    "/dblp/article[last()]/preceding-sibling::article[1]/title",
    "/dblp/inproceedings[author][title][year]/@key | /dblp/article[author][title][year]/@key \
     | /dblp/inproceedings[author][year]/title | /dblp/article[author][year]/title \
     | /dblp/inproceedings[title]/year | /dblp/article[title]/year",
];

/// The experiment B8 gate queries: the Fig. 10 rows whose inner-path
/// memos have no key reuse (every article is a distinct memo key), so
/// the always-on §4 improvements pay memo bookkeeping for nothing and
/// the cost-based optimizer's drop/fuse decisions are a measurable win.
/// Shared by `bench/bin/optimizer` (which pins the baseline) and the
/// `regress` gate (which re-measures it).
pub const OPTIMIZER_GATE_QUERIES: [&str; 3] = [
    "/dblp/article[count(author)=4]/@key",
    "/dblp/article[year='1991']/@key",
    "/dblp/*[author='Guido Moerkotte']/@key",
];

/// Median warm-plan latency of `runs` session evaluations: the first,
/// unmeasured, call compiles into the engine's plan cache, so the timed
/// samples compare the chosen plans rather than compile cost.
pub fn warm_session_time(
    session: &natix::Session,
    store: &dyn XmlStore,
    query: &str,
    runs: usize,
) -> Duration {
    warm_session_times(&[session], store, query, runs)[0]
}

/// [`warm_session_time`] over several sessions at once, round-robin: one
/// sample per session per round, so clock-frequency drift and cache
/// warmth land on every configuration equally instead of biasing
/// whichever was timed last. Returns one median per session.
pub fn warm_session_times(
    sessions: &[&natix::Session],
    store: &dyn XmlStore,
    query: &str,
    runs: usize,
) -> Vec<Duration> {
    for s in sessions {
        std::hint::black_box(s.evaluate(store, query).expect("warm query"));
    }
    let mut samples = vec![Vec::with_capacity(runs.max(1)); sessions.len()];
    for _ in 0..runs.max(1) {
        for (s, out) in sessions.iter().zip(samples.iter_mut()) {
            let t0 = Instant::now();
            std::hint::black_box(s.evaluate(store, query).expect("query"));
            out.push(t0.elapsed());
        }
    }
    samples
        .into_iter()
        .map(|mut v| {
            v.sort();
            v[v.len() / 2]
        })
        .collect()
}

/// Geometric-mean warm-plan speedup of the cost-based optimizer over
/// the always-on improvements on [`OPTIMIZER_GATE_QUERIES`]. Both sides
/// run on the same machine in the same process, so the ratio needs no
/// calibration workload.
pub fn optimizer_gate_speedup(records: usize, seed: u64, runs: usize) -> f64 {
    let engine = natix::Engine::with_config(natix::EngineConfig::default(), None);
    let doc = engine
        .register_document("dblp", natix::Document::Arena(dblp_document_seeded(records, seed)));
    let improved = engine.session();
    let cost = engine.session().with_options(TranslateOptions::cost_based());
    let mut log_sum = 0.0;
    for q in OPTIMIZER_GATE_QUERIES {
        let times = warm_session_times(&[&improved, &cost], doc.store(), q, runs);
        log_sum += (times[0].as_secs_f64() / times[1].as_secs_f64()).ln();
    }
    (log_sum / OPTIMIZER_GATE_QUERIES.len() as f64).exp()
}

/// Queries the B10 disk-index gate replays: three content-index probes
/// (attribute and element value predicates, point and multi-hit) and a
/// structural sweep the persisted structural index turns into
/// range-scan kernels instead of cursor walks.
pub const DISK_GATE_QUERIES: [&str; 4] = [
    "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
    "/dblp/article[year='1991']/@key",
    "/dblp/inproceedings[year='1991']/@key",
    "count(//author)",
];

/// Median warm-plan latencies of one query on the indexed and plain
/// stores, sampled round-robin so clock drift lands on both sides
/// equally. The first, unmeasured round fills the plan cache and the
/// buffer pool.
pub fn disk_pair_times(
    fast: &natix::Session,
    indexed: &dyn XmlStore,
    slow: &natix::Session,
    plain: &dyn XmlStore,
    query: &str,
    runs: usize,
) -> (Duration, Duration) {
    std::hint::black_box(fast.evaluate(indexed, query).expect("warm indexed"));
    std::hint::black_box(slow.evaluate(plain, query).expect("warm plain"));
    let mut tf = Vec::with_capacity(runs.max(1));
    let mut tp = Vec::with_capacity(runs.max(1));
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(fast.evaluate(indexed, query).expect("indexed query"));
        tf.push(t0.elapsed());
        let t0 = Instant::now();
        std::hint::black_box(slow.evaluate(plain, query).expect("plain query"));
        tp.push(t0.elapsed());
    }
    tf.sort();
    tp.sort();
    (tf[tf.len() / 2], tp[tp.len() / 2])
}

/// The B10 gate measurement: geometric-mean warm-plan speedup of an
/// indexed `DiskStore` (persisted structural + content indexes, cost-
/// based probes) over `DiskStore::open_plain` (the pre-index cursor
/// path) on [`DISK_GATE_QUERIES`]. Both sides read the same page file
/// through same-sized buffer pools in the same process, so the ratio
/// needs no calibration workload.
pub fn disk_index_gate_speedup(records: usize, seed: u64, runs: usize, buffer_pages: usize) -> f64 {
    let tmp = xmlstore::tmp::TempPath::new(".natix");
    xmlstore::diskstore::create_store_file(&dblp_document_seeded(records, seed), tmp.path())
        .expect("persist gate document");
    let engine = natix::Engine::with_config(natix::EngineConfig::default(), None);
    let indexed = engine.register_document(
        "b10-indexed",
        natix::Document::Disk(
            xmlstore::diskstore::DiskStore::open(tmp.path(), buffer_pages).expect("open indexed"),
        ),
    );
    let plain = engine.register_document(
        "b10-plain",
        natix::Document::Disk(
            xmlstore::diskstore::DiskStore::open_plain(tmp.path(), buffer_pages)
                .expect("open plain"),
        ),
    );
    let fast = engine.session().with_options(TranslateOptions::cost_based());
    let slow = engine.session().with_options(TranslateOptions::improved());
    let mut log_sum = 0.0;
    for q in DISK_GATE_QUERIES {
        let (tf, tp) = disk_pair_times(&fast, indexed.store(), &slow, plain.store(), q, runs);
        log_sum += (tp.as_secs_f64() / tf.as_secs_f64().max(f64::EPSILON)).ln();
    }
    (log_sum / DISK_GATE_QUERIES.len() as f64).exp()
}

/// Time one B9 update batch: append `ops` publication records (an
/// element with a `key` attribute and a `title` child with text) under
/// the store's current repair mode, then remove them again so the next
/// sample sees the same document. Append and remove both splice the
/// structural index, so the sample covers insert- and delete-side
/// repair.
pub fn update_batch_time(store: &mut ArenaStore, ops: usize) -> Duration {
    let dblp = store.first_child(store.root()).expect("dblp root element");
    let t0 = Instant::now();
    let mut added = Vec::with_capacity(ops);
    for i in 0..ops {
        let e = store.append_element(dblp, "article").expect("append record");
        store.set_attribute(e, "key", &format!("bench/b9/{i}")).expect("key attr");
        let t = store.append_element(e, "title").expect("title child");
        store.append_text(t, "Incremental Repair Probe").expect("title text");
        added.push(e);
    }
    for e in added {
        store.remove_subtree(e).expect("remove record");
    }
    t0.elapsed()
}

/// Median over `runs` of [`update_batch_time`] under `mode`.
pub fn update_batch_median(
    store: &mut ArenaStore,
    mode: xmlstore::RepairMode,
    ops: usize,
    runs: usize,
) -> Duration {
    store.set_repair_mode(mode);
    let mut samples: Vec<Duration> =
        (0..runs.max(1)).map(|_| update_batch_time(store, ops)).collect();
    store.set_repair_mode(xmlstore::RepairMode::Incremental);
    samples.sort();
    samples[samples.len() / 2]
}

/// The B9 gate measurement: how many times faster a small update batch
/// commits with incremental index repair than with the full-`renumber()`
/// fallback, on a `records`-record DBLP document. Both sides run on the
/// same store in the same process, so the ratio needs no calibration
/// workload.
pub fn update_gate_speedup(records: usize, seed: u64, ops: usize, runs: usize) -> f64 {
    let mut store = dblp_document_seeded(records, seed);
    // Warm both paths once outside the measurement.
    update_batch_median(&mut store, xmlstore::RepairMode::Incremental, ops, 1);
    update_batch_median(&mut store, xmlstore::RepairMode::FullRenumber, ops, 1);
    let inc = update_batch_median(&mut store, xmlstore::RepairMode::Incremental, ops, runs);
    let full = update_batch_median(&mut store, xmlstore::RepairMode::FullRenumber, ops, runs);
    full.as_secs_f64() / inc.as_secs_f64().max(f64::EPSILON)
}

/// The paper's small documents: 2000–8000 elements (fanout 6).
pub const SMALL_SIZES: [usize; 4] = [2000, 4000, 6000, 8000];

/// The paper's large documents: 10000–80000 elements (fanout 10, depth 5).
pub const LARGE_SIZES: [usize; 4] = [10_000, 20_000, 40_000, 80_000];

/// Build a paper-configuration document of `elements` elements.
pub fn tree_document(elements: usize) -> ArenaStore {
    if elements <= 8000 {
        generate_tree(TreeParams::small(elements))
    } else {
        generate_tree(TreeParams::large(elements))
    }
}

/// The default document-generator seed shared by every harness (keeps
/// DBLP documents byte-identical across bins and runs).
pub const DEFAULT_SEED: u64 = 42;

/// Build the synthetic DBLP document with the default seed.
pub fn dblp_document(records: usize) -> ArenaStore {
    dblp_document_seeded(records, DEFAULT_SEED)
}

/// Build the synthetic DBLP document with an explicit seed (`--seed`).
pub fn dblp_document_seeded(records: usize, seed: u64) -> ArenaStore {
    generate_dblp(DblpParams { records, seed })
}

/// The evaluators compared by the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evaluator {
    /// Algebraic engine, improved translation (≙ Natix).
    NatixImproved,
    /// Algebraic engine, canonical translation (§3 only).
    NatixCanonical,
    /// Algebraic engine, improved + property pruning (beyond-paper
    /// extension E9).
    NatixExtended,
    /// Algebraic engine with custom options (ablations).
    NatixWith(TranslateOptions),
    /// Context-list main-memory interpreter (≙ Xalan).
    ContextList,
    /// Naive interpreter without intermediate dedup (≙ worst-case
    /// pre-Gottlob evaluation).
    Naive,
}

impl Evaluator {
    /// Short display label used in harness output.
    pub fn label(&self) -> &'static str {
        match self {
            Evaluator::NatixImproved => "natix",
            Evaluator::NatixCanonical => "natix-canonical",
            Evaluator::NatixExtended => "natix-extended",
            Evaluator::NatixWith(_) => "natix-custom",
            Evaluator::ContextList => "interp",
            Evaluator::Naive => "naive",
        }
    }

    /// Translation options, for the algebraic evaluators (the
    /// interpreters have none and cannot be operator-profiled).
    pub fn options(&self) -> Option<TranslateOptions> {
        match self {
            Evaluator::NatixImproved => Some(TranslateOptions::improved()),
            Evaluator::NatixCanonical => Some(TranslateOptions::canonical()),
            Evaluator::NatixExtended => Some(TranslateOptions::extended()),
            Evaluator::NatixWith(opts) => Some(*opts),
            Evaluator::ContextList | Evaluator::Naive => None,
        }
    }

    /// Compile + execute (the paper's measured quantity excludes document
    /// loading but includes compilation, §6.2).
    pub fn run(&self, store: &dyn XmlStore, query: &str) -> algebra::QueryOutput {
        match self {
            Evaluator::NatixImproved => {
                nqe::evaluate(store, query, &TranslateOptions::improved()).expect("evaluate")
            }
            Evaluator::NatixCanonical => {
                nqe::evaluate(store, query, &TranslateOptions::canonical()).expect("evaluate")
            }
            Evaluator::NatixExtended => {
                nqe::evaluate(store, query, &TranslateOptions::extended()).expect("evaluate")
            }
            Evaluator::NatixWith(opts) => nqe::evaluate(store, query, opts).expect("evaluate"),
            Evaluator::ContextList => Interpreter::new(store, InterpOptions::context_list())
                .evaluate(query, store.root())
                .expect("evaluate"),
            Evaluator::Naive => Interpreter::new(store, InterpOptions::naive())
                .evaluate(query, store.root())
                .expect("evaluate"),
        }
    }
}

/// Compile + execute under a resource budget. Only the algebraic
/// evaluators are governed (the interpreters have no governor hooks);
/// returns `None` for them.
pub fn run_governed(
    ev: Evaluator,
    store: &dyn XmlStore,
    query: &str,
    limits: &ResourceLimits,
) -> Option<Result<algebra::QueryOutput, String>> {
    let opts = ev.options()?;
    Some(
        nqe::evaluate_governed(store, query, &opts, limits, store.root(), &HashMap::new())
            .map_err(|e| e.to_string()),
    )
}

/// Median wall-clock time of `runs` evaluations.
pub fn time_query(ev: Evaluator, store: &dyn XmlStore, query: &str, runs: usize) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let out = ev.run(store, query);
        samples.push(t0.elapsed());
        std::hint::black_box(out);
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Render a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A duration in fractional milliseconds (for JSON exports).
pub fn ms_f(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One instrumented evaluation: the full EXPLAIN ANALYZE report (compile
/// phases, per-operator times/counters/gauges, result shape) as JSON.
/// Runs the query once more with profiling on, so call it outside the
/// timed samples.
pub fn profile_report(ev: Evaluator, store: &dyn XmlStore, query: &str) -> Option<Json> {
    let opts = ev.options()?;
    let (_, report) =
        nqe::explain_analyze(store, query, &opts, store.root(), &HashMap::new()).expect("analyze");
    Some(report.to_json())
}

/// The value following `flag` in `args` (e.g. `--json out.json`).
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// The `--seed` argument, defaulting to [`DEFAULT_SEED`].
pub fn arg_seed(args: &[String]) -> u64 {
    arg_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// The machine/build context a result set was measured under, stamped
/// with the document-generator seed: timings from different core counts,
/// page sizes or build profiles (or different generated documents) are
/// not comparable, and the JSON should say so machine-readably.
pub fn host_json(seed: u64) -> Json {
    Json::obj(vec![
        (
            "cores",
            Json::Num(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) as f64),
        ),
        ("page_size", Json::Num(xmlstore::page::PAGE_SIZE as f64)),
        (
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_owned(),
            ),
        ),
        ("seed", Json::Num(seed as f64)),
    ])
}

/// Write a bench results file:
/// `{"bench": <name>, "host": {...}, "results": [...]}`, pretty-printed.
/// `host` carries core count, page size, build profile and the generator
/// seed (see [`host_json`]). Each result element is harness-specific but
/// always carries the query and, for algebraic evaluators, a `profile`
/// field with the per-operator EXPLAIN ANALYZE export.
pub fn write_results_json(path: &str, bench: &str, seed: u64, results: Vec<Json>) {
    let doc = Json::obj(vec![
        ("bench", Json::Str(bench.to_owned())),
        ("host", host_json(seed)),
        ("results", Json::Arr(results)),
    ]);
    match std::fs::write(path, doc.pretty()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiment_queries_run_on_small_documents() {
        let tree = tree_document(60);
        for (_, q) in FIG5_QUERIES {
            let a = Evaluator::NatixImproved.run(&tree, q);
            let b = Evaluator::ContextList.run(&tree, q);
            assert_eq!(a, b, "{q}");
        }
        let dblp = dblp_document(80);
        for q in FIG10_QUERIES {
            let a = Evaluator::NatixImproved.run(&dblp, q);
            let b = Evaluator::ContextList.run(&dblp, q);
            assert_eq!(a, b, "{q}");
        }
    }

    #[test]
    fn timing_returns_nonzero() {
        let tree = tree_document(50);
        let d = time_query(Evaluator::NatixImproved, &tree, "count(//*)", 3);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn profile_report_covers_algebraic_evaluators_only() {
        let tree = tree_document(50);
        let report = profile_report(Evaluator::NatixImproved, &tree, "/xdoc/child::*").unwrap();
        let ops = report.get("operators").and_then(Json::as_arr).unwrap();
        assert!(!ops.is_empty());
        assert!(report.get("phases").is_some());
        assert!(profile_report(Evaluator::Naive, &tree, "/xdoc").is_none());
        assert!(profile_report(Evaluator::ContextList, &tree, "/xdoc").is_none());
    }
}
