//! Experiment E7 — the Gottlob exponential blow-up family: queries
//! `//b/parent::a/child::b/parent::a/…` multiply context duplicates with
//! every `parent/child` pair. A naive evaluator (no intermediate dedup)
//! takes exponential time; the algebraic plans with pushed-down duplicate
//! elimination stay polynomial.
//!
//! Prints: `pairs, naive_contexts, naive_ms, natix_ms, canonical_ms`.
//!
//! With `--json <path>` the harness additionally writes a results file
//! with per-query operator profiles of the improved algebraic run (the
//! Π^D `dup_dropped` gauges show the pushdown soaking up the blow-up).
//!
//! ```sh
//! cargo run --release -p bench --bin blowup [--width N] [--max-pairs N] [--json out.json]
//! ```

use std::time::Instant;

use bench::{arg_value, ms, ms_f, profile_report, run_governed, write_results_json, Evaluator};
use compiler::ResourceLimits;
use nqe::Json;
use xmlstore::ArenaBuilder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let width = get("--width", 4);
    let max_pairs = get("--max-pairs", 9);
    let json_path = arg_value(&args, "--json");
    let mut results: Vec<Json> = Vec::new();

    // <r><a><b/>×width</a></r> — each parent::a/child::b pair multiplies
    // the naive context list by `width`.
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    b.start_element("a");
    for _ in 0..width {
        b.start_element("b");
        b.end_element();
    }
    b.end_element();
    b.end_element();
    let store = b.finish();

    println!("# E7: exponential blow-up family (width {width})");
    println!("pairs,naive_contexts,naive_ms,natix_ms,canonical_ms");
    for pairs in 1..=max_pairs {
        let mut q = String::from("/r/a/b");
        for _ in 0..pairs {
            q.push_str("/parent::a/child::b");
        }
        let growth = interp::naive_context_growth(&store, &q).expect("growth");
        let contexts = *growth.last().expect("non-empty");

        let t0 = Instant::now();
        std::hint::black_box(Evaluator::Naive.run(&store, &q));
        let naive = t0.elapsed();

        let t0 = Instant::now();
        std::hint::black_box(Evaluator::NatixImproved.run(&store, &q));
        let natix = t0.elapsed();

        let t0 = Instant::now();
        std::hint::black_box(Evaluator::NatixCanonical.run(&store, &q));
        let canonical = t0.elapsed();

        println!("{pairs},{contexts},{},{},{}", ms(naive), ms(natix), ms(canonical));
        if json_path.is_some() {
            let profile = profile_report(Evaluator::NatixImproved, &store, &q).expect("profile");
            results.push(Json::obj(vec![
                ("pairs", Json::Num(pairs as f64)),
                ("query", Json::Str(q.clone())),
                ("naive_contexts", Json::Num(contexts as f64)),
                ("naive_ms", Json::Num(ms_f(naive))),
                ("natix_ms", Json::Num(ms_f(natix))),
                ("canonical_ms", Json::Num(ms_f(canonical))),
                ("profile", profile),
            ]));
        }
    }
    println!("# naive_contexts grows as width^pairs; natix stays flat (dedup pushdown)");

    // Governed epilogue 1: the same family with a positional predicate on
    // the last step. The canonical plan re-materializes the step's Tmp^cs
    // group once per duplicate context — width^pairs times — so a budget
    // on materialized tuples trips the resource governor, while the
    // improved plan (dedup pushed below the positional machinery)
    // materializes one group and finishes inside the same budget.
    let cap: u64 = 16 * 1024 * 1024;
    let limits = ResourceLimits::unlimited().with_max_memory(cap).with_max_tuples(500_000);
    let mut q = String::from("/r/a/b");
    for _ in 0..max_pairs {
        q.push_str("/parent::a/child::b");
    }
    q.push_str("[position()=last()]");
    println!(
        "# governed rerun ({} MiB + 500k materialized-tuple budget): …[position()=last()]",
        cap >> 20
    );
    for ev in [Evaluator::NatixImproved, Evaluator::NatixCanonical] {
        let t0 = Instant::now();
        let outcome = run_governed(ev, &store, &q, &limits).expect("algebraic evaluator");
        let elapsed = t0.elapsed();
        match outcome {
            Ok(_) => println!("#   {}: completed in {} ms", ev.label(), ms(elapsed)),
            Err(e) => println!("#   {}: stopped after {} ms — {e}", ev.label(), ms(elapsed)),
        }
    }

    // Governed epilogue 2: scale the blow-up document wide instead of deep.
    // The positional predicate makes Tmp^cs buffer all `width` children of
    // one context, so a 16 MiB cap turns what used to be unbounded
    // allocation into a typed MemoryExceeded error.
    let wide = get("--wide", 200_000);
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    b.start_element("a");
    for _ in 0..wide {
        b.start_element("b");
        b.end_element();
    }
    b.end_element();
    b.end_element();
    let wide_store = b.finish();
    let mem_only = ResourceLimits::unlimited().with_max_memory(cap);
    println!(
        "# wide document ({wide} children) under a {} MiB cap: /r/a/b[position()=last()]",
        cap >> 20
    );
    for ev in [Evaluator::NatixImproved, Evaluator::NatixCanonical] {
        let outcome = run_governed(ev, &wide_store, "/r/a/b[position()=last()]", &mem_only)
            .expect("algebraic");
        match outcome {
            Ok(_) => println!("#   {}: completed", ev.label()),
            Err(e) => println!("#   {}: stopped — {e}", ev.label()),
        }
    }

    if let Some(path) = json_path {
        write_results_json(&path, "blowup", bench::arg_seed(&args), results);
    }
}
