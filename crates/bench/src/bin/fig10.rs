//! Experiment E5 — paper Fig. 10: the 13 DBLP queries, interpreter
//! (≙ Xalan) vs algebraic engine (≙ Natix). Prints the same table rows as
//! the paper: `path, xalan_ms, natix_ms, result_cardinality`.
//!
//! ```sh
//! cargo run --release -p bench --bin fig10 [--records N] [--runs N]
//! ```

use bench::{dblp_document, ms, time_query, Evaluator, FIG10_QUERIES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let records = get("--records", 50_000);
    let runs = get("--runs", 3);

    eprintln!("generating synthetic DBLP with {records} records…");
    let doc = dblp_document(records);

    println!("# Paper Fig. 10: queries against (synthetic) DBLP, times in ms");
    println!("# {records} records, {runs} runs per cell (median)");
    println!("{:<75} {:>12} {:>12} {:>8}", "path", "interp(Xalan)", "natix", "|result|");
    for q in FIG10_QUERIES {
        let interp = time_query(Evaluator::ContextList, &doc, q, runs);
        let natix = time_query(Evaluator::NatixImproved, &doc, q, runs);
        let out = Evaluator::NatixImproved.run(&doc, q);
        let cardinality = out.as_nodes().map(|n| n.len()).unwrap_or(0);
        println!("{q:<75} {:>12} {:>12} {cardinality:>8}", ms(interp), ms(natix));
    }
}
