//! Experiment E5 — paper Fig. 10: the 13 DBLP queries, interpreter
//! (≙ Xalan) vs algebraic engine (≙ Natix). Prints the same table rows as
//! the paper: `path, xalan_ms, natix_ms, result_cardinality`.
//!
//! ```sh
//! cargo run --release -p bench --bin fig10 \
//!     [--records N] [--runs N] [--seed N] [--json PATH]
//! ```

use bench::{
    arg_seed, arg_value, dblp_document_seeded, ms, ms_f, profile_report, time_query,
    write_results_json, Evaluator, FIG10_QUERIES,
};
use nqe::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        arg_value(&args, flag).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let records = get("--records", 50_000);
    let runs = get("--runs", 3);
    let seed = arg_seed(&args);
    let json_path = arg_value(&args, "--json");

    eprintln!("generating synthetic DBLP with {records} records…");
    let doc = dblp_document_seeded(records, seed);

    println!("# Paper Fig. 10: queries against (synthetic) DBLP, times in ms");
    println!("# {records} records, {runs} runs per cell (median)");
    println!("{:<75} {:>12} {:>12} {:>8}", "path", "interp(Xalan)", "natix", "|result|");
    let mut results = Vec::new();
    for q in FIG10_QUERIES {
        let interp = time_query(Evaluator::ContextList, &doc, q, runs);
        let natix = time_query(Evaluator::NatixImproved, &doc, q, runs);
        let out = Evaluator::NatixImproved.run(&doc, q);
        let cardinality = out.as_nodes().map(|n| n.len()).unwrap_or(0);
        println!("{q:<75} {:>12} {:>12} {cardinality:>8}", ms(interp), ms(natix));
        if json_path.is_some() {
            results.push(Json::obj(vec![
                ("query", Json::Str(q.to_owned())),
                ("records", Json::Num(records as f64)),
                ("interp_ms", Json::Num(ms_f(interp))),
                ("natix_ms", Json::Num(ms_f(natix))),
                ("cardinality", Json::Num(cardinality as f64)),
                (
                    "profile",
                    profile_report(Evaluator::NatixImproved, &doc, q).unwrap_or(Json::Null),
                ),
            ]));
        }
    }
    if let Some(path) = json_path {
        write_results_json(&path, "fig10", seed, results);
    }
}
