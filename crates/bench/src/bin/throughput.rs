//! Experiment B7 — service throughput: queries/sec of the shared-engine
//! query service at 1–64 concurrent clients, cold cache (every query
//! compiles) vs warm cache (plans served from the compiled-plan cache).
//!
//! ```sh
//! cargo run --release -p bench --bin throughput -- --json results/BENCH_7.json
//! cargo run --release -p bench --bin throughput -- --quick          # CI smoke
//! cargo run --release -p bench --bin throughput -- --update-baseline
//! ```
//!
//! Each client is a thread with its own [`Session`] over one shared
//! [`Engine`], replaying [`SERVICE_CORPUS`] (compile-heavy queries on a
//! small DBLP document — see the corpus docs) `--reps` times. Cold runs
//! disable the cache (`cache_entries = 0`); warm runs pre-warm it with
//! one corpus pass, so every measured query is a cache hit.
//!
//! Besides per-client-count qps the harness records `warm_p50_nanos`
//! (single-client warm per-query latency p50) and `calibrate_p50_nanos`
//! (the regress harness's machine-speed unit: `count(//*)` on the
//! 2000-element tree), which `bench/bin/regress --check` uses to gate
//! the warm-cache latency against `results/BENCH_7_baseline.json`
//! calibration-normalised.

use std::sync::Arc;
use std::time::Instant;

use bench::{arg_seed, arg_value, dblp_document_seeded, host_json, tree_document, SERVICE_CORPUS};
use natix::{Document, Engine, EngineConfig, Session};
use nqe::Json;
use telemetry::Histogram;

/// DBLP records in the service document: small enough that execution is
/// cheap and compilation dominates (the quantity the cache removes).
const RECORDS: usize = 12;

/// Default corpus replays per client per measurement.
const REPS: usize = 30;

/// Baseline location for the regress warm-cache gate.
const BASELINE: &str = "results/BENCH_7_baseline.json";

/// Build the shared engine (cache on or off) with the corpus document
/// registered.
fn engine(seed: u64, cache: bool) -> (Arc<Engine>, Arc<Document>) {
    let config = EngineConfig {
        cache_entries: if cache { 256 } else { 0 },
        ..EngineConfig::default()
    };
    let eng = Engine::with_config(config, None);
    let doc = eng.register_document("dblp", Document::Arena(dblp_document_seeded(RECORDS, seed)));
    (eng, doc)
}

/// Replay the corpus `reps` times on one session.
fn replay(session: &Session, doc: &Document, reps: usize) {
    for _ in 0..reps {
        for q in SERVICE_CORPUS {
            std::hint::black_box(session.evaluate(doc.store(), q).expect("corpus query"));
        }
    }
}

/// Queries/sec of `clients` concurrent sessions over one shared engine.
fn qps(seed: u64, clients: usize, reps: usize, warm: bool) -> f64 {
    let (eng, doc) = engine(seed, warm);
    if warm {
        // One pre-warming pass: every measured query hits the cache.
        replay(&eng.session(), &doc, 1);
    }
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let session = eng.session();
            let doc = &doc;
            scope.spawn(move || replay(&session, doc, reps));
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    (clients * reps * SERVICE_CORPUS.len()) as f64 / elapsed
}

/// Single-client per-query latency p50 (nanos), warm cache.
fn warm_p50(seed: u64, reps: usize) -> u64 {
    let (eng, doc) = engine(seed, true);
    let session = eng.session();
    replay(&session, &doc, 1);
    let h = Histogram::new();
    for _ in 0..reps {
        for q in SERVICE_CORPUS {
            let t0 = Instant::now();
            std::hint::black_box(session.evaluate(doc.store(), q).expect("corpus query"));
            h.record_nanos(t0.elapsed());
        }
    }
    h.summary().p50
}

/// The regress harness's calibration unit, re-measured here so the
/// baseline file is self-contained: `count(//*)` on the 2000-element
/// tree, p50 of 21 runs.
fn calibrate_p50() -> u64 {
    let tree = tree_document(2000);
    let opts = compiler::TranslateOptions::improved();
    std::hint::black_box(nqe::evaluate(&tree, "count(//*)", &opts).expect("calibrate"));
    let h = Histogram::new();
    for _ in 0..21 {
        let t0 = Instant::now();
        std::hint::black_box(nqe::evaluate(&tree, "count(//*)", &opts).expect("calibrate"));
        h.record_nanos(t0.elapsed());
    }
    h.summary().p50
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_seed(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let update = args.iter().any(|a| a == "--update-baseline");
    let reps = arg_value(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(if quick {
        8
    } else {
        REPS
    });
    let clients: Vec<usize> = match arg_value(&args, "--clients") {
        Some(list) => list.split(',').filter_map(|v| v.parse().ok()).collect(),
        None if quick => vec![1, 8, 16],
        None => vec![1, 2, 4, 8, 16, 32, 64],
    };

    eprintln!(
        "B7 service throughput: {} corpus queries × {reps} reps, dblp:{RECORDS} (seed {seed})",
        SERVICE_CORPUS.len()
    );
    println!("{:>8} {:>12} {:>12} {:>8}", "clients", "cold_qps", "warm_qps", "ratio");
    let rounds: usize = arg_value(&args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 3 } else { 5 });
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let mut rows = Vec::new();
    for &n in &clients {
        // Interleave cold/warm rounds so machine-speed drift (this may
        // run on a shared host) hits both sides alike, and gate on the
        // medians.
        let mut cold_rounds = Vec::new();
        let mut warm_rounds = Vec::new();
        for _ in 0..rounds {
            cold_rounds.push(qps(seed, n, reps, false));
            warm_rounds.push(qps(seed, n, reps, true));
        }
        let cold = median(cold_rounds);
        let warm = median(warm_rounds);
        let ratio = warm / cold;
        println!("{n:>8} {cold:>12.0} {warm:>12.0} {ratio:>7.2}×");
        rows.push(Json::obj(vec![
            ("clients", Json::Num(n as f64)),
            ("cold_qps", Json::Num(cold)),
            ("warm_qps", Json::Num(warm)),
            ("warm_over_cold", Json::Num(ratio)),
        ]));
    }
    let warm_p50 = warm_p50(seed, reps);
    let cal_p50 = calibrate_p50();
    eprintln!("warm p50 {warm_p50}ns, calibrate p50 {cal_p50}ns");

    let doc = Json::obj(vec![
        ("bench", Json::Str("throughput".to_owned())),
        ("host", host_json(seed)),
        ("records", Json::Num(RECORDS as f64)),
        ("reps", Json::Num(reps as f64)),
        ("warm_p50_nanos", Json::Num(warm_p50 as f64)),
        ("calibrate_p50_nanos", Json::Num(cal_p50 as f64)),
        ("results", Json::Arr(rows)),
    ]);
    if let Some(path) = arg_value(&args, "--json") {
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if update {
        match std::fs::write(BASELINE, doc.pretty()) {
            Ok(()) => eprintln!("baseline updated: {BASELINE}"),
            Err(e) => {
                eprintln!("error: {BASELINE}: {e}");
                std::process::exit(2);
            }
        }
    }
}
