//! Experiment E10 — storage substrate: the same queries against the
//! in-memory arena store and the paged disk store under different buffer
//! sizes, with buffer-manager statistics. This exercises the paper's
//! "evaluate directly on the persistent representation through the page
//! buffer" property (§5.2.2) and shows the cost of page faults.
//!
//! ```sh
//! cargo run --release -p bench --bin storage \
//!     [--elems N] [--runs N] [--seed N] [--json PATH]
//! ```

use bench::{arg_seed, arg_value, ms, ms_f, tree_document, write_results_json};
use compiler::TranslateOptions;
use nqe::Json;
use xmlstore::diskstore::DiskStore;
use xmlstore::tmp::TempPath;
use xmlstore::XmlStore;

fn median_time(store: &dyn XmlStore, q: &str, runs: usize) -> std::time::Duration {
    let mut samples = Vec::new();
    for _ in 0..runs.max(1) {
        let t0 = std::time::Instant::now();
        std::hint::black_box(
            nqe::evaluate(store, q, &TranslateOptions::improved()).expect("evaluate"),
        );
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let elems = get("--elems", 20_000);
    let runs = get("--runs", 3);
    let seed = arg_seed(&args);
    let json_path = arg_value(&args, "--json");

    eprintln!("generating document with {elems} elements…");
    let arena = tree_document(elems);
    let path = TempPath::new(".natix");
    xmlstore::diskstore::create_store_file(&arena, path.path()).expect("store file");
    let file_kib = std::fs::metadata(path.path()).expect("metadata").len() / 1024;

    let queries = [
        "count(/xdoc/descendant::*)",
        "/child::xdoc/descendant::*/ancestor::*/attribute::id",
        "/xdoc/*/*[position() = last()]/@id",
        "string(//*[@id='999'])",
    ];

    println!("# E10: arena vs paged disk store ({elems} elements, {file_kib} KiB page file)");
    println!("# times in ms (median of {runs}); buffer stats accumulated per store instance");
    let mut results = Vec::new();
    for q in queries {
        println!("\nquery: {q}");
        let t = median_time(&arena, q, runs);
        println!("  arena                 {:>10} ms", ms(t));
        let arena_ms = ms_f(t);
        let mut disk_rows = Vec::new();
        for frames in [8usize, 64, 4096] {
            let disk = DiskStore::open(path.path(), frames).expect("open disk store");
            let t = median_time(&disk, q, runs);
            let s = disk.buffer_stats();
            let hit_rate = s.hits as f64 / (s.hits + s.misses).max(1) as f64 * 100.0;
            println!(
                "  disk {frames:>5} frames    {:>10} ms   ({:.2}% hit rate, {} evictions)",
                ms(t),
                hit_rate,
                s.evictions
            );
            disk_rows.push(Json::obj(vec![
                ("frames", Json::Num(frames as f64)),
                ("ms", Json::Num(ms_f(t))),
                ("hits", Json::Num(s.hits as f64)),
                ("misses", Json::Num(s.misses as f64)),
                ("evictions", Json::Num(s.evictions as f64)),
                ("hit_rate_pct", Json::Num(hit_rate)),
            ]));
        }
        if json_path.is_some() {
            results.push(Json::obj(vec![
                ("query", Json::Str(q.to_owned())),
                ("elems", Json::Num(elems as f64)),
                ("file_kib", Json::Num(file_kib as f64)),
                ("arena_ms", Json::Num(arena_ms)),
                ("disk", Json::Arr(disk_rows)),
            ]));
        }
    }
    if let Some(path) = json_path {
        write_results_json(&path, "storage", seed, results);
    }
}
