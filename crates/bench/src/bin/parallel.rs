//! Experiment E10 — parallel scaling (DESIGN.md §14): wall-clock time of
//! Exchange-parallelised queries at 1/2/4/8 worker threads over the
//! fig6_9 tree documents, the synthetic DBLP document and a wide
//! blow-up-family document. The threads=1 baseline takes the exact serial
//! code path (no Exchange in the plan), so the ratios measure the
//! Exchange layer itself.
//!
//! Prints: `workload, threads, ms, speedup` (speedup vs the serial run on
//! the same workload). With `--json <path>` the harness writes a results
//! file carrying per workload×threads the timing, the speedup and the
//! `parallel` section of an EXPLAIN ANALYZE run (workers, partitions,
//! per-worker tuples, merge time).
//!
//! Speedup is bounded by the physical core count: the results file
//! records `cores` so a single-core CI container's flat ratios are
//! interpretable.
//!
//! ```sh
//! cargo run --release -p bench --bin parallel [--quick] [--runs N] [--json out.json]
//! ```

use bench::{
    arg_seed, arg_value, dblp_document_seeded, ms, ms_f, time_query, tree_document,
    write_results_json, Evaluator,
};
use compiler::TranslateOptions;
use nqe::Json;
use std::collections::HashMap;
use xmlstore::{ArenaBuilder, ArenaStore, XmlStore};

/// Thread counts swept per workload (1 = serial baseline).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A wide Gottlob-family document: `<r><a><b/>×width</a>…</r>` with
/// `groups` sibling `a` groups — duplicate-heavy contexts whose
/// per-tuple predicate evaluation is what Exchange fans out.
fn blowup_document(groups: usize, width: usize) -> ArenaStore {
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    for _ in 0..groups {
        b.start_element("a");
        for _ in 0..width {
            b.start_element("b");
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();
    b.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let quick = args.iter().any(|a| a == "--quick");
    let runs = get("--runs", if quick { 1 } else { 5 });
    let json_path = arg_value(&args, "--json");
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut results: Vec<Json> = Vec::new();

    let tree_elems = if quick { 2000 } else { 20_000 };
    let dblp_records = if quick { 500 } else { 10_000 };
    let (groups, width) = if quick { (40, 40) } else { (200, 200) };

    eprintln!(
        "generating documents (tree {tree_elems}, dblp {dblp_records}, blowup {groups}×{width})…"
    );
    let tree = tree_document(tree_elems);
    let seed = arg_seed(&args);
    let dblp = dblp_document_seeded(dblp_records, seed);
    let blowup = blowup_document(groups, width);

    // Workloads where the planner inserts an Exchange: nested recursive
    // axes (fig6_9 q1/q3/q4) and per-tuple predicate plans (dblp filter,
    // blow-up sibling counting).
    let workloads: [(&str, &dyn XmlStore, usize, &str); 5] = [
        (
            "fig6_9/q1",
            &tree,
            tree_elems,
            "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
        ),
        (
            "fig6_9/q3",
            &tree,
            tree_elems,
            "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id",
        ),
        (
            "fig6_9/q4",
            &tree,
            tree_elems,
            "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
        ),
        ("dblp/filter", &dblp, dblp_records, "/dblp/*[author='Guido Moerkotte']/@key"),
        (
            "blowup/pred",
            &blowup,
            groups * width,
            "//b[count(preceding-sibling::b) mod 7 = 0]/parent::a/child::b",
        ),
    ];

    println!("# Parallel scaling: Exchange fan-out at 1/2/4/8 worker threads");
    println!("# cores: {cores}; runs per point: {runs} (median); times in ms");
    println!("workload,threads,ms,speedup");
    for (name, store, elements, query) in workloads {
        let mut serial_ms = 0.0f64;
        for threads in THREADS {
            let opts = TranslateOptions::improved().with_threads(threads);
            let d = time_query(Evaluator::NatixWith(opts), store, query, runs);
            let d_ms = ms_f(d);
            if threads == 1 {
                serial_ms = d_ms;
            }
            let speedup = if d_ms > 0.0 { serial_ms / d_ms } else { 1.0 };
            println!("{name},{threads},{},{speedup:.2}", ms(d));
            if json_path.is_some() {
                // One instrumented run for the parallel section (outside
                // the timed samples).
                let (_, report) =
                    nqe::explain_analyze(store, query, &opts, store.root(), &HashMap::new())
                        .expect("analyze");
                let parallel =
                    report.to_json().get("parallel").cloned().unwrap_or(Json::Arr(Vec::new()));
                results.push(Json::obj(vec![
                    ("workload", Json::Str(name.to_owned())),
                    ("query", Json::Str(query.to_owned())),
                    ("elements", Json::Num(elements as f64)),
                    ("threads", Json::Num(threads as f64)),
                    ("cores", Json::Num(cores as f64)),
                    ("ms", Json::Num(d_ms)),
                    ("speedup", Json::Num(speedup)),
                    ("parallel", parallel),
                ]));
            }
        }
    }
    if let Some(path) = json_path {
        write_results_json(&path, "parallel", seed, results);
    }
}
