//! Experiments E1–E4 — paper Figs. 6–9: execution time of the four Fig. 5
//! queries over generated documents of growing size, for the algebraic
//! engine (Natix) and the main-memory interpreters (xsltproc/Xalan stand-
//! ins). Prints one series block per query, CSV-ish rows:
//!
//! `query, elements, natix_ms, interp_ms, naive_ms`
//!
//! With `--json <path>` the harness additionally writes a results file
//! carrying, per measured point, the timings and a per-operator
//! EXPLAIN ANALYZE profile of the algebraic run.
//!
//! ```sh
//! cargo run --release -p bench --bin fig6_9 [--runs N] [--max-elems N] [--skip-naive] [--json out.json]
//! ```

use bench::{
    arg_value, ms, ms_f, profile_report, time_query, tree_document, write_results_json, Evaluator,
    FIG5_QUERIES, LARGE_SIZES, SMALL_SIZES,
};
use nqe::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let runs = get("--runs", 3);
    let max_elems = get("--max-elems", 80_000);
    // q2 (preceding-sibling/following) is quadratic-ish for every engine;
    // cap its sweep separately so the full harness stays tractable.
    let heavy_cap = get("--heavy-cap", 20_000);
    let skip_naive = args.iter().any(|a| a == "--skip-naive");
    let json_path = arg_value(&args, "--json");
    let mut results: Vec<Json> = Vec::new();

    let sizes: Vec<usize> = SMALL_SIZES
        .iter()
        .chain(LARGE_SIZES.iter())
        .copied()
        .filter(|&s| s <= max_elems)
        .collect();

    println!("# Paper Figs. 6-9: Fig. 5 queries over generated documents");
    println!("# runs per point: {runs} (median); times in ms; compile+execute, parse excluded");
    let docs: Vec<_> = sizes
        .iter()
        .map(|&s| {
            eprintln!("generating document with {s} elements…");
            (s, tree_document(s))
        })
        .collect();

    for (name, query) in FIG5_QUERIES {
        println!("\n## figure for {name}: {query}");
        println!("query,elements,natix_ms,interp_ms,naive_ms");
        let cap = if name == "q2" { heavy_cap } else { usize::MAX };
        for (s, doc) in docs.iter().filter(|(s, _)| *s <= cap) {
            let natix = time_query(Evaluator::NatixImproved, doc, query, runs);
            let interp = time_query(Evaluator::ContextList, doc, query, runs);
            // The naive evaluator blows up on these queries exactly like
            // the paper's weakest baselines: keep it to small documents.
            let naive = if !skip_naive && *s <= 4000 {
                ms(time_query(Evaluator::Naive, doc, query, 1))
            } else {
                "-".to_owned()
            };
            println!("{name},{s},{},{},{naive}", ms(natix), ms(interp));
            if json_path.is_some() {
                let profile =
                    profile_report(Evaluator::NatixImproved, doc, query).expect("profile");
                results.push(Json::obj(vec![
                    ("name", Json::Str(name.to_owned())),
                    ("query", Json::Str(query.to_owned())),
                    ("elements", Json::Num(*s as f64)),
                    ("natix_ms", Json::Num(ms_f(natix))),
                    ("interp_ms", Json::Num(ms_f(interp))),
                    ("profile", profile),
                ]));
            }
        }
    }
    if let Some(path) = json_path {
        write_results_json(&path, "fig6_9", bench::arg_seed(&args), results);
    }
}
