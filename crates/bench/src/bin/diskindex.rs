//! Experiment B10 — persistent disk indexes: the same page file opened
//! with its persisted structural + content indexes (`DiskStore::open`,
//! cost-based probes) versus index-blind (`DiskStore::open_plain`, the
//! pre-index cursor walks), over a DBLP document sweep.
//!
//! Warm-plan measurement: each side evaluates through its own shared-
//! engine session so compilation is paid once into the plan cache, and
//! the samples are taken round-robin so clock drift lands on both sides
//! equally. An `indexed/improved` column separates the structural-index
//! effect (range-scan kernels, real statistics) from the content-index
//! effect (Υ probe annotations), and one EXPLAIN ANALYZE per query
//! confirms the probes actually fired (`index_probes` gauge).
//!
//! ```sh
//! cargo run --release -p bench --bin diskindex \
//!     [--records N,N,..] [--runs N] [--seed N] [--buffer-pages N] \
//!     [--json PATH] [--update-baseline]
//! ```
//!
//! `--update-baseline` pins the gate quantity — the geometric-mean
//! speedup of indexed-cost-based over plain-improved on
//! [`bench::DISK_GATE_QUERIES`] — which `bench/bin/regress --check`
//! re-measures and gates (hard floor 1.2×).

use bench::{
    arg_seed, arg_value, dblp_document_seeded, disk_index_gate_speedup, disk_pair_times, host_json,
    ms, ms_f, warm_session_time, DISK_GATE_QUERIES,
};
use compiler::TranslateOptions;
use natix::{Document, Engine, EngineConfig};
use nqe::Json;
use xmlstore::diskstore::{create_store_file, DiskStore};
use xmlstore::tmp::TempPath;

/// Default document sweep (DBLP records). The largest store spans tens
/// of MB of pages; pass `--records 2000000` (and a real scratch disk)
/// for the multi-GB configuration — the format and the gate are
/// identical, only the page counts grow.
const SWEEP: [usize; 3] = [20_000, 100_000, 200_000];

/// The committed gate baseline (see `bench/bin/regress`).
const BASELINE: &str = "results/BENCH_10_baseline.json";

/// Document size the gate quantity is measured at: big enough that
/// execution dominates compilation, small enough for a CI run.
const GATE_RECORDS: usize = 20_000;

/// Buffer pool size (pages) for every store in the sweep — small
/// relative to the larger documents, so the plain side really pays for
/// its full-region cursor walks.
const BUFFER_PAGES: usize = 256;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_seed(&args);
    let runs: usize = arg_value(&args, "--runs").and_then(|v| v.parse().ok()).unwrap_or(7);
    let buffer_pages: usize = arg_value(&args, "--buffer-pages")
        .and_then(|v| v.parse().ok())
        .unwrap_or(BUFFER_PAGES);
    let sweep: Vec<usize> = arg_value(&args, "--records")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| SWEEP.to_vec());
    let json_path = arg_value(&args, "--json");
    let update = args.iter().any(|a| a == "--update-baseline");

    let mut results = Vec::new();
    for &records in &sweep {
        eprintln!("generating and persisting synthetic DBLP with {records} records…");
        let tmp = TempPath::new(".natix");
        create_store_file(&dblp_document_seeded(records, seed), tmp.path()).expect("persist");
        let pages = std::fs::metadata(tmp.path()).expect("stat").len() / 8192;

        let engine = Engine::with_config(EngineConfig::default(), None);
        let indexed = engine.register_document(
            "indexed",
            Document::Disk(DiskStore::open(tmp.path(), buffer_pages).expect("open")),
        );
        let plain = engine.register_document(
            "plain",
            Document::Disk(DiskStore::open_plain(tmp.path(), buffer_pages).expect("open_plain")),
        );
        let cost = engine.session().with_options(TranslateOptions::cost_based());
        let improved = engine.session().with_options(TranslateOptions::improved());

        println!(
            "\n# B10: {records} records ({pages} pages, {buffer_pages}-page buffer), \
             warm-plan median of {runs} (ms)"
        );
        println!(
            "{:<55} {:>10} {:>10} {:>10} {:>7}  probes",
            "query", "plain", "idx/impr", "idx/cost", "speedup"
        );
        for q in DISK_GATE_QUERIES {
            let (t_cost, t_plain) =
                disk_pair_times(&cost, indexed.store(), &improved, plain.store(), q, runs);
            let t_impr = warm_session_time(&improved, indexed.store(), q, runs);
            let speedup = t_plain.as_secs_f64() / t_cost.as_secs_f64();
            // Did the probe path actually fire? (Structural-only queries
            // legitimately report 0 and win on range scans alone.)
            let (_, rep) = cost.analyze(indexed.store(), q).expect("analyze");
            let probes: u64 = rep
                .profile
                .entries
                .iter()
                .flat_map(|e| e.stats.lock().gauges.clone())
                .filter(|(k, _)| *k == "index_probes")
                .map(|(_, v)| v)
                .sum();
            println!(
                "{q:<55} {:>10} {:>10} {:>10} {:>6.2}×  {probes}",
                ms(t_plain),
                ms(t_impr),
                ms(t_cost),
                speedup
            );
            if json_path.is_some() {
                results.push(Json::obj(vec![
                    ("records", Json::Num(records as f64)),
                    ("pages", Json::Num(pages as f64)),
                    ("query", Json::Str(q.to_owned())),
                    ("plain_ms", Json::Num(ms_f(t_plain))),
                    ("indexed_improved_ms", Json::Num(ms_f(t_impr))),
                    ("indexed_cost_ms", Json::Num(ms_f(t_cost))),
                    ("speedup", Json::Num(speedup)),
                    ("index_probes", Json::Num(probes as f64)),
                ]));
            }
        }
    }

    eprintln!("measuring gate quantity at {GATE_RECORDS} records…");
    let gate = disk_index_gate_speedup(GATE_RECORDS, seed, runs.max(5), buffer_pages);
    println!(
        "\ngate: geometric-mean speedup of indexed/cost over plain/improved \
         {gate:.2}× ({GATE_RECORDS} records)"
    );

    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("bench", Json::Str("diskindex".to_owned())),
            ("host", host_json(seed)),
            ("gate_records", Json::Num(GATE_RECORDS as f64)),
            ("buffer_pages", Json::Num(buffer_pages as f64)),
            ("gate_speedup", Json::Num(gate)),
            ("results", Json::Arr(results)),
        ]);
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if update {
        // The baseline pins only the machine-independent gate ratio (the
        // per-cell timings live in BENCH_10.json).
        let base = Json::obj(vec![
            ("bench", Json::Str("diskindex".to_owned())),
            ("host", host_json(seed)),
            ("gate_records", Json::Num(GATE_RECORDS as f64)),
            ("gate_runs", Json::Num(runs as f64)),
            ("buffer_pages", Json::Num(buffer_pages as f64)),
            ("gate_speedup", Json::Num(gate)),
        ]);
        match std::fs::write(BASELINE, base.pretty()) {
            Ok(()) => eprintln!("baseline updated: {BASELINE}"),
            Err(e) => {
                eprintln!("error: {BASELINE}: {e}");
                std::process::exit(2);
            }
        }
    }
}
