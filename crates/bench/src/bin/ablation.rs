//! Experiments E6/E8 — ablations of the §4 improvements and the §5.2.5
//! smart aggregation:
//!
//! * duplicate-elimination pushdown (§4.1),
//! * stacked translation of outer paths (§4.2.1),
//! * MemoX memoization of inner paths (§4.2.2),
//! * cheap/expensive predicate splitting with χ^mat (§4.3.2),
//! * exists() early exit vs full count.
//!
//! With `--json <path>` the harness additionally writes a results file
//! with, per measured variant, the timing and a per-operator
//! EXPLAIN ANALYZE profile under that variant's own translation options
//! (so e.g. the MemoX hit/miss gauges are directly comparable between
//! the memo-on and memo-off rows).
//!
//! ```sh
//! cargo run --release -p bench --bin ablation [--elems N] [--runs N] [--json out.json]
//! ```

use std::time::Duration;

use bench::{
    arg_value, ms, ms_f, profile_report, time_query, tree_document, write_results_json, Evaluator,
};
use compiler::TranslateOptions;
use nqe::Json;
use xmlstore::{ArenaBuilder, XmlStore};

/// Record one measured variant into the JSON results (no-op when the
/// export is off).
#[allow(clippy::too_many_arguments)]
fn record(
    results: &mut Vec<Json>,
    enabled: bool,
    experiment: &str,
    variant: &str,
    query: &str,
    ev: Evaluator,
    store: &dyn XmlStore,
    t: Duration,
) {
    if !enabled {
        return;
    }
    let profile = profile_report(ev, store, query).expect("profile");
    results.push(Json::obj(vec![
        ("experiment", Json::Str(experiment.to_owned())),
        ("variant", Json::Str(variant.to_owned())),
        ("query", Json::Str(query.to_owned())),
        ("ms", Json::Num(ms_f(t))),
        ("profile", profile),
    ]));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let elems = get("--elems", 8000);
    let runs = get("--runs", 3);
    let json_path = arg_value(&args, "--json");
    let json_on = json_path.is_some();
    let mut results: Vec<Json> = Vec::new();

    eprintln!("generating document with {elems} elements…");
    let doc = tree_document(elems);

    // --- E6a: translation variants on duplicate-heavy paths -------------
    let variants: [(&str, TranslateOptions); 4] = [
        ("canonical (§3)", TranslateOptions::canonical()),
        (
            "+dedup pushdown (§4.1)",
            TranslateOptions { push_dedup: true, ..TranslateOptions::canonical() },
        ),
        (
            "+stacked outer (§4.2.1)",
            TranslateOptions {
                push_dedup: true,
                stacked_outer: true,
                ..TranslateOptions::canonical()
            },
        ),
        ("improved (§4, all)", TranslateOptions::improved()),
    ];
    println!("# E6a: translation variants, times in ms ({elems} elements, median of {runs})");
    for query in [
        "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
        "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id",
        "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
    ] {
        println!("\nquery: {query}");
        for (label, opts) in variants {
            let ev = Evaluator::NatixWith(opts);
            let t = time_query(ev, &doc, query, runs);
            println!("  {label:<28} {:>10} ms", ms(t));
            record(&mut results, json_on, "E6a", label, query, ev, &doc, t);
        }
    }

    // --- E6b: MemoX on inner paths (§4.2.2 motivating query shape) ------
    println!("\n# E6b: MemoX memoization of inner relative paths");
    let no_memo = TranslateOptions { memoize_inner: false, ..TranslateOptions::improved() };
    for memo_query in [
        // The paper's motivating shape: the same `c` elements are reached
        // from many outer contexts, so their `following::*` tails repeat.
        "/xdoc/descendant::*[count(descendant::c/following::*) > 0]/attribute::id",
        // Repeat-heavy inside the inner path itself: parent::* collapses
        // many c's onto few repeated parents, and the memoized tail is a
        // scan-heavy, low-cardinality subtree filter — replay is nearly
        // free while recomputation rescans the subtree per duplicate.
        "/xdoc/child::*[count(descendant::c/parent::*/descendant::*[@id = 'none']) = 0]/attribute::id",
    ] {
        println!("query: {memo_query}");
        let off_ev = Evaluator::NatixWith(no_memo);
        let on_ev = Evaluator::NatixWith(TranslateOptions::improved());
        let off = time_query(off_ev, &doc, memo_query, runs);
        let on = time_query(on_ev, &doc, memo_query, runs);
        println!("  memo off  {:>10} ms", ms(off));
        println!("  memo on   {:>10} ms", ms(on));
        record(&mut results, json_on, "E6b", "memo off", memo_query, off_ev, &doc, off);
        record(&mut results, json_on, "E6b", "memo on", memo_query, on_ev, &doc, on);
    }

    // --- E6b': inner paths cannot be deduped between steps (§4.2.2), so
    // duplicate contexts inside predicates multiply; MemoX is what keeps
    // them polynomial. Same width-4 family as E7, but inside a predicate.
    println!("\n# E6b': blow-up family inside a predicate (width 4)");
    let blowup_doc = {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        b.start_element("a");
        for _ in 0..4 {
            b.start_element("b");
            b.end_element();
        }
        b.end_element();
        b.end_element();
        b.finish()
    };
    println!("pairs,memo_off_ms,memo_on_ms");
    for pairs in [4usize, 6, 8] {
        let mut inner = String::from("parent::a/child::b");
        for _ in 1..pairs {
            inner.push_str("/parent::a/child::b");
        }
        let q = format!("/r/a/b[count({inner}) > 0]");
        let off_ev = Evaluator::NatixWith(no_memo);
        let on_ev = Evaluator::NatixWith(TranslateOptions::improved());
        let off = time_query(off_ev, &blowup_doc, &q, 1);
        let on = time_query(on_ev, &blowup_doc, &q, 1);
        println!("{pairs},{},{}", ms(off), ms(on));
        record(&mut results, json_on, "E6b'", "memo off", &q, off_ev, &blowup_doc, off);
        record(&mut results, json_on, "E6b'", "memo on", &q, on_ev, &blowup_doc, on);
    }

    // --- E6c: expensive-predicate splitting (§4.3.2) ---------------------
    println!("\n# E6c: cheap/expensive predicate splitting (χ^mat)");
    let split_query = "/xdoc/descendant::*/parent::*[count(descendant::*) > 3][@id]/attribute::id";
    let no_split = TranslateOptions { split_expensive: false, ..TranslateOptions::improved() };
    println!("query: {split_query}");
    let off_ev = Evaluator::NatixWith(no_split);
    let on_ev = Evaluator::NatixWith(TranslateOptions::improved());
    let off = time_query(off_ev, &doc, split_query, runs);
    let on = time_query(on_ev, &doc, split_query, runs);
    println!("  split off {:>10} ms", ms(off));
    println!("  split on  {:>10} ms", ms(on));
    record(&mut results, json_on, "E6c", "split off", split_query, off_ev, &doc, off);
    record(&mut results, json_on, "E6c", "split on", split_query, on_ev, &doc, on);

    // --- E9 (extension): [13]-style Π^D/Sort pruning ----------------------
    println!("\n# E9: order/duplicate property pruning (extension beyond the paper)");
    for q in [
        "/xdoc/child::*/child::*/child::*/attribute::id",
        "/child::xdoc/descendant::*/attribute::id",
        "(/xdoc/child::*/child::*)[last()]/attribute::id",
    ] {
        let base = time_query(Evaluator::NatixImproved, &doc, q, runs);
        let ext = time_query(Evaluator::NatixExtended, &doc, q, runs);
        println!("  {q}\n    improved {:>10} ms | +pruning {:>10} ms", ms(base), ms(ext));
        record(&mut results, json_on, "E9", "improved", q, Evaluator::NatixImproved, &doc, base);
        record(&mut results, json_on, "E9", "+pruning", q, Evaluator::NatixExtended, &doc, ext);
    }

    // --- E8: smart aggregation early exit (§5.2.5) -----------------------
    println!("\n# E8: exists() early exit vs full aggregation");
    let exists_query = "/xdoc/descendant::*[descendant::a]/attribute::id";
    let count_query = "/xdoc/descendant::*[count(descendant::a) > 0]/attribute::id";
    let exists = time_query(Evaluator::NatixImproved, &doc, exists_query, runs);
    let count = time_query(Evaluator::NatixImproved, &doc, count_query, runs);
    println!("  boolean(path) / early exit {:>10} ms   ({exists_query})", ms(exists));
    println!("  count(path) > 0 / full     {:>10} ms   ({count_query})", ms(count));
    record(
        &mut results,
        json_on,
        "E8",
        "early exit",
        exists_query,
        Evaluator::NatixImproved,
        &doc,
        exists,
    );
    record(
        &mut results,
        json_on,
        "E8",
        "full count",
        count_query,
        Evaluator::NatixImproved,
        &doc,
        count,
    );

    if let Some(path) = json_path {
        write_results_json(&path, "ablation", bench::arg_seed(&args), results);
    }
}
