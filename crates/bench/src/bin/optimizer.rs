//! Experiment B8 — the cost-based optimizer ablation: canonical
//! translation vs the always-on §4 improvements vs cost-based selection
//! ([`CostMode::CostBased`]) across the Fig. 10 query set over a
//! document sweep.
//!
//! Warm-plan measurement: each configuration evaluates through its own
//! shared-engine session, so compilation — including the cost pass
//! itself — is paid once into the plan cache and the timed samples
//! compare the *chosen plans*, matching the multi-client service path
//! the optimizer serves. Each cost-based cell additionally runs one
//! EXPLAIN ANALYZE to export the `optimizer:` section: the decisions
//! taken (rule, choice, both sides' estimated costs) and the
//! estimated-vs-actual cardinality error per operator.
//!
//! ```sh
//! cargo run --release -p bench --bin optimizer \
//!     [--records N,N,..] [--runs N] [--seed N] [--json PATH] [--update-baseline]
//! ```
//!
//! `--update-baseline` pins the gate quantity — the geometric-mean
//! warm-plan speedup of cost-based over always-improved on the
//! misprediction rows ([`bench::OPTIMIZER_GATE_QUERIES`]) — which
//! `bench/bin/regress --check` re-measures and gates.

use bench::{
    arg_seed, arg_value, dblp_document_seeded, host_json, ms, ms_f, optimizer_gate_speedup,
    warm_session_times, FIG10_QUERIES,
};
use compiler::cost::Decision;
use compiler::TranslateOptions;
use natix::{Document, Engine, EngineConfig};
use nqe::Json;

/// Default document sweep (DBLP records), ending on the Fig. 10 scale.
const SWEEP: [usize; 3] = [5_000, 20_000, 50_000];

/// The committed gate baseline (see `bench/bin/regress`).
const BASELINE: &str = "results/BENCH_8_baseline.json";

/// Document size the gate quantity is measured at: large enough for the
/// memo overhead to dominate noise, small enough for a CI run.
const GATE_RECORDS: usize = 20_000;

/// `rule:choice×count` summary of a cell's decisions, rewrite order.
fn decision_summary(decisions: &[Decision]) -> String {
    let mut counts: Vec<((&str, &str), usize)> = Vec::new();
    for d in decisions {
        match counts.iter_mut().find(|((r, c), _)| *r == d.rule && *c == d.choice) {
            Some((_, n)) => *n += 1,
            None => counts.push(((d.rule, d.choice), 1)),
        }
    }
    if counts.is_empty() {
        return "-".to_owned();
    }
    counts
        .iter()
        .map(|((r, c), n)| {
            if *n == 1 {
                format!("{r}:{c}")
            } else {
                format!("{r}:{c}×{n}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_seed(&args);
    let runs: usize = arg_value(&args, "--runs").and_then(|v| v.parse().ok()).unwrap_or(7);
    let sweep: Vec<usize> = arg_value(&args, "--records")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| SWEEP.to_vec());
    let json_path = arg_value(&args, "--json");
    let update = args.iter().any(|a| a == "--update-baseline");

    let mut results = Vec::new();
    // Speedups on the largest sweep document, for the verdict line.
    let mut final_speedups: Vec<(&str, f64, bool)> = Vec::new();
    let largest = sweep.last().copied().unwrap_or(0);

    for &records in &sweep {
        eprintln!("generating synthetic DBLP with {records} records…");
        let engine = Engine::with_config(EngineConfig::default(), None);
        let doc =
            engine.register_document("dblp", Document::Arena(dblp_document_seeded(records, seed)));
        let store = doc.store();
        let canonical = engine.session().with_options(TranslateOptions::canonical());
        let improved = engine.session().with_options(TranslateOptions::improved());
        let cost = engine.session().with_options(TranslateOptions::cost_based());

        println!("\n# B8: Fig. 10 over {records} records, warm-plan median of {runs} (ms)");
        println!(
            "{:<75} {:>10} {:>10} {:>10} {:>7} {:>5}  decisions",
            "query", "canonical", "improved", "cost", "×impr", "plan"
        );
        for q in FIG10_QUERIES {
            let times = warm_session_times(&[&canonical, &improved, &cost], store, q, runs);
            let (t_can, t_imp, t_cost) = (times[0], times[1], times[2]);
            let (_, rep) = cost.analyze(store, q).expect("analyze");
            let decisions =
                rep.trace.optimizer.as_ref().map(|o| o.decisions.clone()).unwrap_or_default();
            let speedup = t_imp.as_secs_f64() / t_cost.as_secs_f64();
            // Did the optimizer actually pick a different plan than the
            // always-on improvements? When it didn't, the two sessions
            // run byte-identical plans and any timing delta is noise.
            let (imp_plan, _, _) = improved.compile_cached_for(store, q).expect("compile");
            let (cost_plan, _, _) = cost.compile_cached_for(store, q).expect("compile");
            let changed = *imp_plan != *cost_plan;
            println!(
                "{q:<75} {:>10} {:>10} {:>10} {:>6.2}× {:>5}  {}",
                ms(t_can),
                ms(t_imp),
                ms(t_cost),
                speedup,
                if changed { "new" } else { "same" },
                decision_summary(&decisions)
            );
            if records == largest {
                final_speedups.push((q, speedup, changed));
            }
            if json_path.is_some() {
                let report = rep.to_json();
                results.push(Json::obj(vec![
                    ("records", Json::Num(records as f64)),
                    ("query", Json::Str(q.to_owned())),
                    ("canonical_ms", Json::Num(ms_f(t_can))),
                    ("improved_ms", Json::Num(ms_f(t_imp))),
                    ("cost_based_ms", Json::Num(ms_f(t_cost))),
                    ("speedup_vs_improved", Json::Num(speedup)),
                    ("plan_changed", Json::Bool(changed)),
                    ("speedup_vs_canonical", Json::Num(t_can.as_secs_f64() / t_cost.as_secs_f64())),
                    (
                        "mean_est_error_pct",
                        rep.mean_est_error_pct().map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("optimizer", report.get("optimizer").cloned().unwrap_or(Json::Null)),
                ]));
            }
        }
    }

    let changed: Vec<_> = final_speedups.iter().filter(|(_, _, c)| *c).collect();
    let same = final_speedups.len() - changed.len();
    let wins = changed.iter().filter(|(_, s, _)| *s > 1.1).count();
    let min = changed.iter().map(|(_, s, _)| *s).fold(f64::INFINITY, f64::min);
    println!(
        "\n# verdict ({largest} records): {} queries re-planned (min speedup vs \
         always-improved {min:.2}×, {wins} > 1.10×); {same} kept the improved plan \
         (1.00× by construction)",
        changed.len()
    );

    eprintln!("measuring gate quantity at {GATE_RECORDS} records…");
    let gate = optimizer_gate_speedup(GATE_RECORDS, seed, runs.max(5));
    println!(
        "gate: geometric-mean speedup on misprediction rows {gate:.2}× ({GATE_RECORDS} records)"
    );

    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("bench", Json::Str("optimizer".to_owned())),
            ("host", host_json(seed)),
            ("gate_records", Json::Num(GATE_RECORDS as f64)),
            ("gate_speedup", Json::Num(gate)),
            ("results", Json::Arr(results)),
        ]);
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if update {
        // The baseline pins only the machine-independent gate ratio (the
        // per-cell timings live in BENCH_8.json).
        let base = Json::obj(vec![
            ("bench", Json::Str("optimizer".to_owned())),
            ("host", host_json(seed)),
            ("gate_records", Json::Num(GATE_RECORDS as f64)),
            ("gate_runs", Json::Num(runs as f64)),
            ("gate_speedup", Json::Num(gate)),
        ]);
        match std::fs::write(BASELINE, base.pretty()) {
            Ok(()) => eprintln!("baseline updated: {BASELINE}"),
            Err(e) => {
                eprintln!("error: {BASELINE}: {e}");
                std::process::exit(2);
            }
        }
    }
}
