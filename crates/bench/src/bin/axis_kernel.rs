//! Benchmark B3 — the structural-index axis kernels: every query runs
//! twice on the same arena, once with the (order, size) interval index
//! visible and once behind `NoIndex`, which hides it and forces the
//! legacy paths (per-hop `AxisCursor` axes, hash-set Π^D, comparator
//! document-order sort). The delta isolates the range-scan/bitset/
//! integer-key rewrite because everything else — store layout, plan,
//! governor — is identical.
//!
//! Three document shapes stress different kernels:
//! * a deep chain (descendant ranges spanning the whole document,
//!   preceding-scans that must skip every ancestor),
//! * a wide fan-out (following/preceding ranges quadratic under the
//!   cursor, duplicate-heavy parent steps for the dedup kernels),
//! * the paper's mixed generated tree (realistic fan-out and depth).
//!
//! Prints: `doc,query,results,cursor_ms,range_ms,speedup`.
//!
//! With `--json <path>` the harness also writes a results file whose per
//! -query entries carry both timings and the EXPLAIN ANALYZE profile of
//! the indexed run (the Υ `range_scans` and Π^D `bitset_keys` gauges
//! prove which kernel served the query).
//!
//! ```sh
//! cargo run --release -p bench --bin axis_kernel [--runs N] [--quick] [--json out.json]
//! ```

use bench::{arg_value, ms_f, profile_report, time_query, tree_document, Evaluator};
use nqe::Json;
use xmlstore::{ArenaBuilder, ArenaStore, NoIndex};

/// `<r><n><n>…<leaf/>…</n></n></r>` — a chain of `depth` nested `n`s.
fn chain_document(depth: usize) -> ArenaStore {
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    for _ in 0..depth {
        b.start_element("n");
    }
    b.start_element("leaf");
    b.end_element();
    for _ in 0..depth {
        b.end_element();
    }
    b.end_element();
    b.finish()
}

/// `<r><x i="…"><t/></x>×width</r>` — a flat fan-out of `width` `x`s.
fn wide_document(width: usize) -> ArenaStore {
    let mut b = ArenaBuilder::new();
    b.start_element("r");
    for i in 0..width {
        b.start_element("x");
        b.attribute("i", &i.to_string());
        b.start_element("t");
        b.end_element();
        b.end_element();
    }
    b.end_element();
    b.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let runs: usize = arg_value(&args, "--runs").and_then(|v| v.parse().ok()).unwrap_or(if quick {
        3
    } else {
        5
    });
    let json_path = arg_value(&args, "--json");
    let mut results: Vec<Json> = Vec::new();

    let (depth, width, mixed) = if quick {
        (200, 400, 1000)
    } else {
        (2000, 4000, 8000)
    };

    // (document label, store, queries stressing its shape)
    let suites: Vec<(&str, ArenaStore, Vec<&str>)> = vec![
        (
            "chain",
            chain_document(depth),
            vec![
                // One descendant range spanning the whole document.
                "/r/descendant::n",
                "//leaf/ancestor::n",
                // Preceding of the deepest node: every candidate is an
                // ancestor, so the scan's containment skip does maximal work.
                "//leaf/preceding::*",
                "/descendant-or-self::node()",
            ],
        ),
        (
            "wide",
            wide_document(width),
            vec![
                // Following/preceding from every child: quadratic hops under
                // the cursor, one range scan each under the index.
                "/r/x[position() = 1]/following::t",
                "/r/x[position() = last()]/preceding::x",
                // Duplicate-heavy parent step: width× duplicates of <r>
                // through Π^D (bitset vs hash), then the document-order sort.
                "//t/parent::x/parent::r/descendant::t",
                "//x/@i",
            ],
        ),
        (
            "mixed",
            tree_document(mixed),
            vec![
                "/child::xdoc/descendant::*/attribute::id",
                "//b/descendant-or-self::*/@id",
                "//c/ancestor::*/descendant::*/@id",
                "//e/preceding::b/@id",
                "//a/following::c/@id",
            ],
        ),
    ];

    println!("# B3: axis kernels — cursor (NoIndex) vs structural-index range scans");
    println!(
        "# runs={runs} (median), chain depth={depth}, fan-out={width}, mixed={mixed} elements"
    );
    println!("doc,query,results,cursor_ms,range_ms,speedup");
    for (label, store, queries) in &suites {
        let plain = NoIndex(store);
        for q in queries {
            let n = Evaluator::NatixImproved.run(store, q).as_nodes().map_or(0, <[_]>::len);
            let cursor = time_query(Evaluator::NatixImproved, &plain, q, runs);
            let range = time_query(Evaluator::NatixImproved, store, q, runs);
            let speedup = cursor.as_secs_f64() / range.as_secs_f64().max(1e-9);
            println!("{label},{q},{n},{:.3},{:.3},{speedup:.2}", ms_f(cursor), ms_f(range));
            if json_path.is_some() {
                let profile = profile_report(Evaluator::NatixImproved, store, q).expect("profile");
                results.push(Json::obj(vec![
                    ("doc", Json::Str((*label).to_owned())),
                    ("query", Json::Str((*q).to_owned())),
                    ("results", Json::Num(n as f64)),
                    ("cursor_ms", Json::Num(ms_f(cursor))),
                    ("range_ms", Json::Num(ms_f(range))),
                    ("speedup", Json::Num(speedup)),
                    ("profile", profile),
                ]));
            }
        }
    }
    println!("# speedup = cursor_ms / range_ms; both runs share one arena and plan");

    if let Some(path) = json_path {
        bench::write_results_json(&path, "axis_kernel", bench::arg_seed(&args), results);
    }
}
