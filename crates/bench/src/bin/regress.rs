//! Experiment B6 — the perf-regression harness: replay the standard
//! workload set, summarise each workload's latency distribution with the
//! telemetry crate's log-linear histogram (p50/p90/p99/max), and diff
//! against a committed baseline with a tolerance gate.
//!
//! ```sh
//! cargo run --release -p bench --bin regress -- --json results/BENCH_6.json
//! cargo run --release -p bench --bin regress -- --check            # CI gate
//! cargo run --release -p bench --bin regress -- --update-baseline  # re-pin
//! ```
//!
//! Machine-speed normalisation: absolute latencies are not comparable
//! across machines (or CI runners), so the gate compares *ratios*. The
//! `calibrate` workload (a fixed structural scan) measures the machine;
//! every other workload is gated on
//! `p50 / calibrate_p50 ≤ baseline_ratio × tolerance`. The default
//! tolerance (2.0×) absorbs CI noise while still catching the
//! order-of-magnitude blowups this harness exists for — tighten it with
//! `--tolerance` for local A/B runs.

use std::time::Instant;

use bench::{
    arg_seed, arg_value, dblp_document_seeded, host_json, tree_document, Evaluator, FIG10_QUERIES,
    FIG5_QUERIES, SERVICE_CORPUS,
};
use nqe::Json;
use telemetry::Histogram;
use xmlstore::ArenaStore;

/// Default baseline location (committed to the repo).
const BASELINE: &str = "results/BENCH_6_baseline.json";

/// The B7 throughput baseline carrying the warm-cache p50 gate (written
/// by `bench/bin/throughput --update-baseline`).
const B7_BASELINE: &str = "results/BENCH_7_baseline.json";

/// The B8 optimizer baseline carrying the cost-based-vs-improved gate
/// (written by `bench/bin/optimizer --update-baseline`).
const B8_BASELINE: &str = "results/BENCH_8_baseline.json";

/// The B9 updates baseline carrying the incremental-repair-vs-full-
/// renumber gate (written by `bench/bin/updates --update-baseline`).
const B9_BASELINE: &str = "results/BENCH_9_baseline.json";

/// Hard floor on the B9 speedup regardless of baseline drift: the
/// experiment plan requires incremental repair to beat the full
/// renumber by at least this much on the gate document.
const B9_FLOOR: f64 = 10.0;

/// The B10 disk-index baseline carrying the indexed-vs-plain DiskStore
/// gate (written by `bench/bin/diskindex --update-baseline`).
const B10_BASELINE: &str = "results/BENCH_10_baseline.json";

/// Hard floor on the B10 speedup regardless of baseline drift: the
/// experiment plan requires the persisted indexes to beat the plain
/// cursor path by at least this much on the gate document.
const B10_FLOOR: f64 = 1.2;

/// Default headroom multiplier for the `--check` gate.
const TOLERANCE: f64 = 2.0;

/// Which of the standard documents a workload runs against.
#[derive(Clone, Copy)]
enum Doc {
    Tree2000,
    Tree4000,
    Dblp5000,
}

struct Workload {
    name: &'static str,
    doc: Doc,
    queries: Vec<&'static str>,
}

/// The standard workload set. `calibrate` must stay first and must stay
/// cheap and allocation-stable: it is the unit every other workload's
/// latency is normalised by.
fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "calibrate",
            doc: Doc::Tree2000,
            queries: vec!["count(//*)"],
        },
        Workload {
            name: "tree_axes",
            doc: Doc::Tree4000,
            queries: vec![FIG5_QUERIES[0].1, FIG5_QUERIES[2].1, FIG5_QUERIES[3].1],
        },
        Workload {
            name: "dblp_paths",
            doc: Doc::Dblp5000,
            queries: vec![FIG10_QUERIES[0], FIG10_QUERIES[1], FIG10_QUERIES[6]],
        },
        Workload {
            name: "predicates",
            doc: Doc::Dblp5000,
            queries: vec![FIG10_QUERIES[3], FIG10_QUERIES[8], FIG10_QUERIES[12]],
        },
        Workload {
            name: "scalar",
            doc: Doc::Tree4000,
            queries: vec![
                "count(/xdoc/descendant::*) + count(//@id)",
                "string-length(string(/xdoc/*[1]))",
            ],
        },
    ]
}

struct Summary {
    name: &'static str,
    iterations: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    mean: f64,
}

fn measure(seed: u64, iterations: usize) -> Vec<Summary> {
    let tree2000 = tree_document(2000);
    let tree4000 = tree_document(4000);
    let dblp5000 = dblp_document_seeded(5000, seed);
    let store = |d: Doc| -> &ArenaStore {
        match d {
            Doc::Tree2000 => &tree2000,
            Doc::Tree4000 => &tree4000,
            Doc::Dblp5000 => &dblp5000,
        }
    };
    workloads()
        .iter()
        .map(|w| {
            let h = Histogram::new();
            let doc = store(w.doc);
            // One warmup iteration outside the histogram.
            for q in &w.queries {
                std::hint::black_box(Evaluator::NatixImproved.run(doc, q));
            }
            for _ in 0..iterations {
                let t0 = Instant::now();
                for q in &w.queries {
                    std::hint::black_box(Evaluator::NatixImproved.run(doc, q));
                }
                h.record_nanos(t0.elapsed());
            }
            let s = h.summary();
            eprintln!(
                "{:<12} p50 {:>9}ns  p99 {:>9}ns  max {:>9}ns  ({} iterations)",
                w.name, s.p50, s.p99, s.max, s.count
            );
            Summary {
                name: w.name,
                iterations: s.count,
                p50: s.p50,
                p90: s.p90,
                p99: s.p99,
                max: s.max,
                mean: s.mean,
            }
        })
        .collect()
}

fn results_json(seed: u64, summaries: &[Summary]) -> Json {
    Json::obj(vec![
        ("bench", Json::Str("regress".to_owned())),
        ("host", host_json(seed)),
        (
            "results",
            Json::Arr(
                summaries
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("workload", Json::Str(s.name.to_owned())),
                            ("iterations", Json::Num(s.iterations as f64)),
                            ("p50_nanos", Json::Num(s.p50 as f64)),
                            ("p90_nanos", Json::Num(s.p90 as f64)),
                            ("p99_nanos", Json::Num(s.p99 as f64)),
                            ("max_nanos", Json::Num(s.max as f64)),
                            ("mean_nanos", Json::Num(s.mean)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Warm-cache per-query latency p50 (nanos): [`SERVICE_CORPUS`] through
/// a pre-warmed shared-engine session, matching the `bench/bin/
/// throughput` measurement the B7 baseline pins.
fn warm_cache_p50(seed: u64, records: usize, reps: usize) -> u64 {
    let engine = natix::Engine::with_config(natix::EngineConfig::default(), None);
    let doc = engine
        .register_document("dblp", natix::Document::Arena(dblp_document_seeded(records, seed)));
    let session = engine.session();
    for q in SERVICE_CORPUS {
        std::hint::black_box(session.evaluate(doc.store(), q).expect("corpus query"));
    }
    let h = Histogram::new();
    for _ in 0..reps.max(1) {
        for q in SERVICE_CORPUS {
            let t0 = Instant::now();
            std::hint::black_box(session.evaluate(doc.store(), q).expect("corpus query"));
            h.record_nanos(t0.elapsed());
        }
    }
    h.summary().p50
}

/// `workload → p50_nanos` from a results document.
fn baseline_p50s(doc: &Json) -> Vec<(String, f64)> {
    doc.get("results")
        .and_then(Json::as_arr)
        .map(|rs| {
            rs.iter()
                .filter_map(|r| {
                    Some((r.get("workload")?.as_str()?.to_owned(), r.get("p50_nanos")?.as_num()?))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_seed(&args);
    let check = args.iter().any(|a| a == "--check");
    let update = args.iter().any(|a| a == "--update-baseline");
    let quick = args.iter().any(|a| a == "--quick");
    let iterations = arg_value(&args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 5 } else { 21 });
    let tolerance = arg_value(&args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(TOLERANCE);
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| BASELINE.to_owned());

    eprintln!("replaying {} workloads × {iterations} iterations…", workloads().len());
    let summaries = measure(seed, iterations);
    let doc = results_json(seed, &summaries);

    if let Some(path) = arg_value(&args, "--json") {
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if update {
        match std::fs::write(&baseline_path, doc.pretty()) {
            Ok(()) => eprintln!("baseline updated: {baseline_path}"),
            Err(e) => {
                eprintln!("error: {baseline_path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if !check {
        return;
    }

    let base_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: no baseline at {baseline_path}: {e}");
            eprintln!("hint: run with --update-baseline to create one");
            std::process::exit(2);
        }
    };
    let base = match Json::parse(&base_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let base_p50s = baseline_p50s(&base);
    let base_cal = base_p50s.iter().find(|(n, _)| n == "calibrate").map(|(_, v)| *v).unwrap_or(0.0);
    let cur_cal = summaries.iter().find(|s| s.name == "calibrate").map(|s| s.p50).unwrap_or(0);
    if base_cal <= 0.0 || cur_cal == 0 {
        eprintln!("error: calibrate workload missing from baseline or current run");
        std::process::exit(2);
    }

    println!(
        "# regress --check vs {baseline_path} (tolerance {tolerance:.2}×, \
         calibration-normalised)"
    );
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>8}",
        "workload", "base_norm_p50", "cur_norm_p50", "ratio", "verdict"
    );
    let mut failed = false;
    for s in summaries.iter().filter(|s| s.name != "calibrate") {
        let Some((_, base_p50)) = base_p50s.iter().find(|(n, _)| n == s.name) else {
            println!("{:<12} {:>14} {:>14} {:>8} {:>8}", s.name, "-", "-", "-", "NEW");
            continue;
        };
        let base_norm = base_p50 / base_cal;
        let cur_norm = s.p50 as f64 / cur_cal as f64;
        let ratio = cur_norm / base_norm;
        let ok = ratio <= tolerance;
        if !ok {
            failed = true;
        }
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>7.2}× {:>8}",
            s.name,
            base_norm,
            cur_norm,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    // B7 warm-cache gate: the compiled-plan cache's warm per-query p50,
    // calibration-normalised against the committed throughput baseline.
    let b7_path = arg_value(&args, "--bench7-baseline").unwrap_or_else(|| B7_BASELINE.to_owned());
    let b7_text = match std::fs::read_to_string(&b7_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: no B7 baseline at {b7_path}: {e}");
            eprintln!("hint: run `throughput --update-baseline` to create one");
            std::process::exit(2);
        }
    };
    let b7 = match Json::parse(&b7_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {b7_path}: {e}");
            std::process::exit(2);
        }
    };
    let (Some(b7_warm), Some(b7_cal)) = (
        b7.get("warm_p50_nanos").and_then(Json::as_num),
        b7.get("calibrate_p50_nanos").and_then(Json::as_num),
    ) else {
        eprintln!("error: {b7_path} lacks warm_p50_nanos/calibrate_p50_nanos");
        std::process::exit(2);
    };
    if b7_cal <= 0.0 {
        eprintln!("error: {b7_path} has a zero calibrate p50");
        std::process::exit(2);
    }
    let records = b7.get("records").and_then(Json::as_num).unwrap_or(12.0) as usize;
    let cur_warm = warm_cache_p50(seed, records, iterations);
    let base_norm = b7_warm / b7_cal;
    let cur_norm = cur_warm as f64 / cur_cal as f64;
    let ratio = cur_norm / base_norm;
    let ok = ratio <= tolerance;
    if !ok {
        failed = true;
    }
    println!(
        "{:<12} {:>14.3} {:>14.3} {:>7.2}× {:>8}",
        "warm_cache",
        base_norm,
        cur_norm,
        ratio,
        if ok { "ok" } else { "REGRESSED" }
    );

    // B8 optimizer gate: the cost-based optimizer's warm-plan speedup
    // over the always-on improvements on the misprediction rows
    // (`OPTIMIZER_GATE_QUERIES`). Both sides of the speedup run in this
    // process, so the ratio is machine-normalised by construction; a
    // regression means the optimizer stopped (or mis-)re-planning.
    let b8_path = arg_value(&args, "--bench8-baseline").unwrap_or_else(|| B8_BASELINE.to_owned());
    let b8_text = match std::fs::read_to_string(&b8_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: no B8 baseline at {b8_path}: {e}");
            eprintln!("hint: run `optimizer --update-baseline` to create one");
            std::process::exit(2);
        }
    };
    let b8 = match Json::parse(&b8_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {b8_path}: {e}");
            std::process::exit(2);
        }
    };
    let (Some(b8_speedup), Some(b8_records)) = (
        b8.get("gate_speedup").and_then(Json::as_num),
        b8.get("gate_records").and_then(Json::as_num),
    ) else {
        eprintln!("error: {b8_path} lacks gate_speedup/gate_records");
        std::process::exit(2);
    };
    if b8_speedup <= 0.0 {
        eprintln!("error: {b8_path} has a non-positive gate speedup");
        std::process::exit(2);
    }
    let cur_speedup = bench::optimizer_gate_speedup(b8_records as usize, seed, iterations);
    let ratio = b8_speedup / cur_speedup;
    let ok = ratio <= tolerance;
    if !ok {
        failed = true;
    }
    println!(
        "{:<12} {:>13.3}× {:>13.3}× {:>7.2}× {:>8}",
        "optimizer",
        b8_speedup,
        cur_speedup,
        ratio,
        if ok { "ok" } else { "REGRESSED" }
    );

    // B9 updates gate: incremental index repair vs full renumber on a
    // small update batch. The baseline's headline number runs on 50k
    // records (seconds per renumber batch), so the gate replays the
    // committed `check_records` configuration instead; both sides of
    // the speedup run in this process, so the ratio is machine-
    // normalised by construction. A hard floor applies on top of the
    // drift tolerance: incremental repair must stay ≥ 10× faster.
    let b9_path = arg_value(&args, "--bench9-baseline").unwrap_or_else(|| B9_BASELINE.to_owned());
    let b9_text = match std::fs::read_to_string(&b9_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: no B9 baseline at {b9_path}: {e}");
            eprintln!("hint: run `updates --update-baseline` to create one");
            std::process::exit(2);
        }
    };
    let b9 = match Json::parse(&b9_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {b9_path}: {e}");
            std::process::exit(2);
        }
    };
    let (Some(b9_speedup), Some(b9_records), Some(b9_ops)) = (
        b9.get("check_speedup").and_then(Json::as_num),
        b9.get("check_records").and_then(Json::as_num),
        b9.get("gate_ops").and_then(Json::as_num),
    ) else {
        eprintln!("error: {b9_path} lacks check_speedup/check_records/gate_ops");
        std::process::exit(2);
    };
    if b9_speedup <= 0.0 {
        eprintln!("error: {b9_path} has a non-positive check speedup");
        std::process::exit(2);
    }
    let cur_speedup =
        bench::update_gate_speedup(b9_records as usize, seed, b9_ops as usize, iterations.min(7));
    let ratio = b9_speedup / cur_speedup;
    let ok = ratio <= tolerance && cur_speedup >= B9_FLOOR;
    if !ok {
        failed = true;
    }
    println!(
        "{:<12} {:>13.3}× {:>13.3}× {:>7.2}× {:>8}",
        "updates",
        b9_speedup,
        cur_speedup,
        ratio,
        if ok { "ok" } else { "REGRESSED" }
    );

    // B10 disk-index gate: the persisted structural + content indexes'
    // warm-plan speedup over the index-blind `open_plain` cursor path,
    // on the same page file. Both sides run in this process, so the
    // ratio is machine-normalised by construction; a hard floor applies
    // on top of the drift tolerance (the indexes must stay ≥ 1.2×).
    let b10_path =
        arg_value(&args, "--bench10-baseline").unwrap_or_else(|| B10_BASELINE.to_owned());
    let b10_text = match std::fs::read_to_string(&b10_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: no B10 baseline at {b10_path}: {e}");
            eprintln!("hint: run `diskindex --update-baseline` to create one");
            std::process::exit(2);
        }
    };
    let b10 = match Json::parse(&b10_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {b10_path}: {e}");
            std::process::exit(2);
        }
    };
    let (Some(b10_speedup), Some(b10_records), Some(b10_pages)) = (
        b10.get("gate_speedup").and_then(Json::as_num),
        b10.get("gate_records").and_then(Json::as_num),
        b10.get("buffer_pages").and_then(Json::as_num),
    ) else {
        eprintln!("error: {b10_path} lacks gate_speedup/gate_records/buffer_pages");
        std::process::exit(2);
    };
    if b10_speedup <= 0.0 {
        eprintln!("error: {b10_path} has a non-positive gate speedup");
        std::process::exit(2);
    }
    let cur_speedup = bench::disk_index_gate_speedup(
        b10_records as usize,
        seed,
        iterations.min(7),
        b10_pages as usize,
    );
    let ratio = b10_speedup / cur_speedup;
    let ok = ratio <= tolerance && cur_speedup >= B10_FLOOR;
    if !ok {
        failed = true;
    }
    println!(
        "{:<12} {:>13.3}× {:>13.3}× {:>7.2}× {:>8}",
        "disk_index",
        b10_speedup,
        cur_speedup,
        ratio,
        if ok { "ok" } else { "REGRESSED" }
    );

    if failed {
        eprintln!("perf regression detected (normalised p50 over {tolerance:.2}× baseline)");
        std::process::exit(1);
    }
    println!("no regression");
}
