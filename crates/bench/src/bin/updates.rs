//! Experiment B9 — online updates: small-batch commit latency with
//! incremental structural-index repair vs the full-`renumber()`
//! fallback, plus reader latency while a writer publishes epochs.
//!
//! The headline gate: on a 50k-record DBLP store, a small update batch
//! must commit at least 10× faster with incremental repair (gap-based
//! order keys, localized splice) than with a full renumber per
//! mutation — the repair is O(touched), the fallback O(n).
//!
//! ```sh
//! cargo run --release -p bench --bin updates \
//!     [--records N] [--ops N] [--runs N] [--seed N] \
//!     [--json PATH] [--update-baseline]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench::{arg_seed, arg_value, dblp_document_seeded, host_json, update_batch_median};
use nqe::Json;
use telemetry::Histogram;
use xmlstore::{RepairMode, XmlStore};

/// The committed baseline the `regress --check` B9 gate diffs against.
const BASELINE: &str = "results/BENCH_9_baseline.json";

/// The speedup floor from the experiment plan (§B9 acceptance).
const GATE_FLOOR: f64 = 10.0;

/// Reader-side query: cheap enough to sample often, touches the region
/// the writer mutates (the tail of `/dblp`).
const READER_QUERY: &str = "/dblp/article[position() = last()]/title";

/// p50/p99 of `READER_QUERY` against pinned snapshots while `writer`
/// batches commit concurrently (or not, for the quiescent baseline).
fn reader_latency(
    engine: &Arc<natix::Engine>,
    iterations: usize,
    with_writer: bool,
) -> (u64, u64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let writer = with_writer.then(|| {
        let engine = engine.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut commits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut b = engine.write_batch("dblp").expect("writer batch");
                let root = b.store().first_child(b.store().root()).expect("dblp");
                let e = b.append_element(root, "article").expect("append");
                b.set_attribute(e, "key", "bench/b9/live").expect("attr");
                b.commit().expect("commit");
                commits += 1;
            }
            commits
        })
    });

    let h = Histogram::new();
    let mut last_epoch = 0;
    for _ in 0..iterations {
        let pin = engine.pin("dblp").expect("document registered");
        last_epoch = pin.epoch();
        let t0 = Instant::now();
        std::hint::black_box(
            nqe::evaluate(pin.doc().store(), READER_QUERY, &compiler::TranslateOptions::improved())
                .expect("reader query"),
        );
        h.record_nanos(t0.elapsed());
    }
    stop.store(true, Ordering::Relaxed);
    let commits = writer.map_or(0, |w| w.join().expect("writer thread"));
    if with_writer {
        assert!(commits > 0, "writer never committed");
    }
    let s = h.summary();
    eprintln!(
        "readers {}: p50 {:>9}ns  p99 {:>9}ns  (epoch {last_epoch}, {commits} commits)",
        if with_writer {
            "racing writer"
        } else {
            "quiescent    "
        },
        s.p50,
        s.p99,
    );
    (s.p50, s.p99, commits)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| -> usize {
        arg_value(&args, flag).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let records = get("--records", 50_000);
    let ops = get("--ops", 16);
    let runs = get("--runs", 9);
    let reader_iters = get("--reader-iterations", 200);
    let seed = arg_seed(&args);
    let update = args.iter().any(|a| a == "--update-baseline");

    eprintln!("generating DBLP document with {records} records (seed {seed})…");
    let mut store = dblp_document_seeded(records, seed);
    let nodes = store.structural_index().expect("arena index").len();

    println!("# B9: small-batch update commit, {records} records ({nodes} nodes), {ops} ops/batch");
    // Warm both paths once before measuring.
    update_batch_median(&mut store, RepairMode::Incremental, ops, 1);
    update_batch_median(&mut store, RepairMode::FullRenumber, ops, 1);
    let inc = update_batch_median(&mut store, RepairMode::Incremental, ops, runs);
    let full = update_batch_median(&mut store, RepairMode::FullRenumber, ops, runs);
    let speedup = full.as_secs_f64() / inc.as_secs_f64().max(f64::EPSILON);
    let stats = store.repair_stats();
    println!("incremental repair : {:>12} ns/batch (median of {runs})", inc.as_nanos());
    println!("full renumber      : {:>12} ns/batch (median of {runs})", full.as_nanos());
    println!(
        "speedup            : {speedup:>11.1}×  (gate ≥ {GATE_FLOOR}×: {})",
        if speedup >= GATE_FLOOR {
            "ok"
        } else {
            "FAILED"
        }
    );
    println!(
        "repairs            : {} incremental, {} relabels, {} full renumbers",
        stats.incremental, stats.relabels, stats.full_renumbers
    );

    // A scaled-down replica of the gate for `regress --check`: the full
    // 50k-record renumber side costs seconds per batch, so CI replays
    // the same measurement on a tenth of the document (the speedup is
    // size-dependent, so the baseline records the check size too).
    let check_records = (records / 10).max(1000);
    eprintln!("measuring CI check gate at {check_records} records…");
    let check_speedup = bench::update_gate_speedup(check_records, seed, ops, 5);
    println!("check speedup      : {check_speedup:>11.1}×  ({check_records} records)");

    // Engine-level: epoch commits under live readers. The document
    // registered here is a fresh clone-by-construction (the batch clones
    // the arena), so the store above is unaffected.
    let engine = natix::Engine::with_config(natix::EngineConfig::default(), None);
    engine.register_document(
        "dblp",
        natix::Document::Arena(dblp_document_seeded(records.min(5000), seed)),
    );
    let (quiet_p50, quiet_p99, _) = reader_latency(&engine, reader_iters, false);
    let (racy_p50, racy_p99, commits) = reader_latency(&engine, reader_iters, true);

    let doc = Json::obj(vec![
        ("bench", Json::Str("updates".to_owned())),
        ("host", host_json(seed)),
        ("gate_records", Json::Num(records as f64)),
        ("gate_ops", Json::Num(ops as f64)),
        ("gate_speedup", Json::Num(speedup)),
        ("check_records", Json::Num(check_records as f64)),
        ("check_speedup", Json::Num(check_speedup)),
        (
            "results",
            Json::Arr(vec![Json::obj(vec![
                ("records", Json::Num(records as f64)),
                ("nodes", Json::Num(nodes as f64)),
                ("batch_ops", Json::Num(ops as f64)),
                ("incremental_nanos", Json::Num(inc.as_nanos() as f64)),
                ("full_renumber_nanos", Json::Num(full.as_nanos() as f64)),
                ("speedup", Json::Num(speedup)),
                ("incremental_repairs", Json::Num(stats.incremental as f64)),
                ("full_renumbers", Json::Num(stats.full_renumbers as f64)),
                ("reader_quiescent_p50_nanos", Json::Num(quiet_p50 as f64)),
                ("reader_quiescent_p99_nanos", Json::Num(quiet_p99 as f64)),
                ("reader_racing_p50_nanos", Json::Num(racy_p50 as f64)),
                ("reader_racing_p99_nanos", Json::Num(racy_p99 as f64)),
                ("writer_commits", Json::Num(commits as f64)),
            ])]),
        ),
    ]);

    if let Some(path) = arg_value(&args, "--json") {
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if update {
        let path = arg_value(&args, "--baseline").unwrap_or_else(|| BASELINE.to_owned());
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("baseline updated: {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if speedup < GATE_FLOOR {
        eprintln!("B9 gate failed: {speedup:.1}× < {GATE_FLOOR}×");
        std::process::exit(1);
    }
}
