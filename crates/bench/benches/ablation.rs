//! Criterion benchmarks for the §4 ablations: canonical vs improved
//! translation, MemoX on/off, smart-aggregation early exit.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{tree_document, Evaluator};
use compiler::TranslateOptions;

fn ablations(c: &mut Criterion) {
    let doc = tree_document(2000);

    let dup_query = "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id";
    let mut group = c.benchmark_group("ablation/dup_heavy_path");
    group.sample_size(10);
    group
        .bench_function("canonical", |b| b.iter(|| Evaluator::NatixCanonical.run(&doc, dup_query)));
    group.bench_function("improved", |b| b.iter(|| Evaluator::NatixImproved.run(&doc, dup_query)));
    group.finish();

    let memo_query = "/xdoc/descendant::*[count(descendant::c/following::*) > 0]/attribute::id";
    let no_memo = TranslateOptions { memoize_inner: false, ..TranslateOptions::improved() };
    let mut group = c.benchmark_group("ablation/inner_path_memo");
    group.sample_size(10);
    group.bench_function("memo_off", |b| {
        b.iter(|| Evaluator::NatixWith(no_memo).run(&doc, memo_query))
    });
    group.bench_function("memo_on", |b| b.iter(|| Evaluator::NatixImproved.run(&doc, memo_query)));
    group.finish();

    let mut group = c.benchmark_group("ablation/smart_aggregation");
    group.sample_size(10);
    group.bench_function("exists_early_exit", |b| {
        b.iter(|| {
            Evaluator::NatixImproved.run(&doc, "/xdoc/descendant::*[descendant::a]/attribute::id")
        })
    });
    group.bench_function("count_full", |b| {
        b.iter(|| {
            Evaluator::NatixImproved
                .run(&doc, "/xdoc/descendant::*[count(descendant::a) > 0]/attribute::id")
        })
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
