//! Criterion benchmarks for paper Fig. 10: the DBLP workload on the
//! synthetic DBLP document (5000 records by default; the `fig10` binary
//! scales further).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{dblp_document, Evaluator, FIG10_QUERIES};

fn dblp_queries(c: &mut Criterion) {
    let doc = dblp_document(5_000);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for (i, query) in FIG10_QUERIES.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("natix", i + 1), query, |b, q| {
            b.iter(|| Evaluator::NatixImproved.run(&doc, q))
        });
        group.bench_with_input(BenchmarkId::new("interp", i + 1), query, |b, q| {
            b.iter(|| Evaluator::ContextList.run(&doc, q))
        });
    }
    group.finish();
}

criterion_group!(benches, dblp_queries);
criterion_main!(benches);
