//! Criterion benchmarks for paper Figs. 6–9: Fig. 5 queries over
//! generated documents, algebraic engine vs interpreter.
//!
//! Sizes are kept to the small family by default so `cargo bench`
//! finishes promptly; the `fig6_9` binary sweeps the full range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{tree_document, Evaluator, FIG5_QUERIES};

fn generated_documents(c: &mut Criterion) {
    let sizes = [2000usize, 4000];
    let docs: Vec<_> = sizes.iter().map(|&s| (s, tree_document(s))).collect();
    for (name, query) in FIG5_QUERIES {
        let mut group = c.benchmark_group(format!("fig6_9/{name}"));
        group.sample_size(10);
        for (s, doc) in &docs {
            group.bench_with_input(BenchmarkId::new("natix", s), doc, |b, d| {
                b.iter(|| Evaluator::NatixImproved.run(d, query))
            });
            group.bench_with_input(BenchmarkId::new("interp", s), doc, |b, d| {
                b.iter(|| Evaluator::ContextList.run(d, query))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, generated_documents);
criterion_main!(benches);
