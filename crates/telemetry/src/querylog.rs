//! Structured JSONL query log: one self-contained JSON record per
//! query, written line-by-line so the log survives the process (and the
//! query) that produced it. A configurable slow-query threshold marks
//! offenders, captures their full EXPLAIN ANALYZE JSON inline, and keeps
//! the most recent slow records in an in-memory ring for the REPL's
//! `:slowlog`.
//!
//! Record schema (stable, one object per line):
//!
//! ```json
//! {"seq": 1, "unix_ms": 1754550000000, "expr_hash": "f00dfeedd00d8c41",
//!  "query": "/site//item", "outcome": "ok", "latency_nanos": 123456,
//!  "result_kind": "nodes", "result_count": 42, "tuples": 512,
//!  "tuples_charged": 512, "mem_high_water_bytes": 4096,
//!  "charged_bytes": 8192, "slow": false, "explain": null}
//! ```
//!
//! `outcome` is `"ok"` or the typed error class (`memory`, `tuples`,
//! `deadline`, `cancelled`, `storage_io`, `storage_corrupt`). `explain`
//! is the full [`AnalyzeReport::to_json`] document for slow queries and
//! `null` otherwise. `expr_hash` is a stable FNV-1a 64 hash of the
//! expression text, rendered as hex so log aggregation can group
//! recurring query shapes without parsing XPath.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use nqe::Json;

/// Slow records kept in memory for `:slowlog`.
const SLOWLOG_CAPACITY: usize = 32;

/// Stable 64-bit FNV-1a hash of an expression's text.
pub fn expr_hash(query: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in query.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One query-log record, ready to serialize.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The expression text.
    pub query: String,
    /// `"ok"` or a typed error class.
    pub outcome: String,
    /// End-to-end latency (compile + execute) in nanoseconds.
    pub latency_nanos: u64,
    /// Result kind (`nodes`/`bool`/`num`/`str`/`error`).
    pub result_kind: String,
    /// Result cardinality.
    pub result_count: u64,
    /// Tuples flowing through the profiled plan (0 when unprofiled).
    pub tuples: u64,
    /// Tuples charged against the governor's budget.
    pub tuples_charged: u64,
    /// Governor memory high-water mark in bytes.
    pub mem_high_water_bytes: u64,
    /// Cumulative bytes charged.
    pub charged_bytes: u64,
    /// Full EXPLAIN ANALYZE JSON, captured for slow queries.
    pub explain: Option<Json>,
}

/// A logged record plus the metadata the logger stamped on it.
#[derive(Clone, Debug)]
pub struct LoggedQuery {
    /// Monotonic per-logger sequence number (1-based).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Whether the record crossed the slow threshold.
    pub slow: bool,
    /// The record itself.
    pub record: QueryRecord,
}

impl LoggedQuery {
    /// The record as one JSON object (the JSONL line, sans newline).
    pub fn to_json(&self) -> Json {
        let r = &self.record;
        Json::obj(vec![
            ("seq", Json::Num(self.seq as f64)),
            ("unix_ms", Json::Num(self.unix_ms as f64)),
            ("expr_hash", Json::Str(format!("{:016x}", expr_hash(&r.query)))),
            ("query", Json::Str(r.query.clone())),
            ("outcome", Json::Str(r.outcome.clone())),
            ("latency_nanos", Json::Num(r.latency_nanos as f64)),
            ("result_kind", Json::Str(r.result_kind.clone())),
            ("result_count", Json::Num(r.result_count as f64)),
            ("tuples", Json::Num(r.tuples as f64)),
            ("tuples_charged", Json::Num(r.tuples_charged as f64)),
            ("mem_high_water_bytes", Json::Num(r.mem_high_water_bytes as f64)),
            ("charged_bytes", Json::Num(r.charged_bytes as f64)),
            ("slow", Json::Bool(self.slow)),
            ("explain", r.explain.clone().unwrap_or(Json::Null)),
        ])
    }
}

/// The query logger: optional JSONL file sink, slow-query threshold,
/// in-memory slowlog ring. All methods take `&self`; the file sink and
/// ring are mutex-protected (the log path is per-query, not per-tuple,
/// so a short lock is fine).
pub struct QueryLogger {
    sink: Option<Mutex<BufWriter<File>>>,
    slow_threshold: Option<Duration>,
    seq: AtomicU64,
    slowlog: Mutex<VecDeque<LoggedQuery>>,
}

impl QueryLogger {
    /// Logger with no file sink (slowlog ring only).
    pub fn in_memory(slow_threshold: Option<Duration>) -> QueryLogger {
        QueryLogger {
            sink: None,
            slow_threshold,
            seq: AtomicU64::new(0),
            slowlog: Mutex::new(VecDeque::new()),
        }
    }

    /// Logger appending JSONL records to `path` (created if absent).
    pub fn to_file(path: &Path, slow_threshold: Option<Duration>) -> std::io::Result<QueryLogger> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(QueryLogger {
            sink: Some(Mutex::new(BufWriter::new(file))),
            slow_threshold,
            seq: AtomicU64::new(0),
            slowlog: Mutex::new(VecDeque::new()),
        })
    }

    /// The configured slow threshold.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    /// Whether a query of `latency` counts as slow.
    pub fn is_slow(&self, latency: Duration) -> bool {
        self.slow_threshold.is_some_and(|t| latency >= t)
    }

    /// Number of records logged so far.
    pub fn logged(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Stamp, persist and ring-buffer one record. Returns the stamped
    /// form. Sink write failures are swallowed (telemetry must never fail
    /// the query that produced it).
    pub fn record(&self, record: QueryRecord) -> LoggedQuery {
        let slow = self.is_slow(Duration::from_nanos(record.latency_nanos));
        let logged = LoggedQuery {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            slow,
            record,
        };
        if let Some(sink) = &self.sink {
            let line = logged.to_json().to_string();
            let mut w = sink.lock();
            let _ = writeln!(w, "{line}");
            let _ = w.flush(); // each record must survive a later crash
        }
        if slow {
            let mut ring = self.slowlog.lock();
            if ring.len() == SLOWLOG_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(logged.clone());
        }
        logged
    }

    /// The most recent slow queries, oldest first.
    pub fn slowlog(&self) -> Vec<LoggedQuery> {
        self.slowlog.lock().iter().cloned().collect()
    }

    /// Drop the in-memory slowlog ring (the file sink is untouched).
    pub fn clear_slowlog(&self) {
        self.slowlog.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(query: &str, nanos: u64) -> QueryRecord {
        QueryRecord {
            query: query.to_owned(),
            outcome: "ok".to_owned(),
            latency_nanos: nanos,
            result_kind: "nodes".to_owned(),
            result_count: 3,
            tuples: 10,
            tuples_charged: 10,
            mem_high_water_bytes: 0,
            charged_bytes: 0,
            explain: None,
        }
    }

    #[test]
    fn hash_is_stable_and_discriminating() {
        assert_eq!(expr_hash("/a/b"), expr_hash("/a/b"));
        assert_ne!(expr_hash("/a/b"), expr_hash("/a/c"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(expr_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn records_are_sequenced_and_json_parses() {
        let log = QueryLogger::in_memory(None);
        let a = log.record(rec("/a", 100));
        let b = log.record(rec("/b", 200));
        assert_eq!((a.seq, b.seq), (1, 2));
        assert_eq!(log.logged(), 2);
        let line = b.to_json().to_string();
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.get("query").and_then(Json::as_str), Some("/b"));
        assert_eq!(back.get("latency_nanos").and_then(Json::as_num), Some(200.0));
        assert_eq!(back.get("explain"), Some(&Json::Null));
        assert_eq!(
            back.get("expr_hash").and_then(Json::as_str),
            Some(format!("{:016x}", expr_hash("/b")).as_str()),
        );
    }

    #[test]
    fn slow_threshold_marks_and_rings() {
        let log = QueryLogger::in_memory(Some(Duration::from_nanos(150)));
        assert!(!log.record(rec("/fast", 100)).slow);
        assert!(log.record(rec("/slow", 150)).slow, "threshold is inclusive");
        let ring = log.slowlog();
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].record.query, "/slow");
        log.clear_slowlog();
        assert!(log.slowlog().is_empty());
    }

    #[test]
    fn slowlog_ring_is_bounded() {
        let log = QueryLogger::in_memory(Some(Duration::from_nanos(0)));
        for i in 0..(SLOWLOG_CAPACITY + 5) {
            log.record(rec(&format!("/q{i}"), 1));
        }
        let ring = log.slowlog();
        assert_eq!(ring.len(), SLOWLOG_CAPACITY);
        assert_eq!(ring[0].record.query, "/q5", "oldest evicted first");
    }

    #[test]
    fn file_sink_writes_one_json_line_per_record() {
        let dir = std::env::temp_dir().join(format!("natix-qlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let log = QueryLogger::to_file(&path, None).unwrap();
            log.record(rec("/a", 1));
            log.record(rec("/b\nnewline \"quoted\"", 2));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        for line in lines {
            Json::parse(line).expect("every line is a standalone JSON object");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
