//! Thread-safe metrics registry: named lock-free counters, gauges and
//! log-linear histograms, plus a Prometheus-style text exposition.
//!
//! Registration (`counter()` / `gauge()` / `histogram()`) takes a short
//! lock to intern the name and hand back a clonable handle; the handle
//! itself is one `Arc<AtomicU64>` (or the histogram's atomic bucket
//! array), so the record path never locks. Re-registering a name returns
//! the existing instrument — callers can cheaply resolve by name without
//! coordinating ownership.
//!
//! Names follow the Prometheus convention and may carry a label set in
//! curly braces, e.g. `natix_query_errors_total{class="memory"}`.
//! [`MetricsRegistry::render_text`] groups series by base name (the part
//! before `{`), emits one `# TYPE` header per family, and renders
//! histograms as `_bucket`-less summary series (`_count`, `_sum`,
//! `_min`, `_max` and `{quantile="…"}` gauges) — quantile readout, not
//! raw buckets, is what the engine's dashboards and the regression
//! harness consume.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::Histogram;

/// A monotonically increasing counter handle (lock-free, clonable).
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a point-in-time value with `set` and high-water
/// (`record_max`) semantics.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is higher (high-water tracking).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `n` (gauges that count in-flight work, e.g. pinned readers).
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`, saturating at zero (the release side of `add`).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    name: String,
    instrument: Instrument,
}

/// A registry of named metrics. Lives on the engine (one per
/// [`XPathEngine`](../natix), not a process global) so embedders can run
/// isolated engines with isolated metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    series: Mutex<Vec<Series>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or resolve) a counter by full series name.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut series = self.series.lock();
        if let Some(s) = series.iter().find(|s| s.name == name) {
            match &s.instrument {
                Instrument::Counter(c) => return c.clone(),
                _ => panic!("metric {name} already registered as a non-counter"),
            }
        }
        let c = Counter::default();
        series.push(Series {
            name: name.to_owned(),
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Register (or resolve) a gauge by full series name.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut series = self.series.lock();
        if let Some(s) = series.iter().find(|s| s.name == name) {
            match &s.instrument {
                Instrument::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} already registered as a non-gauge"),
            }
        }
        let g = Gauge::default();
        series.push(Series {
            name: name.to_owned(),
            instrument: Instrument::Gauge(g.clone()),
        });
        g
    }

    /// Register (or resolve) a histogram by full series name.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut series = self.series.lock();
        if let Some(s) = series.iter().find(|s| s.name == name) {
            match &s.instrument {
                Instrument::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} already registered as a non-histogram"),
            }
        }
        let h = Histogram::new();
        series.push(Series {
            name: name.to_owned(),
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Value of a counter/gauge series, if registered (test/tooling aid).
    pub fn value(&self, name: &str) -> Option<u64> {
        let series = self.series.lock();
        series.iter().find(|s| s.name == name).map(|s| match &s.instrument {
            Instrument::Counter(c) => c.get(),
            Instrument::Gauge(g) => g.get(),
            Instrument::Histogram(h) => h.count(),
        })
    }

    /// Reset every registered instrument to zero. Registration survives —
    /// existing handles keep working and keep pointing at the same
    /// (now-zeroed) atomics.
    pub fn reset(&self) {
        let series = self.series.lock();
        for s in series.iter() {
            match &s.instrument {
                Instrument::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Instrument::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }

    /// Render the Prometheus-style text exposition. Series render in
    /// registration order; labelled series of one family share a single
    /// `# TYPE` header. Histograms render as summary series:
    /// `name{quantile="0.5|0.95|0.99"}`, `name_min`, `name_max`,
    /// `name_sum`, `name_count`.
    pub fn render_text(&self) -> String {
        let series = self.series.lock();
        let mut out = String::new();
        let mut last_family = String::new();
        for s in series.iter() {
            let family = base_name(&s.name);
            match &s.instrument {
                Instrument::Counter(c) => {
                    if family != last_family {
                        out.push_str(&format!("# TYPE {family} counter\n"));
                        last_family = family.to_owned();
                    }
                    out.push_str(&format!("{} {}\n", s.name, c.get()));
                }
                Instrument::Gauge(g) => {
                    if family != last_family {
                        out.push_str(&format!("# TYPE {family} gauge\n"));
                        last_family = family.to_owned();
                    }
                    out.push_str(&format!("{} {}\n", s.name, g.get()));
                }
                Instrument::Histogram(h) => {
                    if family != last_family {
                        out.push_str(&format!("# TYPE {family} summary\n"));
                        last_family = family.to_owned();
                    }
                    let sum = h.summary();
                    for (q, v) in [
                        ("0.5", sum.p50),
                        ("0.9", sum.p90),
                        ("0.95", sum.p95),
                        ("0.99", sum.p99),
                    ] {
                        out.push_str(&format!("{family}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{family}_min {}\n", sum.min));
                    out.push_str(&format!("{family}_max {}\n", sum.max));
                    out.push_str(&format!("{family}_sum {}\n", sum.sum));
                    out.push_str(&format!("{family}_count {}\n", sum.count));
                }
            }
        }
        out
    }
}

/// Base (family) name of a series: everything before the label block.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Parse a text exposition back into `(series_name, value)` pairs,
/// validating the format line by line. Used by the tests and the CI
/// smoke job to assert the exposition is well-formed and to reconcile
/// counters against per-query profiler totals.
///
/// Returns `Err(line_number)` on the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, usize> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(lineno)?;
            let kind = parts.next().ok_or(lineno)?;
            if name.is_empty()
                || parts.next().is_some()
                || !matches!(kind, "counter" | "gauge" | "summary" | "histogram")
            {
                return Err(lineno);
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (e.g. # HELP)
        }
        // `name{labels} value` or `name value`; the name must not contain
        // whitespace, the value must parse as a finite number.
        let split_at = match line.find('}') {
            Some(end) => end + 1,
            None => line.find(' ').ok_or(lineno)?,
        };
        let (name, rest) = line.split_at(split_at);
        if name.is_empty() || name.contains(' ') {
            return Err(lineno);
        }
        let value: f64 = rest.trim().parse().map_err(|_| lineno)?;
        if !value.is_finite() {
            return Err(lineno);
        }
        out.push((name.to_owned(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("natix_queries_total");
        let b = reg.counter("natix_queries_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying atomic");
        assert_eq!(reg.value("natix_queries_total"), Some(3));

        let g = reg.gauge("natix_mem_high_water_bytes");
        g.record_max(100);
        g.record_max(50);
        assert_eq!(g.get(), 100);
        g.set(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn labelled_series_share_one_type_header() {
        let reg = MetricsRegistry::new();
        reg.counter("natix_query_errors_total{class=\"memory\"}").add(2);
        reg.counter("natix_query_errors_total{class=\"tuples\"}").inc();
        let text = reg.render_text();
        assert_eq!(text.matches("# TYPE natix_query_errors_total counter").count(), 1, "{text}");
        assert!(text.contains("natix_query_errors_total{class=\"memory\"} 2\n"), "{text}");
        assert!(text.contains("natix_query_errors_total{class=\"tuples\"} 1\n"), "{text}");
    }

    #[test]
    fn histogram_renders_as_summary() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("natix_query_latency_nanos");
        for v in 1..=10u64 {
            h.record(v);
        }
        let text = reg.render_text();
        assert!(text.contains("# TYPE natix_query_latency_nanos summary"), "{text}");
        assert!(text.contains("natix_query_latency_nanos{quantile=\"0.5\"} 5\n"), "{text}");
        assert!(text.contains("natix_query_latency_nanos_count 10\n"), "{text}");
        assert!(text.contains("natix_query_latency_nanos_sum 55\n"), "{text}");
        assert!(text.contains("natix_query_latency_nanos_max 10\n"), "{text}");
    }

    #[test]
    fn exposition_parses_back() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(7);
        reg.gauge("b_bytes").set(12);
        reg.histogram("c_nanos").record(100);
        let parsed = parse_exposition(&reg.render_text()).expect("well-formed");
        let lookup = |n: &str| parsed.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(lookup("a_total"), Some(7.0));
        assert_eq!(lookup("b_bytes"), Some(12.0));
        assert_eq!(lookup("c_nanos_count"), Some(1.0));
        assert!(lookup("c_nanos{quantile=\"0.99\"}").is_some());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert_eq!(parse_exposition("name_only\n"), Err(1));
        assert_eq!(parse_exposition("ok 1\nbad value\n"), Err(2));
        assert_eq!(parse_exposition("# TYPE x bogus\n"), Err(1));
        assert!(parse_exposition("# HELP x whatever\nx 1\n").is_ok());
    }

    #[test]
    fn reset_preserves_registration() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n_total");
        let h = reg.histogram("h_nanos");
        c.add(5);
        h.record(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(reg.value("n_total"), Some(1), "handle still wired after reset");
    }
}
