//! Log-linear latency histogram (HDR-style): every `u64` value maps to
//! one of 976 fixed buckets — the 16 exact values `0..16`, then 16
//! linear sub-buckets per power of two. Recording is lock-free (one
//! relaxed atomic increment per sample plus the count/sum/max updates),
//! the memory footprint is fixed (~8 KiB per histogram), and the
//! relative quantile error is bounded by the sub-bucket width: at most
//! 1/16 = 6.25 %. The maximum is tracked exactly.
//!
//! Percentile readout is deterministic: `value_at_percentile(q)` walks
//! the cumulative bucket counts to the bucket containing the
//! `ceil(q·count)`-th sample and returns that bucket's upper bound,
//! clamped to the exact observed maximum — so `value_at_percentile(1.0)
//! == max()` always, and hand-computed assertions at bucket edges are
//! stable (see the tests).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-buckets per power of two (and the number of exact low values).
const SUB: u64 = 16;
/// log2(SUB).
const SUB_BITS: u32 = 4;
/// Total bucket count: 16 exact values + 60 octaves × 16 sub-buckets.
pub const BUCKETS: usize = (SUB as usize) + 60 * (SUB as usize);

/// Bucket index of `v` (total order preserving).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    octave * SUB as usize + sub
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        return (i as u64, i as u64);
    }
    let octave = (i >> SUB_BITS) as u32; // ≥ 1
    let sub = (i as u64) & (SUB - 1);
    let width = 1u64 << (octave - 1);
    let lo = (SUB + sub) << (octave - 1);
    (lo, lo + (width - 1))
}

/// Shared histogram state. All counters are atomics so Exchange workers
/// and concurrent sessions can record into one histogram without locks.
pub struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Minimum tracked as `u64::MAX - min` so `fetch_max` works;
    /// `u64::MAX` sentinel means "no samples".
    min_inv: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min_inv: AtomicU64::new(0),
        }
    }
}

/// A lock-free log-linear histogram handle (cheaply clonable).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistogramCore::new()))
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.min_inv.fetch_max(u64::MAX - v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_nanos(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let inv = self.0.min_inv.load(Ordering::Relaxed);
        if self.count() == 0 {
            0
        } else {
            u64::MAX - inv
        }
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest sample, clamped to
    /// the exact observed maximum. Returns 0 for an empty histogram.
    pub fn value_at_percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max());
            }
        }
        self.max()
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        let c = &self.0;
        for b in &c.buckets {
            b.store(0, Ordering::Relaxed);
        }
        c.count.store(0, Ordering::Relaxed);
        c.sum.store(0, Ordering::Relaxed);
        c.max.store(0, Ordering::Relaxed);
        c.min_inv.store(0, Ordering::Relaxed);
    }

    /// Point-in-time summary (count, sum, min/mean/max, key quantiles).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.value_at_percentile(0.50),
            p90: self.value_at_percentile(0.90),
            p95: self.value_at_percentile(0.95),
            p99: self.value_at_percentile(0.99),
        }
    }
}

/// A snapshot of a histogram's headline statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket-resolution, clamped to max).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_boundaries_hand_computed() {
        // First octave [16, 32): width-1 buckets 16..32.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_bounds(16), (16, 16));
        assert_eq!(bucket_bounds(31), (31, 31));
        // Second octave [32, 64): width-2 buckets.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32, "32 and 33 share a width-2 bucket");
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_bounds(32), (32, 33));
        assert_eq!(bucket_bounds(47), (62, 63));
        // Third octave [64, 128): width-4 buckets.
        assert_eq!(bucket_index(64), 48);
        assert_eq!(bucket_index(67), 48);
        assert_eq!(bucket_index(68), 49);
        assert_eq!(bucket_bounds(48), (64, 67));
        // Index is monotone across every octave edge.
        for v in 1..100_000u64 {
            assert!(bucket_index(v) >= bucket_index(v - 1), "v={v}");
        }
        // The top bucket covers u64::MAX.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let (_, hi) = bucket_bounds(BUCKETS - 1);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn percentiles_at_bucket_edges_hand_computed() {
        // 100 exact samples 0..100? No: keep everything under 16 so every
        // bucket is exact and the percentiles are exact too.
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        // rank(0.5) = ceil(5) = 5 → value 5; rank(0.9) = 9 → value 9.
        assert_eq!(h.value_at_percentile(0.50), 5);
        assert_eq!(h.value_at_percentile(0.90), 9);
        assert_eq!(h.value_at_percentile(0.99), 10);
        assert_eq!(h.value_at_percentile(1.0), 10);
        // q = 0 still returns the smallest sample's bucket.
        assert_eq!(h.value_at_percentile(0.0), 1);
    }

    #[test]
    fn percentile_reports_bucket_upper_bound_clamped_to_max() {
        let h = Histogram::new();
        h.record(32); // bucket [32, 33]
        assert_eq!(h.value_at_percentile(0.5), 32, "upper bound 33 clamps to the exact max 32");
        h.record(33); // same bucket
        assert_eq!(h.value_at_percentile(1.0), 33);
        // A second sample far away: median is the first bucket's upper
        // bound (33), now no longer clamped.
        let h = Histogram::new();
        h.record(32);
        h.record(1000);
        assert_eq!(h.value_at_percentile(0.5), 33, "bucket upper bound");
        assert_eq!(h.max(), 1000);
        // 1000 lands in octave 6 ([512,1024), width 32): lo = (16+15)<<5
        // = 992, hi = 1023 → clamped to 1000.
        assert_eq!(bucket_bounds(bucket_index(1000)), (992, 1023));
        assert_eq!(h.value_at_percentile(1.0), 1000);
    }

    #[test]
    fn relative_error_bounded_by_sub_bucket_width() {
        let h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
            assert!(
                (hi - lo) as f64 <= v as f64 / 16.0 + 1.0,
                "bucket width {} too wide for {v}",
                hi - lo
            );
            h.record(v);
        }
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        h.record(5);
        h.record(500);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.value_at_percentile(0.5), 0);
    }

    #[test]
    fn summary_is_consistent() {
        let h = Histogram::new();
        for v in 1..=4u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2);
        assert_eq!(s.max, 4);
    }
}
