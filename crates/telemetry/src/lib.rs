//! Engine-wide telemetry (the cross-query complement of per-query
//! EXPLAIN ANALYZE): a [`MetricsRegistry`] of lock-free counters, gauges
//! and log-linear latency [`Histogram`]s, a structured JSONL
//! [`QueryLogger`] with slow-query EXPLAIN capture, and a Prometheus-style
//! text exposition.
//!
//! The [`Telemetry`] struct bundles the three and knows how to fold one
//! [`AnalyzeReport`] into the registry ([`Telemetry::record_query`]) —
//! that single entry point is what the `natix` facade calls after every
//! query, so every layer's existing per-query counters (compile-phase
//! trace, operator profile, governor accounting, buffer-manager deltas,
//! Exchange statistics) aggregate into engine lifetime totals without
//! new instrumentation inside the operators themselves.
//!
//! Ownership: the registry lives on the engine value, not in a process
//! global. Two engines in one process have two registries; the coming
//! `Session`/`Engine` split inherits the same design. Overhead: when an
//! engine has no `Telemetry` attached, the query path costs exactly one
//! `Option` branch (asserted by a test); when attached, the per-query
//! cost is a handful of relaxed atomic adds — no locks on the tuple path.

pub mod histogram;
pub mod querylog;
pub mod registry;

use std::sync::Arc;
use std::time::Duration;

use algebra::QueryError;
use nqe::AnalyzeReport;

pub use histogram::{Histogram, HistogramSummary, BUCKETS};
pub use querylog::{expr_hash, LoggedQuery, QueryLogger, QueryRecord};
pub use registry::{parse_exposition, Counter, Gauge, MetricsRegistry};

/// The compile/execute pipeline phases, pre-registered so the exposition
/// shows a stable series set from the first scrape.
const PHASES: [&str; 8] = [
    "parse",
    "semantic",
    "fold",
    "translate",
    "optimize",
    "prune",
    "codegen",
    "execute",
];

/// Typed-error classes, pre-registered like the phases.
const ERROR_CLASSES: [&str; 7] = [
    "memory",
    "tuples",
    "deadline",
    "cancelled",
    "storage_io",
    "storage_corrupt",
    "compile",
];

/// The metric class of a typed runtime error.
pub fn error_class(e: &QueryError) -> &'static str {
    match e {
        QueryError::MemoryExceeded { .. } => "memory",
        QueryError::TuplesExceeded { .. } => "tuples",
        QueryError::DeadlineExceeded { .. } => "deadline",
        QueryError::Cancelled => "cancelled",
        QueryError::Storage { io: true, .. } => "storage_io",
        QueryError::Storage { io: false, .. } => "storage_corrupt",
    }
}

/// Pre-registered handles for every fixed-name series the engine
/// records. Label-bearing series (per-phase, per-rewrite, per-class)
/// resolve through the registry at record time — that path locks once
/// per query, never per tuple.
pub struct EngineMetrics {
    /// `natix_queries_total`.
    pub queries_total: Counter,
    /// `natix_query_latency_nanos` (end-to-end, compile + execute).
    pub query_latency_nanos: Histogram,
    /// `natix_result_items_total` (nodes for node-sets, 1 per scalar).
    pub result_items_total: Counter,
    /// `natix_slow_queries_total`.
    pub slow_queries_total: Counter,
    /// `natix_operator_opens_total` (profiled runs only).
    pub operator_opens_total: Counter,
    /// `natix_operator_tuples_total` (profiled runs only).
    pub operator_tuples_total: Counter,
    /// `natix_mem_charged_bytes_total` (governor cumulative charges).
    pub mem_charged_bytes_total: Counter,
    /// `natix_mem_high_water_bytes` (max over all queries so far).
    pub mem_high_water_bytes: Gauge,
    /// `natix_tuples_charged_total`.
    pub tuples_charged_total: Counter,
    /// `natix_tuples_high_water` (max per-query tuple charge).
    pub tuples_high_water: Gauge,
    /// `natix_parse_docs_total`.
    pub parse_docs_total: Counter,
    /// `natix_parse_bytes_total`.
    pub parse_bytes_total: Counter,
    /// `natix_parse_nodes_total`.
    pub parse_nodes_total: Counter,
    /// `natix_page_hits_total` (buffer-manager, aggregated across queries).
    pub page_hits_total: Counter,
    /// `natix_page_reads_total`.
    pub page_reads_total: Counter,
    /// `natix_page_evictions_total`.
    pub page_evictions_total: Counter,
    /// `natix_pages_verified_total`.
    pub pages_verified_total: Counter,
    /// `natix_checksum_failures_total`.
    pub checksum_failures_total: Counter,
    /// `natix_exchange_runs_total` (Exchange open/drain cycles).
    pub exchange_runs_total: Counter,
    /// `natix_exchange_source_tuples_total`.
    pub exchange_source_tuples_total: Counter,
    /// `natix_exchange_worker_tuples_total`.
    pub exchange_worker_tuples_total: Counter,
    /// `natix_exchange_chunks_claimed_total` (work-stealing claims).
    pub exchange_chunks_claimed_total: Counter,
    /// `natix_exchange_imbalance_hundredths` (per-run max/avg worker
    /// tuples, ×100: 100 = perfectly balanced).
    pub exchange_imbalance_hundredths: Histogram,
    /// `natix_plan_cache_hits_total` (compiled-plan cache lookups served
    /// from the cache).
    pub plan_cache_hits_total: Counter,
    /// `natix_plan_cache_misses_total`.
    pub plan_cache_misses_total: Counter,
    /// `natix_plan_cache_evictions_total` (LRU evictions under the entry
    /// or byte capacity).
    pub plan_cache_evictions_total: Counter,
    /// `natix_plan_cache_inserts_total`.
    pub plan_cache_inserts_total: Counter,
    /// `natix_plan_cache_entries` (current resident plans).
    pub plan_cache_entries: Gauge,
    /// `natix_plan_cache_bytes` (current governor-charged plan bytes).
    pub plan_cache_bytes: Gauge,
    /// `natix_plan_cache_stale_evictions_total` (entries dropped eagerly
    /// because an epoch publish superseded their statistics fingerprint).
    pub plan_cache_stale_evictions_total: Counter,
    /// `natix_service_rejected_total` (queries refused by admission
    /// control: worker-pool queue full).
    pub service_rejected_total: Counter,
    /// `natix_store_epoch` (the most recently published document epoch).
    pub store_epoch: Gauge,
    /// `natix_epoch_readers` (readers currently pinning a snapshot).
    pub epoch_readers: Gauge,
    /// `natix_index_repairs_total` (structural-index repair operations
    /// folded in at epoch publish: incremental splices + relabels +
    /// full renumbers).
    pub index_repairs_total: Counter,
    /// `natix_optimizer_decisions_total` (cost-based alternatives
    /// chosen, summed over every optimized compile).
    pub optimizer_decisions_total: Counter,
    /// `natix_optimizer_est_error_pct` (per-query mean absolute
    /// cardinality-estimation error, percent — profiled cost-based runs
    /// only; the estimator's accuracy over time).
    pub optimizer_est_error_pct: Histogram,
}

impl EngineMetrics {
    fn register(reg: &MetricsRegistry) -> EngineMetrics {
        let m = EngineMetrics {
            queries_total: reg.counter("natix_queries_total"),
            query_latency_nanos: reg.histogram("natix_query_latency_nanos"),
            result_items_total: reg.counter("natix_result_items_total"),
            slow_queries_total: reg.counter("natix_slow_queries_total"),
            operator_opens_total: reg.counter("natix_operator_opens_total"),
            operator_tuples_total: reg.counter("natix_operator_tuples_total"),
            mem_charged_bytes_total: reg.counter("natix_mem_charged_bytes_total"),
            mem_high_water_bytes: reg.gauge("natix_mem_high_water_bytes"),
            tuples_charged_total: reg.counter("natix_tuples_charged_total"),
            tuples_high_water: reg.gauge("natix_tuples_high_water"),
            parse_docs_total: reg.counter("natix_parse_docs_total"),
            parse_bytes_total: reg.counter("natix_parse_bytes_total"),
            parse_nodes_total: reg.counter("natix_parse_nodes_total"),
            page_hits_total: reg.counter("natix_page_hits_total"),
            page_reads_total: reg.counter("natix_page_reads_total"),
            page_evictions_total: reg.counter("natix_page_evictions_total"),
            pages_verified_total: reg.counter("natix_pages_verified_total"),
            checksum_failures_total: reg.counter("natix_checksum_failures_total"),
            exchange_runs_total: reg.counter("natix_exchange_runs_total"),
            exchange_source_tuples_total: reg.counter("natix_exchange_source_tuples_total"),
            exchange_worker_tuples_total: reg.counter("natix_exchange_worker_tuples_total"),
            exchange_chunks_claimed_total: reg.counter("natix_exchange_chunks_claimed_total"),
            exchange_imbalance_hundredths: reg.histogram("natix_exchange_imbalance_hundredths"),
            plan_cache_hits_total: reg.counter("natix_plan_cache_hits_total"),
            plan_cache_misses_total: reg.counter("natix_plan_cache_misses_total"),
            plan_cache_evictions_total: reg.counter("natix_plan_cache_evictions_total"),
            plan_cache_inserts_total: reg.counter("natix_plan_cache_inserts_total"),
            plan_cache_entries: reg.gauge("natix_plan_cache_entries"),
            plan_cache_bytes: reg.gauge("natix_plan_cache_bytes"),
            plan_cache_stale_evictions_total: reg.counter("natix_plan_cache_stale_evictions_total"),
            service_rejected_total: reg.counter("natix_service_rejected_total"),
            store_epoch: reg.gauge("natix_store_epoch"),
            epoch_readers: reg.gauge("natix_epoch_readers"),
            index_repairs_total: reg.counter("natix_index_repairs_total"),
            optimizer_decisions_total: reg.counter("natix_optimizer_decisions_total"),
            optimizer_est_error_pct: reg.histogram("natix_optimizer_est_error_pct"),
        };
        for phase in PHASES {
            reg.counter(&phase_series(phase));
        }
        for class in ERROR_CLASSES {
            reg.counter(&error_series(class));
        }
        m
    }
}

fn phase_series(phase: &str) -> String {
    format!("natix_compile_nanos_total{{phase=\"{phase}\"}}")
}

fn error_series(class: &str) -> String {
    format!("natix_query_errors_total{{class=\"{class}\"}}")
}

fn rewrite_series(rewrite: &str) -> String {
    format!("natix_rewrites_fired_total{{rewrite=\"{rewrite}\"}}")
}

/// The engine's telemetry bundle: registry + pre-registered metric
/// handles + query logger. Attach one to an `XPathEngine` (wrapped in
/// `Arc` so sessions can share it) to aggregate every query.
pub struct Telemetry {
    /// The metrics registry (exposition source).
    pub registry: MetricsRegistry,
    /// Pre-registered fixed-name handles.
    pub metrics: EngineMetrics,
    /// The structured query log.
    pub logger: QueryLogger,
    /// Snapshot barrier between per-query folds and `reset_metrics`:
    /// every fold holds the read side for its (short) duration, a reset
    /// takes the write side. One engine used to mean one `:metrics
    /// reset` caller; with sessions sharing the registry, an unguarded
    /// reset could land in the middle of another session's fold and
    /// zero half of it — leaving, e.g., `natix_queries_total` and the
    /// latency histogram count permanently disagreeing. The lock makes
    /// each fold atomic with respect to resets; the per-tuple hot path
    /// never touches it.
    fold_lock: parking_lot::RwLock<()>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("queries", &self.metrics.queries_total.get())
            .field("slow_threshold", &self.logger.slow_threshold())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Telemetry with an in-memory query log and no slow threshold.
    pub fn new() -> Telemetry {
        Telemetry::with_logger(QueryLogger::in_memory(None))
    }

    /// Telemetry around an explicitly configured query logger.
    pub fn with_logger(logger: QueryLogger) -> Telemetry {
        let registry = MetricsRegistry::new();
        let metrics = EngineMetrics::register(&registry);
        Telemetry {
            registry,
            metrics,
            logger,
            fold_lock: parking_lot::RwLock::new(()),
        }
    }

    /// Convenience: a shareable handle.
    pub fn shared(self) -> Arc<Telemetry> {
        Arc::new(self)
    }

    /// Whether queries should run profiled even outside EXPLAIN ANALYZE:
    /// true when a slow threshold is set, because capturing a slow
    /// query's EXPLAIN requires the profile to exist at capture time.
    pub fn wants_profile(&self) -> bool {
        self.logger.slow_threshold().is_some()
    }

    /// Render the Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }

    /// Zero every metric (registration and the query log survive).
    ///
    /// Atomic-snapshot semantics: the reset waits for in-flight query
    /// folds to finish and blocks new ones for its duration, so every
    /// query's counters land entirely before or entirely after the
    /// reset — cross-counter invariants (e.g. `natix_queries_total` ==
    /// latency histogram count) hold at all times. Safe to call from a
    /// REPL `:metrics reset` while other sessions are mid-query.
    pub fn reset_metrics(&self) {
        let _barrier = self.fold_lock.write();
        self.registry.reset();
    }

    /// Run `f` with folds quiesced (the same write barrier a reset
    /// takes): no query fold is in flight while `f` runs, so reads of
    /// multiple counters inside `f` observe a consistent snapshot.
    pub fn quiesced<R>(&self, f: impl FnOnce() -> R) -> R {
        let _barrier = self.fold_lock.write();
        f()
    }

    /// Fold a parsed document into the parser counters.
    pub fn record_parse(&self, bytes: u64, nodes: u64) {
        let _fold = self.fold_lock.read();
        let m = &self.metrics;
        m.parse_docs_total.inc();
        m.parse_bytes_total.add(bytes);
        m.parse_nodes_total.add(nodes);
    }

    /// Fold one executed query into the registry and the query log.
    /// `error` is the typed runtime error if execution stopped (the
    /// report's `resources.error` only covers governor trips, so the
    /// caller passes the authoritative outcome). Returns the stamped log
    /// record (whose `slow` flag the caller can surface).
    pub fn record_query(
        &self,
        latency: Duration,
        report: &AnalyzeReport,
        error: Option<&QueryError>,
    ) -> LoggedQuery {
        let _fold = self.fold_lock.read();
        let m = &self.metrics;
        let latency_nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        m.queries_total.inc();
        m.query_latency_nanos.record(latency_nanos);

        // Compile/execute phase timings and fired rewrites.
        for phase in &report.trace.phases {
            self.registry.counter(&phase_series(&phase.name)).add(phase.nanos);
        }
        for rewrite in &report.trace.rewrites {
            let (name, count) = split_rewrite(rewrite);
            self.registry.counter(&rewrite_series(name)).add(count);
        }

        // Cost-based optimizer: decisions in force for this query (cache
        // hits replay the compile-time record) and, when the run was
        // profiled, the estimator's mean absolute cardinality error.
        if let Some(opt) = &report.trace.optimizer {
            m.optimizer_decisions_total.add(opt.decisions.len() as u64);
        }
        if let Some(err) = report.mean_est_error_pct() {
            m.optimizer_est_error_pct.record(err as u64);
        }

        // Operator profile (profiled runs; plain runs contribute zero).
        let mut opens = 0u64;
        let tuples = report.profile.total_tuples();
        for e in &report.profile.entries {
            opens += e.stats.lock().opens;
        }
        m.operator_opens_total.add(opens);
        m.operator_tuples_total.add(tuples);

        // Governor accounting.
        let r = &report.resources;
        m.mem_charged_bytes_total.add(r.charged_bytes);
        m.mem_high_water_bytes.record_max(r.high_water_bytes);
        m.tuples_charged_total.add(r.tuples_charged);
        m.tuples_high_water.record_max(r.tuples_charged);

        // Buffer-manager deltas (paged stores only).
        if let Some(s) = &report.storage {
            m.page_hits_total.add(s.page_hits);
            m.page_reads_total.add(s.pages_read);
            m.page_evictions_total.add(s.evictions);
            m.pages_verified_total.add(s.pages_verified);
            m.checksum_failures_total.add(s.checksum_failures);
        }

        // Exchange statistics (profiled parallel runs only).
        for stats in &report.profile.parallel {
            let p = stats.lock();
            m.exchange_runs_total.add(p.runs);
            m.exchange_source_tuples_total.add(p.source_tuples);
            m.exchange_worker_tuples_total.add(p.worker_tuples.iter().sum());
            m.exchange_chunks_claimed_total.add(p.worker_chunks.iter().sum());
            let max = p.worker_tuples.iter().copied().max().unwrap_or(0);
            let avg = if p.workers > 0 {
                p.worker_tuples.iter().sum::<u64>() as f64 / p.workers as f64
            } else {
                0.0
            };
            if avg > 0.0 {
                m.exchange_imbalance_hundredths.record((max as f64 * 100.0 / avg) as u64);
            }
        }

        // Outcome.
        if let Some(e) = error {
            self.registry.counter(&error_series(error_class(e))).inc();
        } else {
            m.result_items_total.add(report.result_count as u64);
        }

        // Query log (+ slow-query EXPLAIN capture).
        let slow = self.logger.is_slow(latency);
        if slow {
            m.slow_queries_total.inc();
        }
        self.logger.record(QueryRecord {
            query: report.trace.query.clone(),
            outcome: error.map_or_else(|| "ok".to_owned(), |e| error_class(e).to_owned()),
            latency_nanos,
            result_kind: report.result_kind.to_owned(),
            result_count: report.result_count as u64,
            tuples,
            tuples_charged: r.tuples_charged,
            mem_high_water_bytes: r.high_water_bytes,
            charged_bytes: r.charged_bytes,
            explain: slow.then(|| report.to_json()),
        })
    }

    /// Fold a query that failed to compile: counts against
    /// `natix_queries_total` and the `compile` error class, and logs a
    /// record with no profile/resource payload.
    pub fn record_compile_error(&self, query: &str, latency: Duration, detail: &str) {
        let _fold = self.fold_lock.read();
        let m = &self.metrics;
        let latency_nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        m.queries_total.inc();
        m.query_latency_nanos.record(latency_nanos);
        self.registry.counter(&error_series("compile")).inc();
        if self.logger.is_slow(latency) {
            m.slow_queries_total.inc();
        }
        self.logger.record(QueryRecord {
            query: query.to_owned(),
            outcome: "compile".to_owned(),
            latency_nanos,
            result_kind: "error".to_owned(),
            result_count: 0,
            tuples: 0,
            tuples_charged: 0,
            mem_high_water_bytes: 0,
            charged_bytes: 0,
            explain: Some(nqe::Json::obj(vec![(
                "compile_error",
                nqe::Json::Str(detail.to_owned()),
            )])),
        });
    }
}

/// Split a fired-rewrite label (`"memoize-inner ×2"`) into its name and
/// count (`("memoize-inner", 2)`; labels without a count mean 1).
fn split_rewrite(label: &str) -> (&str, u64) {
    match label.rsplit_once(" ×") {
        Some((name, n)) => (name, n.parse().unwrap_or(1)),
        None => (label, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rewrite_labels() {
        assert_eq!(split_rewrite("memoize-inner ×2"), ("memoize-inner", 2));
        assert_eq!(split_rewrite("constant-fold"), ("constant-fold", 1));
        assert_eq!(split_rewrite("smart-aggregation"), ("smart-aggregation", 1));
    }

    #[test]
    fn error_classes_cover_all_variants() {
        assert_eq!(error_class(&QueryError::MemoryExceeded { limit: 1, requested: 2 }), "memory");
        assert_eq!(error_class(&QueryError::TuplesExceeded { limit: 1 }), "tuples");
        assert_eq!(error_class(&QueryError::DeadlineExceeded { timeout_millis: 1 }), "deadline");
        assert_eq!(error_class(&QueryError::Cancelled), "cancelled");
        assert_eq!(
            error_class(&QueryError::Storage { detail: "d".into(), io: true }),
            "storage_io"
        );
        assert_eq!(
            error_class(&QueryError::Storage { detail: "d".into(), io: false }),
            "storage_corrupt"
        );
    }

    #[test]
    fn new_telemetry_pre_registers_stable_series() {
        let t = Telemetry::new();
        let text = t.render_text();
        assert!(text.contains("natix_queries_total 0"), "{text}");
        assert!(text.contains("natix_compile_nanos_total{phase=\"parse\"} 0"), "{text}");
        assert!(text.contains("natix_compile_nanos_total{phase=\"optimize\"} 0"), "{text}");
        assert!(text.contains("natix_query_errors_total{class=\"memory\"} 0"), "{text}");
        assert!(text.contains("natix_optimizer_decisions_total 0"), "{text}");
        assert!(text.contains("natix_optimizer_est_error_pct"), "{text}");
        parse_exposition(&text).expect("pre-registered exposition parses");
    }

    #[test]
    fn compile_error_recording() {
        let t = Telemetry::new();
        t.record_compile_error("/a[", Duration::from_micros(5), "unbalanced bracket");
        assert_eq!(t.registry.value("natix_queries_total"), Some(1));
        assert_eq!(t.registry.value(&error_series("compile")), Some(1),);
        assert_eq!(t.logger.logged(), 1);
    }
}
