//! The naive configuration: no intermediate duplicate elimination.
//!
//! With duplicate context nodes preserved between steps, the work of a
//! step multiplies with the duplicates produced by its predecessors —
//! the exponential behaviour Gottlob et al. diagnosed in early XPath
//! engines (paper §1/§4). The E7 experiment (`bench` crate) measures this
//! against the polynomial algebraic plans.

use xmlstore::{NodeId, XmlStore};

use algebra::QueryOutput;

use crate::contextlist::{InterpError, InterpOptions, Interpreter};

/// Evaluate with the naive strategy (no intermediate dedup).
pub fn evaluate_naive(
    store: &dyn XmlStore,
    query: &str,
    ctx: NodeId,
) -> Result<QueryOutput, InterpError> {
    Interpreter::new(store, InterpOptions::naive()).evaluate(query, ctx)
}

/// Number of context nodes a naive evaluation would carry after each
/// step (diagnostic used by tests and the blow-up experiment).
pub fn naive_context_growth(store: &dyn XmlStore, query: &str) -> Result<Vec<usize>, InterpError> {
    use xpath_syntax::{Expr, PathStart};
    let ast = xpath_syntax::frontend(query).map_err(|e| InterpError { message: e.to_string() })?;
    let Expr::Path(path) = &ast else {
        return Err(InterpError { message: "expected a location path".into() });
    };
    let mut cur: Vec<NodeId> = match path.start {
        PathStart::Root => vec![store.root()],
        _ => vec![store.root()],
    };
    let interp = Interpreter::new(store, InterpOptions::naive());
    let mut sizes = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        let mut next = Vec::new();
        for &cn in &cur {
            let step_path = Expr::Path(xpath_syntax::PathExpr {
                start: PathStart::ContextNode,
                steps: vec![step.clone()],
            });
            if let QueryOutput::Nodes(ns) = interp.evaluate_ast(&step_path, cn)? {
                next.extend(ns);
            }
        }
        sizes.push(next.len());
        cur = next;
    }
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::parse_document;

    #[test]
    fn duplicates_multiply_without_dedup() {
        // <r><a><b/><b/></a></r> — b/parent::a/child::b from both b's
        // yields 4 context nodes naively, 2 with dedup.
        let s = parse_document("<r><a><b/><b/></a></r>").unwrap();
        let growth = naive_context_growth(&s, "/r/a/b/parent::a/child::b").unwrap();
        assert_eq!(growth, vec![1, 1, 2, 2, 4]);
    }

    #[test]
    fn naive_results_still_correct() {
        let s = parse_document("<r><a><b/><b/></a></r>").unwrap();
        let out = evaluate_naive(&s, "count(/r/a/b/parent::a/child::b)", s.root()).unwrap();
        // count() sees the de-duplicated set (final semantics preserved).
        assert_eq!(out, QueryOutput::Num(2.0));
    }
}
