//! A main-memory, context-list XPath 1.0 interpreter — the baseline the
//! paper compares against (Xalan / xsltproc, §6). It evaluates location
//! steps over explicit context lists, recursing per expression.
//!
//! Two configurations:
//! * **context-list** (default): intermediate node lists are sorted into
//!   document order and de-duplicated after every step — the behaviour of
//!   a well-implemented interpreter;
//! * **naive**: no intermediate de-duplication (duplicates multiply
//!   across steps) — the pre-Gottlob exponential evaluation strategy the
//!   paper's improved translation is measured against.

use std::collections::HashMap;

use xmlstore::{axis_nodes, Axis, NodeId, NodeKind, XmlStore};
use xpath_syntax::xvalue;
use xpath_syntax::{
    CompOp, Expr, KindTest, NodeTest, PathExpr, PathStart, Predicate, Step, XPathType,
};

use algebra::{QueryOutput, Value};

/// Interpreter configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterpOptions {
    /// De-duplicate (and document-order) intermediate context lists after
    /// every location step.
    pub dedup_between_steps: bool,
}

impl InterpOptions {
    /// Xalan-like behaviour.
    pub fn context_list() -> InterpOptions {
        InterpOptions { dedup_between_steps: true }
    }

    /// Worst-case naive behaviour.
    pub fn naive() -> InterpOptions {
        InterpOptions { dedup_between_steps: false }
    }
}

/// Errors raised by the interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

fn err<T>(m: impl Into<String>) -> Result<T, InterpError> {
    Err(InterpError { message: m.into() })
}

/// Evaluation context: node, position, size.
#[derive(Clone, Copy, Debug)]
struct Ctx {
    node: NodeId,
    pos: usize,
    size: usize,
}

/// The interpreter.
pub struct Interpreter<'a> {
    store: &'a dyn XmlStore,
    vars: &'a HashMap<String, Value>,
    opts: InterpOptions,
}

thread_local! {
    static NO_VARS: &'static HashMap<String, Value> =
        Box::leak(Box::new(HashMap::new()));
}

impl<'a> Interpreter<'a> {
    /// New interpreter over `store`.
    pub fn new(store: &'a dyn XmlStore, opts: InterpOptions) -> Interpreter<'a> {
        Interpreter { store, vars: NO_VARS.with(|v| *v), opts }
    }

    /// Provide `$` variable bindings.
    pub fn with_vars(
        store: &'a dyn XmlStore,
        opts: InterpOptions,
        vars: &'a HashMap<String, Value>,
    ) -> Interpreter<'a> {
        Interpreter { store, vars, opts }
    }

    /// Evaluate a query string with `ctx` as the context node. The input
    /// goes through the same front-end as the algebraic engine (parse,
    /// semantic analysis, constant folding).
    pub fn evaluate(&self, query: &str, ctx: NodeId) -> Result<QueryOutput, InterpError> {
        let ast =
            xpath_syntax::frontend(query).map_err(|e| InterpError { message: e.to_string() })?;
        self.eval(&ast, Ctx { node: ctx, pos: 1, size: 1 })
    }

    /// Evaluate an analyzed AST.
    pub fn evaluate_ast(&self, ast: &Expr, ctx: NodeId) -> Result<QueryOutput, InterpError> {
        self.eval(ast, Ctx { node: ctx, pos: 1, size: 1 })
    }

    fn eval(&self, e: &Expr, ctx: Ctx) -> Result<QueryOutput, InterpError> {
        Ok(match e {
            Expr::Number(n) => QueryOutput::Num(*n),
            Expr::Literal(s) => QueryOutput::Str(s.clone()),
            Expr::VarRef(v) => match self.vars.get(v) {
                Some(Value::Bool(b)) => QueryOutput::Bool(*b),
                Some(Value::Num(n)) => QueryOutput::Num(*n),
                Some(Value::Str(s)) => QueryOutput::Str(s.to_string()),
                Some(Value::Node(n)) => QueryOutput::Nodes(vec![*n]),
                _ => return err(format!("unbound variable ${v}")),
            },
            Expr::Or(a, b) => QueryOutput::Bool(self.eval_bool(a, ctx)? || self.eval_bool(b, ctx)?),
            Expr::And(a, b) => {
                QueryOutput::Bool(self.eval_bool(a, ctx)? && self.eval_bool(b, ctx)?)
            }
            Expr::Compare(op, a, b) => {
                let va = self.eval(a, ctx)?;
                let vb = self.eval(b, ctx)?;
                QueryOutput::Bool(self.compare(*op, &va, &vb))
            }
            Expr::Arith(op, a, b) => {
                let x = self.eval_num(a, ctx)?;
                let y = self.eval_num(b, ctx)?;
                QueryOutput::Num(op.apply(x, y))
            }
            Expr::Neg(a) => QueryOutput::Num(-self.eval_num(a, ctx)?),
            Expr::Union(parts) => {
                let mut nodes = Vec::new();
                for p in parts {
                    nodes.extend(self.eval_nodes(p, ctx)?);
                }
                self.order_dedup(&mut nodes);
                QueryOutput::Nodes(nodes)
            }
            Expr::Path(p) => QueryOutput::Nodes(self.eval_path(p, ctx)?),
            Expr::Filter(inner, preds) => {
                let mut nodes = self.eval_nodes(inner, ctx)?;
                // Filter-expression predicates run in document order.
                self.order_dedup(&mut nodes);
                for p in preds {
                    nodes = self.filter(nodes, p)?;
                }
                QueryOutput::Nodes(nodes)
            }
            Expr::FunctionCall(name, args) => self.eval_call(name, args, ctx)?,
        })
    }

    fn eval_bool(&self, e: &Expr, ctx: Ctx) -> Result<bool, InterpError> {
        Ok(self.eval(e, ctx)?.to_bool())
    }

    fn eval_num(&self, e: &Expr, ctx: Ctx) -> Result<f64, InterpError> {
        Ok(self.to_num(&self.eval(e, ctx)?))
    }

    fn eval_str(&self, e: &Expr, ctx: Ctx) -> Result<String, InterpError> {
        Ok(self.to_str(&self.eval(e, ctx)?))
    }

    fn eval_nodes(&self, e: &Expr, ctx: Ctx) -> Result<Vec<NodeId>, InterpError> {
        match self.eval(e, ctx)? {
            QueryOutput::Nodes(ns) => Ok(ns),
            other => err(format!("expected a node-set, got {other:?}")),
        }
    }

    // ----- conversions ----------------------------------------------------

    fn to_str(&self, v: &QueryOutput) -> String {
        match v {
            QueryOutput::Nodes(ns) => {
                // First node in document order.
                ns.iter()
                    .min_by_key(|&&n| self.store.order(n))
                    .map(|&n| self.store.string_value(n))
                    .unwrap_or_default()
            }
            QueryOutput::Bool(b) => if *b { "true" } else { "false" }.to_owned(),
            QueryOutput::Num(n) => xvalue::number_to_string(*n),
            QueryOutput::Str(s) => s.clone(),
        }
    }

    fn to_num(&self, v: &QueryOutput) -> f64 {
        match v {
            QueryOutput::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            QueryOutput::Num(n) => *n,
            _ => xvalue::string_to_number(&self.to_str(v)),
        }
    }

    // ----- comparisons (XPath §3.4) ----------------------------------------

    fn compare(&self, op: CompOp, a: &QueryOutput, b: &QueryOutput) -> bool {
        use QueryOutput::*;
        match (a, b) {
            (Nodes(na), Nodes(nb)) => {
                // Existential over pairs of string-values.
                let svb: Vec<String> = nb.iter().map(|&n| self.store.string_value(n)).collect();
                na.iter().any(|&x| {
                    let sa = self.store.string_value(x);
                    svb.iter().any(|sb| match op {
                        CompOp::Eq => &sa == sb,
                        CompOp::Ne => &sa != sb,
                        _ => op.apply_numbers(
                            xvalue::string_to_number(&sa),
                            xvalue::string_to_number(sb),
                        ),
                    })
                })
            }
            (Nodes(ns), prim) | (prim, Nodes(ns)) => {
                let flipped = matches!(b, Nodes(_)) && !matches!(a, Nodes(_));
                let op = if flipped { op.flip() } else { op };
                match prim {
                    Bool(pb) => {
                        let eb = !ns.is_empty();
                        match op {
                            CompOp::Eq => eb == *pb,
                            CompOp::Ne => eb != *pb,
                            _ => op.apply_numbers(eb as u8 as f64, *pb as u8 as f64),
                        }
                    }
                    Num(pn) => ns.iter().any(|&n| {
                        op.apply_numbers(xvalue::string_to_number(&self.store.string_value(n)), *pn)
                    }),
                    Str(ps) => ns.iter().any(|&n| {
                        let sv = self.store.string_value(n);
                        match op {
                            CompOp::Eq => &sv == ps,
                            CompOp::Ne => &sv != ps,
                            _ => op.apply_numbers(
                                xvalue::string_to_number(&sv),
                                xvalue::string_to_number(ps),
                            ),
                        }
                    }),
                    Nodes(_) => unreachable!("matched above"),
                }
            }
            _ => {
                // Primitive vs primitive.
                match op {
                    CompOp::Eq | CompOp::Ne => {
                        let eq = match (a, b) {
                            (Bool(_), _) | (_, Bool(_)) => a.to_bool() == b.to_bool(),
                            (Num(_), _) | (_, Num(_)) => self.to_num(a) == self.to_num(b),
                            _ => self.to_str(a) == self.to_str(b),
                        };
                        if op == CompOp::Eq {
                            eq
                        } else {
                            !eq
                        }
                    }
                    _ => op.apply_numbers(self.to_num(a), self.to_num(b)),
                }
            }
        }
    }

    // ----- paths ------------------------------------------------------------

    fn order_dedup(&self, nodes: &mut Vec<NodeId>) {
        nodes.sort_by_key(|&n| self.store.order(n));
        nodes.dedup();
    }

    fn eval_path(&self, p: &PathExpr, ctx: Ctx) -> Result<Vec<NodeId>, InterpError> {
        let mut cur: Vec<NodeId> = match &p.start {
            PathStart::Root => vec![self.store.root()],
            PathStart::ContextNode => vec![ctx.node],
            PathStart::Expr(e) => self.eval_nodes(e, ctx)?,
        };
        for step in &p.steps {
            let mut next = Vec::new();
            for &cn in &cur {
                next.extend(self.eval_step(cn, step)?);
            }
            if self.opts.dedup_between_steps {
                self.order_dedup(&mut next);
            }
            cur = next;
        }
        if !self.opts.dedup_between_steps {
            // Naive mode still returns a set at the very end.
            self.order_dedup(&mut cur);
        }
        Ok(cur)
    }

    fn eval_step(&self, cn: NodeId, step: &Step) -> Result<Vec<NodeId>, InterpError> {
        let mut nodes: Vec<NodeId> = axis_nodes(self.store, step.axis, cn)
            .into_iter()
            .filter(|&n| self.node_test(n, step.axis, &step.node_test))
            .collect();
        for pred in &step.predicates {
            nodes = self.filter(nodes, pred)?;
        }
        Ok(nodes)
    }

    fn node_test(&self, n: NodeId, axis: Axis, test: &NodeTest) -> bool {
        let store = self.store;
        let principal = axis.principal_kind();
        match test {
            NodeTest::Name(name) => {
                store.kind(n) == principal
                    && store.intern_lookup(name) == store.name(n)
                    && store.name(n).is_some()
            }
            NodeTest::Wildcard => store.kind(n) == principal,
            NodeTest::NsWildcard(p) => {
                store.kind(n) == principal && store.node_name(n).starts_with(&format!("{p}:"))
            }
            NodeTest::Kind(KindTest::Node) => true,
            NodeTest::Kind(KindTest::Text) => store.kind(n) == NodeKind::Text,
            NodeTest::Kind(KindTest::Comment) => store.kind(n) == NodeKind::Comment,
            NodeTest::Kind(KindTest::Pi(target)) => {
                store.kind(n) == NodeKind::ProcessingInstruction
                    && target.as_ref().is_none_or(|t| store.node_name(n) == *t)
            }
        }
    }

    /// Apply one predicate to a context list (positions are 1-based over
    /// the list as given — axis order for steps, document order for
    /// filter expressions).
    fn filter(&self, nodes: Vec<NodeId>, pred: &Predicate) -> Result<Vec<NodeId>, InterpError> {
        let size = nodes.len();
        let mut out = Vec::with_capacity(size);
        for (i, n) in nodes.into_iter().enumerate() {
            let c = Ctx { node: n, pos: i + 1, size };
            let keep = match xpath_syntax::static_type(&pred.expr) {
                XPathType::Number => self.eval_num(&pred.expr, c)? == c.pos as f64,
                _ => self.eval_bool(&pred.expr, c)?,
            };
            if keep {
                out.push(n);
            }
        }
        Ok(out)
    }

    // ----- function library -------------------------------------------------

    fn eval_call(&self, name: &str, args: &[Expr], ctx: Ctx) -> Result<QueryOutput, InterpError> {
        Ok(match name {
            "last" => QueryOutput::Num(ctx.size as f64),
            "position" => QueryOutput::Num(ctx.pos as f64),
            "count" => QueryOutput::Num(self.eval_nodeset_arg(&args[0], ctx)?.len() as f64),
            "sum" => {
                let ns = self.eval_nodeset_arg(&args[0], ctx)?;
                QueryOutput::Num(
                    ns.iter().map(|&n| xvalue::string_to_number(&self.store.string_value(n))).sum(),
                )
            }
            "exists" => QueryOutput::Bool(!self.eval_nodeset_arg(&args[0], ctx)?.is_empty()),
            "id" => {
                let mut out = Vec::new();
                match self.eval(&args[0], ctx)? {
                    QueryOutput::Nodes(ns) => {
                        for n in ns {
                            for tok in self.store.string_value(n).split_ascii_whitespace() {
                                if let Some(hit) = self.store.element_by_id(tok) {
                                    out.push(hit);
                                }
                            }
                        }
                    }
                    other => {
                        for tok in self.to_str(&other).split_ascii_whitespace() {
                            if let Some(hit) = self.store.element_by_id(tok) {
                                out.push(hit);
                            }
                        }
                    }
                }
                self.order_dedup(&mut out);
                QueryOutput::Nodes(out)
            }
            "local-name" | "name" => {
                let ns = self.eval_nodeset_arg(&args[0], ctx)?;
                let first = ns.iter().min_by_key(|&&n| self.store.order(n));
                QueryOutput::Str(first.map(|&n| self.store.node_name(n)).unwrap_or_default())
            }
            "namespace-uri" => QueryOutput::Str(String::new()),
            "string" => QueryOutput::Str(self.eval_str(&args[0], ctx)?),
            "concat" => {
                let mut out = String::new();
                for a in args {
                    out.push_str(&self.eval_str(a, ctx)?);
                }
                QueryOutput::Str(out)
            }
            "starts-with" => QueryOutput::Bool(
                self.eval_str(&args[0], ctx)?.starts_with(&self.eval_str(&args[1], ctx)?),
            ),
            "contains" => QueryOutput::Bool(
                self.eval_str(&args[0], ctx)?.contains(&self.eval_str(&args[1], ctx)?),
            ),
            "substring-before" => QueryOutput::Str(xvalue::substring_before(
                &self.eval_str(&args[0], ctx)?,
                &self.eval_str(&args[1], ctx)?,
            )),
            "substring-after" => QueryOutput::Str(xvalue::substring_after(
                &self.eval_str(&args[0], ctx)?,
                &self.eval_str(&args[1], ctx)?,
            )),
            "substring" => {
                let s = self.eval_str(&args[0], ctx)?;
                let start = self.eval_num(&args[1], ctx)?;
                let len = if args.len() > 2 {
                    Some(self.eval_num(&args[2], ctx)?)
                } else {
                    None
                };
                QueryOutput::Str(xvalue::xpath_substring(&s, start, len))
            }
            "string-length" => {
                QueryOutput::Num(xvalue::string_length(&self.eval_str(&args[0], ctx)?))
            }
            "normalize-space" => {
                QueryOutput::Str(xvalue::normalize_space(&self.eval_str(&args[0], ctx)?))
            }
            "translate" => QueryOutput::Str(xvalue::translate(
                &self.eval_str(&args[0], ctx)?,
                &self.eval_str(&args[1], ctx)?,
                &self.eval_str(&args[2], ctx)?,
            )),
            "boolean" => QueryOutput::Bool(self.eval_bool(&args[0], ctx)?),
            "not" => QueryOutput::Bool(!self.eval_bool(&args[0], ctx)?),
            "true" => QueryOutput::Bool(true),
            "false" => QueryOutput::Bool(false),
            "lang" => {
                let want = self.eval_str(&args[0], ctx)?.to_ascii_lowercase();
                let mut cur = Some(ctx.node);
                let mut result = false;
                while let Some(n) = cur {
                    if self.store.kind(n) == NodeKind::Element {
                        if let Some(v) = self.store.attribute_value(n, "xml:lang") {
                            let v = v.to_ascii_lowercase();
                            result = v == want
                                || (v.starts_with(&want)
                                    && v.as_bytes().get(want.len()) == Some(&b'-'));
                            break;
                        }
                    }
                    cur = self.store.parent(n);
                }
                QueryOutput::Bool(result)
            }
            "number" => QueryOutput::Num(self.eval_num(&args[0], ctx)?),
            "floor" => QueryOutput::Num(self.eval_num(&args[0], ctx)?.floor()),
            "ceiling" => QueryOutput::Num(self.eval_num(&args[0], ctx)?.ceil()),
            "round" => QueryOutput::Num(xvalue::xpath_round(self.eval_num(&args[0], ctx)?)),
            other => return err(format!("unknown function `{other}()`")),
        })
    }

    fn eval_nodeset_arg(&self, e: &Expr, ctx: Ctx) -> Result<Vec<NodeId>, InterpError> {
        let mut ns = self.eval_nodes(e, ctx)?;
        if !self.opts.dedup_between_steps {
            self.order_dedup(&mut ns);
        }
        Ok(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::parse_document;

    fn store() -> xmlstore::ArenaStore {
        parse_document(r#"<r><a id="1"><b>x</b><b>y</b></a><a id="2"><b>z</b></a><c>7</c></r>"#)
            .unwrap()
    }

    fn run(q: &str) -> QueryOutput {
        let s = store();
        Interpreter::new(&s, InterpOptions::context_list())
            .evaluate(q, s.root())
            .unwrap()
    }

    #[test]
    fn basic_paths() {
        assert_eq!(run("count(/r/a)"), QueryOutput::Num(2.0));
        assert_eq!(run("count(//b)"), QueryOutput::Num(3.0));
        assert_eq!(run("string(/r/a[2]/b)"), QueryOutput::Str("z".into()));
        assert_eq!(run("string(/r/a[@id='1']/b[2])"), QueryOutput::Str("y".into()));
    }

    #[test]
    fn positional_and_last() {
        assert_eq!(run("string(/r/a[last()]/@id)"), QueryOutput::Str("2".into()));
        assert_eq!(run("count(/r/a/b[position()=1])"), QueryOutput::Num(2.0));
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("/r/c = 7"), QueryOutput::Bool(true));
        assert_eq!(run("/r/c < 7"), QueryOutput::Bool(false));
        assert_eq!(run("/r/a/b = 'y'"), QueryOutput::Bool(true));
        assert_eq!(run("/r/a/b != /r/a/b"), QueryOutput::Bool(true));
    }

    #[test]
    fn functions() {
        assert_eq!(run("normalize-space('  q  w ')"), QueryOutput::Str("q w".into()));
        assert_eq!(run("sum(/r/c)"), QueryOutput::Num(7.0));
        assert_eq!(run("string(id('2')/@id)"), QueryOutput::Str("2".into()));
        assert_eq!(run("name(/r/a[1])"), QueryOutput::Str("a".into()));
    }

    #[test]
    fn naive_mode_agrees_on_results() {
        let s = store();
        let naive = Interpreter::new(&s, InterpOptions::naive());
        let cl = Interpreter::new(&s, InterpOptions::context_list());
        for q in [
            "count(//b)",
            "count(/r/a/b/parent::a)",
            "string(/r/a[2]/b[1])",
        ] {
            assert_eq!(
                naive.evaluate(q, s.root()).unwrap(),
                cl.evaluate(q, s.root()).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn unknown_variable_errors() {
        let s = store();
        let it = Interpreter::new(&s, InterpOptions::context_list());
        assert!(it.evaluate("/r/a[@id = $missing]", s.root()).is_err());
    }
}
