//! Baseline main-memory XPath 1.0 interpreters (the paper's comparison
//! subjects, §6): a context-list interpreter (Xalan-like) and a naive
//! variant without intermediate duplicate elimination (worst-case
//! exponential), sharing one recursive evaluator.

pub mod contextlist;
pub mod naive;

pub use contextlist::{InterpError, InterpOptions, Interpreter};
pub use naive::{evaluate_naive, naive_context_growth};

use std::collections::HashMap;

use algebra::QueryOutput;
use xmlstore::{NodeId, XmlStore};

/// Convenience: context-list evaluation from the document node.
pub fn evaluate(store: &dyn XmlStore, query: &str) -> Result<QueryOutput, InterpError> {
    Interpreter::new(store, InterpOptions::context_list()).evaluate(query, store.root())
}

/// Convenience: context-list evaluation with explicit context and vars.
pub fn evaluate_with(
    store: &dyn XmlStore,
    query: &str,
    ctx: NodeId,
    vars: &HashMap<String, algebra::Value>,
) -> Result<QueryOutput, InterpError> {
    Interpreter::with_vars(store, InterpOptions::context_list(), vars).evaluate(query, ctx)
}
