//! The universe of the algebra (paper §2.2.1): atomic XPath values, nodes,
//! and ordered tuple sequences; tuples map attributes to values.

use std::sync::Arc;

use xmlstore::{NodeId, XmlStore};
use xpath_syntax::xvalue;

/// A runtime value: the union of the atomic XPath types, document nodes
/// and (nested) tuple sequences.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / unbound attribute slot.
    Null,
    /// Boolean.
    Bool(bool),
    /// IEEE-754 double.
    Num(f64),
    /// String (shared — cloning a tuple must be cheap, and the Exchange
    /// operator hands tuples across worker threads, so the payload is
    /// atomically reference-counted).
    Str(Arc<str>),
    /// A document node.
    Node(NodeId),
    /// A materialised nested tuple sequence (value of a nested attribute).
    Seq(Arc<Vec<Tuple>>),
}

/// A tuple: a register frame indexed by attribute slots (the attribute
/// manager assigns the slots at code-generation time, paper §5.1).
pub type Tuple = Vec<Value>;

impl Value {
    /// String conversion per XPath `string()`; nodes use their
    /// string-value, which needs the store.
    pub fn to_str(&self, store: &dyn XmlStore) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => if *b { "true" } else { "false" }.to_owned(),
            Value::Num(n) => xvalue::number_to_string(*n),
            Value::Str(s) => s.to_string(),
            Value::Node(n) => store.string_value(*n),
            Value::Seq(ts) => {
                // string() of a node sequence: string-value of the first
                // node in document order (empty for an empty sequence).
                // Sequences store the node in their `cn` slot by
                // convention; find the first node value.
                crate::docorder::first_node_in_doc_order(ts, store)
                    .map(|n| store.string_value(n))
                    .unwrap_or_default()
            }
        }
    }

    /// Number conversion per XPath `number()`.
    pub fn to_num(&self, store: &dyn XmlStore) -> f64 {
        match self {
            Value::Null => f64::NAN,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => xvalue::string_to_number(s),
            Value::Node(_) | Value::Seq(_) => xvalue::string_to_number(&self.to_str(store)),
        }
    }

    /// Boolean conversion per XPath `boolean()`.
    pub fn to_bool(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => xvalue::number_to_boolean(*n),
            Value::Str(s) => xvalue::string_to_boolean(s),
            Value::Node(_) => true,
            Value::Seq(ts) => !ts.is_empty(),
        }
    }

    /// The node held by this value, if it is one.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Value::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Compile-time constants embedded in plans.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    /// Boolean constant.
    Bool(bool),
    /// Numeric constant.
    Num(f64),
    /// String constant.
    Str(String),
}

impl Const {
    /// Lift into a runtime value.
    pub fn to_value(&self) -> Value {
        match self {
            Const::Bool(b) => Value::Bool(*b),
            Const::Num(n) => Value::Num(*n),
            Const::Str(s) => Value::Str(Arc::from(s.as_str())),
        }
    }
}

/// The result of a complete query: one of the four XPath 1.0 types.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Node-set (duplicate-free; order unspecified per XPath 1.0 §2.1 —
    /// our engines return document order for determinism).
    Nodes(Vec<NodeId>),
    /// Boolean result.
    Bool(bool),
    /// Numeric result.
    Num(f64),
    /// String result.
    Str(String),
}

/// A typed runtime failure of a governed execution: the query was stopped
/// cooperatively by the resource governor instead of exhausting process
/// memory or spinning forever. Compilation failures are a different type
/// (`PipelineError` in the compiler crate); these errors can only arise
/// while a plan is running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A materializing operator pushed the query over its memory budget.
    MemoryExceeded {
        /// The configured budget in bytes.
        limit: u64,
        /// The total that the failing allocation would have brought the
        /// query to (always `> limit`).
        requested: u64,
    },
    /// The query materialized more tuples than its tuple budget allows.
    TuplesExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// The wall-clock deadline passed (observed at a governor tick).
    DeadlineExceeded {
        /// The configured timeout in milliseconds.
        timeout_millis: u64,
    },
    /// The cancellation token was raised (observed at a governor tick).
    Cancelled,
    /// The storage layer failed mid-query: an I/O error or detected
    /// corruption while reading the paged store. The detail string carries
    /// the page/slot coordinates reported by the store.
    Storage {
        /// Rendered storage-error message (includes coordinates).
        detail: String,
        /// True for I/O failures, false for corruption — callers map the
        /// two classes to distinct exit codes.
        io: bool,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::MemoryExceeded { limit, requested } => {
                write!(f, "memory budget exceeded: needed {requested} bytes, limit {limit}")
            }
            QueryError::TuplesExceeded { limit } => {
                write!(f, "tuple budget exceeded: limit {limit} materialized tuples")
            }
            QueryError::DeadlineExceeded { timeout_millis } => {
                write!(f, "deadline exceeded: query ran past its {timeout_millis}ms timeout")
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::Storage { detail, .. } => write!(f, "storage failure: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl QueryOutput {
    /// Boolean conversion of the whole result.
    pub fn to_bool(&self) -> bool {
        match self {
            QueryOutput::Nodes(ns) => !ns.is_empty(),
            QueryOutput::Bool(b) => *b,
            QueryOutput::Num(n) => xvalue::number_to_boolean(*n),
            QueryOutput::Str(s) => xvalue::string_to_boolean(s),
        }
    }

    /// The node-set, if this is one.
    pub fn as_nodes(&self) -> Option<&[NodeId]> {
        match self {
            QueryOutput::Nodes(ns) => Some(ns),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::parse_document;

    #[test]
    fn conversions_against_store() {
        let store = parse_document("<a>12<b>34</b></a>").unwrap();
        let a = store.first_child(store.root()).unwrap();
        let v = Value::Node(a);
        assert_eq!(v.to_str(&store), "1234");
        assert_eq!(v.to_num(&store), 1234.0);
        assert!(v.to_bool());
    }

    #[test]
    fn scalar_conversions() {
        let store = parse_document("<a/>").unwrap();
        assert_eq!(Value::Bool(true).to_str(&store), "true");
        assert_eq!(Value::Bool(false).to_num(&store), 0.0);
        assert_eq!(Value::Num(3.0).to_str(&store), "3");
        assert!(Value::Str(Arc::from("0")).to_bool(), "non-empty string is true");
        assert!(!Value::Num(0.0).to_bool());
        assert!(Value::Null.to_num(&store).is_nan());
        assert!(!Value::Null.to_bool());
    }

    #[test]
    fn seq_string_takes_first_in_doc_order() {
        let store = parse_document("<r><a>first</a><b>second</b></r>").unwrap();
        let r = store.first_child(store.root()).unwrap();
        let a = store.first_child(r).unwrap();
        let b = store.next_sibling(a).unwrap();
        // Sequence deliberately out of document order.
        let seq = Value::Seq(Arc::new(vec![vec![Value::Node(b)], vec![Value::Node(a)]]));
        assert_eq!(seq.to_str(&store), "first");
        assert!(seq.to_bool());
        let empty = Value::Seq(Arc::new(vec![]));
        assert_eq!(empty.to_str(&store), "");
        assert!(!empty.to_bool());
    }

    #[test]
    fn const_lifting() {
        assert!(matches!(Const::Bool(true).to_value(), Value::Bool(true)));
        assert!(matches!(Const::Num(2.0).to_value(), Value::Num(n) if n == 2.0));
        assert!(matches!(Const::Str("x".into()).to_value(), Value::Str(s) if &*s == "x"));
    }

    #[test]
    fn query_output_bool() {
        assert!(QueryOutput::Nodes(vec![NodeId(1)]).to_bool());
        assert!(!QueryOutput::Nodes(vec![]).to_bool());
        assert!(!QueryOutput::Str(String::new()).to_bool());
        assert!(QueryOutput::Num(0.5).to_bool());
    }
}
