//! Logical operator IR — the sequence-valued operators of the target
//! algebra (paper Fig. 1 plus the special operators Tmp^cs and MemoX).
//!
//! Plans are trees of [`LogicalOp`]; scalar subscripts are
//! [`ScalarExpr`](crate::scalar::ScalarExpr)s, which may themselves embed
//! nested plans through aggregation. Attributes are symbolic names at this
//! level; the attribute manager resolves them to register slots during
//! code generation.

use std::collections::BTreeSet;

use xmlstore::Axis;
use xpath_syntax::NodeTest;

use crate::scalar::ScalarExpr;

/// Symbolic attribute name (`cn`, `c1`, `cp`, `cs`, …).
pub type Attr = String;

/// Physical-kernel hint on an [`LogicalOp::UnnestMap`]: which axis
/// kernel the executor should bind. `Auto` (the translation default)
/// lets the runtime probe the structural index per context node; the
/// cost-based optimizer pins `Cursor` where the estimated scan span
/// dwarfs the axis output, making the pointer-chasing cursor cheaper
/// than a near-empty range scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanHint {
    /// Runtime decides per context node (range scan when the index
    /// offers one, cursor otherwise).
    #[default]
    Auto,
    /// Prefer the index range scan (the runtime still falls back to a
    /// cursor when no index exists).
    Range,
    /// Skip the index probe and walk the axis with a cursor.
    Cursor,
}

/// What a content-index probe addresses (mirrors
/// `xmlstore::ContentKind` without a crate dependency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Probe attribute values: `step[@name='value']`.
    Attribute,
    /// Probe element text values: `step[name='value']`.
    Element,
}

/// A content-index probe pinned on an [`LogicalOp::UnnestMap`] by the
/// cost-based optimizer: the Υ's predicate demands an exact
/// `name = value` match, so the runtime can intersect the context's
/// subtree interval with the index postings instead of scanning the
/// axis. Purely an access-path annotation — the σ/χ^mat predicate above
/// the Υ still re-checks every emitted tuple, so an unindexed store (or
/// an uncovered key) degrades to the plain scan with identical results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Attribute-value or element-text probe.
    pub kind: ProbeKind,
    /// The attribute/element name whose value is constrained.
    pub name: String,
    /// The constant the value must equal.
    pub value: String,
}

impl std::fmt::Display for ProbeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ProbeKind::Attribute => write!(f, "@{}='{}'", self.name, self.value),
            ProbeKind::Element => write!(f, "{}='{}'", self.name, self.value),
        }
    }
}

/// A sequence-valued logical operator.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// □ — singleton scan: one empty tuple. In a d-join's dependent branch
    /// the physical engine seeds it with the outer tuple, which is the
    /// free-variable binding mechanism of §2.2.2.
    Singleton,
    /// σ_p — selection.
    Select {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Filter predicate.
        pred: ScalarExpr,
    },
    /// Π^D_a — duplicate elimination on one attribute, without projecting
    /// the remaining attributes away (§3.1.1).
    DedupBy {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// The attribute whose values are made unique.
        attr: Attr,
    },
    /// Π_{a':a} — attribute renaming. The compiler's attribute manager
    /// turns this into slot aliasing or a register copy (§5.1).
    Rename {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Source attribute.
        from: Attr,
        /// New attribute.
        to: Attr,
    },
    /// χ_{a:e} — map: extend each tuple with `a` bound to `e(t)`.
    MapExpr {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Defined attribute.
        attr: Attr,
        /// The scalar subscript.
        expr: ScalarExpr,
    },
    /// χ_{cp:counter++} — positional counter (§3.3.3), resetting when the
    /// governing context attribute changes (§4.3.1, stacked translation).
    CounterMap {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Defined attribute (`cp`).
        attr: Attr,
        /// Reset the counter when this attribute's value changes; `None`
        /// counts the whole input (canonical translation — each dependent
        /// d-join evaluation is a fresh pipeline anyway).
        reset_on: Option<Attr>,
    },
    /// χ^mat — memoizing map for expensive predicates (§4.3.2, after
    /// Hellerstein & Naughton): like `MapExpr` but caches results keyed by
    /// the `key` attribute.
    MemoMap {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Defined attribute.
        attr: Attr,
        /// The (expensive) scalar subscript.
        expr: ScalarExpr,
        /// Cache key attribute.
        key: Attr,
    },
    /// `<>` — dependency join: for each left tuple, evaluate the dependent
    /// right side with the left tuple's bindings (§3.1.1).
    DJoin {
        /// Independent side.
        left: Box<LogicalOp>,
        /// Dependent side (free attributes bound from left tuples).
        right: Box<LogicalOp>,
    },
    /// × — cross product (both sides independent).
    Cross {
        /// Left input.
        left: Box<LogicalOp>,
        /// Right input.
        right: Box<LogicalOp>,
    },
    /// ⋉_p — semi-join (existential, §3.6.2).
    SemiJoin {
        /// Probe side (output tuples come from here).
        left: Box<LogicalOp>,
        /// Match side.
        right: Box<LogicalOp>,
        /// Join predicate over the concatenated tuple.
        pred: ScalarExpr,
    },
    /// ▷_p — anti-join.
    AntiJoin {
        /// Probe side.
        left: Box<LogicalOp>,
        /// Match side.
        right: Box<LogicalOp>,
        /// Join predicate.
        pred: ScalarExpr,
    },
    /// Υ_{c:c₀/axis::test} — unnest-map: one output tuple per node reached
    /// from the context attribute via the axis, in axis order (§3.2).
    UnnestMap {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Context attribute (the step's input node).
        context: Attr,
        /// Defined attribute (the step's result node).
        attr: Attr,
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
        /// Physical axis-kernel hint (`Auto` unless the optimizer pinned
        /// a kernel).
        hint: ScanHint,
        /// Content-index probe pinned by the cost-based optimizer
        /// (`None` unless an equality predicate above this Υ was
        /// recognised as index-answerable).
        probe: Option<ProbeSpec>,
    },
    /// Υ_{t:tokenize(e)} — unnest a whitespace-tokenised string (used only
    /// by the `id()` translation on non-node-set input, §3.6.3).
    TokenizeMap {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Defined attribute (one token per tuple).
        attr: Attr,
        /// String-valued subscript.
        expr: ScalarExpr,
    },
    /// ⊕ — sequence concatenation (unions, §3.1.3).
    Concat {
        /// The concatenated parts, in order.
        parts: Vec<LogicalOp>,
    },
    /// Sort_a — sort by document order of the node-valued attribute
    /// (filter expressions with positional predicates, §3.4.2).
    SortBy {
        /// Input sequence.
        input: Box<LogicalOp>,
        /// Node-valued attribute to sort by.
        attr: Attr,
    },
    /// Tmp^cs / Tmp^cs_c — materialise each context group, back-patch the
    /// context size attribute (§3.3.4, §4.3.1, implemented as §5.2.4).
    TmpCs {
        /// Input sequence (already carrying the `cp` counter).
        input: Box<LogicalOp>,
        /// Defined attribute (`cs`).
        cs: Attr,
        /// Group boundary attribute (`Tmp^cs_c`); `None` aggregates the
        /// whole input (`Tmp^cs`). A single implementation covers both.
        group: Option<Attr>,
    },
    /// 𝔐 — MemoX: memoise the producer sequence keyed by the free
    /// variable (§4.2.2).
    MemoX {
        /// Producer (typically the translation of an inner path).
        input: Box<LogicalOp>,
        /// Key attribute (the context node handed in by the d-join).
        key: Attr,
    },
    /// ⇶ — Exchange: evaluate `source` serially, split its output into
    /// contiguous partitions, evaluate a replica of `body` per partition
    /// on a scoped worker pool, and concatenate partition outputs back in
    /// source order (so the result is byte-identical to the serial
    /// pipeline `body ∘ source`). Inserted by the parallelize pass
    /// (DESIGN.md §14); never produced by translation.
    Exchange {
        /// The partitioned stream, evaluated serially by the coordinator.
        source: Box<LogicalOp>,
        /// The parallel segment; consumes its partition through exactly
        /// one [`LogicalOp::PartitionSource`] leaf on its spine.
        body: Box<LogicalOp>,
        /// Requested degree of parallelism.
        partitions: usize,
    },
    /// ▤ — the body-side leaf of an Exchange: yields the tuples of the
    /// worker's current partition, in source order.
    PartitionSource,
}

impl LogicalOp {
    /// Convenience constructor for Υ.
    pub fn unnest_map(
        input: LogicalOp,
        context: impl Into<Attr>,
        attr: impl Into<Attr>,
        axis: Axis,
        test: NodeTest,
    ) -> LogicalOp {
        LogicalOp::UnnestMap {
            input: Box::new(input),
            context: context.into(),
            attr: attr.into(),
            axis,
            test,
            hint: ScanHint::Auto,
            probe: None,
        }
    }

    /// Convenience constructor for σ.
    pub fn select(input: LogicalOp, pred: ScalarExpr) -> LogicalOp {
        LogicalOp::Select { input: Box::new(input), pred }
    }

    /// Convenience constructor for χ.
    pub fn map(input: LogicalOp, attr: impl Into<Attr>, expr: ScalarExpr) -> LogicalOp {
        LogicalOp::MapExpr { input: Box::new(input), attr: attr.into(), expr }
    }

    /// Convenience constructor for Π^D.
    pub fn dedup(input: LogicalOp, attr: impl Into<Attr>) -> LogicalOp {
        LogicalOp::DedupBy { input: Box::new(input), attr: attr.into() }
    }

    /// Convenience constructor for `<>`.
    pub fn djoin(left: LogicalOp, right: LogicalOp) -> LogicalOp {
        LogicalOp::DJoin { left: Box::new(left), right: Box::new(right) }
    }

    /// Convenience constructor for ⇶.
    pub fn exchange(source: LogicalOp, body: LogicalOp, partitions: usize) -> LogicalOp {
        LogicalOp::Exchange { source: Box::new(source), body: Box::new(body), partitions }
    }

    /// Direct child operators.
    pub fn children(&self) -> Vec<&LogicalOp> {
        match self {
            LogicalOp::Singleton | LogicalOp::PartitionSource => vec![],
            LogicalOp::Select { input, .. }
            | LogicalOp::DedupBy { input, .. }
            | LogicalOp::Rename { input, .. }
            | LogicalOp::MapExpr { input, .. }
            | LogicalOp::CounterMap { input, .. }
            | LogicalOp::MemoMap { input, .. }
            | LogicalOp::UnnestMap { input, .. }
            | LogicalOp::TokenizeMap { input, .. }
            | LogicalOp::SortBy { input, .. }
            | LogicalOp::TmpCs { input, .. }
            | LogicalOp::MemoX { input, .. } => vec![input],
            LogicalOp::DJoin { left, right }
            | LogicalOp::Cross { left, right }
            | LogicalOp::SemiJoin { left, right, .. }
            | LogicalOp::AntiJoin { left, right, .. } => vec![left, right],
            LogicalOp::Exchange { source, body, .. } => vec![source, body],
            LogicalOp::Concat { parts } => parts.iter().collect(),
        }
    }

    /// Attributes defined (written) anywhere in this plan.
    pub fn defined_attrs(&self) -> BTreeSet<Attr> {
        let mut out = BTreeSet::new();
        self.collect_defined(&mut out);
        out
    }

    fn collect_defined(&self, out: &mut BTreeSet<Attr>) {
        match self {
            LogicalOp::Rename { to, .. } => {
                out.insert(to.clone());
            }
            LogicalOp::MapExpr { attr, .. }
            | LogicalOp::CounterMap { attr, .. }
            | LogicalOp::MemoMap { attr, .. }
            | LogicalOp::UnnestMap { attr, .. }
            | LogicalOp::TokenizeMap { attr, .. } => {
                out.insert(attr.clone());
            }
            LogicalOp::TmpCs { cs, .. } => {
                out.insert(cs.clone());
            }
            _ => {}
        }
        for c in self.children() {
            c.collect_defined(out);
        }
    }

    /// Attributes referenced (read) anywhere in this plan, including
    /// through scalar subscripts and nested plans.
    pub fn referenced_attrs(&self) -> BTreeSet<Attr> {
        let mut out = Vec::new();
        self.collect_referenced(&mut out);
        out.into_iter().collect()
    }

    fn collect_referenced(&self, out: &mut Vec<Attr>) {
        match self {
            LogicalOp::Singleton
            | LogicalOp::Concat { .. }
            | LogicalOp::Exchange { .. }
            | LogicalOp::PartitionSource => {}
            LogicalOp::Select { pred, .. } => pred.collect_attr_refs(out),
            LogicalOp::DedupBy { attr, .. } | LogicalOp::SortBy { attr, .. } => {
                out.push(attr.clone())
            }
            LogicalOp::Rename { from, .. } => out.push(from.clone()),
            LogicalOp::MapExpr { expr, .. } | LogicalOp::TokenizeMap { expr, .. } => {
                expr.collect_attr_refs(out)
            }
            LogicalOp::CounterMap { reset_on, .. } => {
                if let Some(a) = reset_on {
                    out.push(a.clone());
                }
            }
            LogicalOp::MemoMap { expr, key, .. } => {
                expr.collect_attr_refs(out);
                out.push(key.clone());
            }
            LogicalOp::DJoin { .. } | LogicalOp::Cross { .. } => {}
            LogicalOp::SemiJoin { pred, .. } | LogicalOp::AntiJoin { pred, .. } => {
                pred.collect_attr_refs(out)
            }
            LogicalOp::UnnestMap { context, .. } => out.push(context.clone()),
            LogicalOp::TmpCs { group, .. } => {
                if let Some(g) = group {
                    out.push(g.clone());
                }
            }
            LogicalOp::MemoX { key, .. } => out.push(key.clone()),
        }
        for c in self.children() {
            c.collect_referenced(out);
        }
    }

    /// Free attributes: attributes read from the *seed* tuple, i.e.
    /// referenced before any operator of this plan defines them. The
    /// analysis follows pipeline order — a downstream definition (e.g. a
    /// `cn` rebind inside a predicate) does not mask an upstream read.
    /// The dependent side of a d-join has the outer context attribute free.
    pub fn free_attrs(&self) -> Vec<Attr> {
        let mut defined = BTreeSet::new();
        let mut free = BTreeSet::new();
        self.flow(&mut defined, &mut free);
        free.into_iter().collect()
    }

    fn flow(&self, defined: &mut BTreeSet<Attr>, free: &mut BTreeSet<Attr>) {
        fn reference(a: &Attr, defined: &BTreeSet<Attr>, free: &mut BTreeSet<Attr>) {
            if !defined.contains(a) {
                free.insert(a.clone());
            }
        }
        fn scalar_flow(e: &ScalarExpr, defined: &BTreeSet<Attr>, free: &mut BTreeSet<Attr>) {
            use crate::scalar::ScalarExpr as S;
            match e {
                S::Const(_) | S::Var(_) => {}
                S::Attr(a) => reference(a, defined, free),
                S::And(a, b) | S::Or(a, b) => {
                    scalar_flow(a, defined, free);
                    scalar_flow(b, defined, free);
                }
                S::Compare { lhs, rhs, .. } => {
                    scalar_flow(lhs, defined, free);
                    scalar_flow(rhs, defined, free);
                }
                S::Arith(_, a, b) => {
                    scalar_flow(a, defined, free);
                    scalar_flow(b, defined, free);
                }
                S::Not(a)
                | S::Neg(a)
                | S::Convert(_, a)
                | S::NumFn(_, a)
                | S::NodeFn(_, a)
                | S::Deref(a)
                | S::RootOf(a) => scalar_flow(a, defined, free),
                S::Lang(a, ctx) => {
                    scalar_flow(a, defined, free);
                    reference(ctx, defined, free);
                }
                S::StrFn(_, args) => {
                    for a in args {
                        scalar_flow(a, defined, free);
                    }
                }
                S::Agg(agg) => {
                    // The nested plan is seeded with the current tuple:
                    // its own pipeline starts from the attributes defined
                    // so far; definitions inside it do not escape.
                    let mut inner_defined = defined.clone();
                    agg.plan.flow(&mut inner_defined, free);
                }
            }
        }
        match self {
            LogicalOp::Singleton | LogicalOp::PartitionSource => {}
            LogicalOp::Exchange { source, body, .. } => {
                // The body pipeline continues the source pipeline: a
                // partition tuple carries exactly what a source output
                // tuple carries.
                source.flow(defined, free);
                body.flow(defined, free);
            }
            LogicalOp::Select { input, pred } => {
                input.flow(defined, free);
                scalar_flow(pred, defined, free);
            }
            LogicalOp::DedupBy { input, attr } | LogicalOp::SortBy { input, attr } => {
                input.flow(defined, free);
                reference(attr, defined, free);
            }
            LogicalOp::Rename { input, from, to } => {
                input.flow(defined, free);
                reference(from, defined, free);
                defined.insert(to.clone());
            }
            LogicalOp::MapExpr { input, attr, expr }
            | LogicalOp::TokenizeMap { input, attr, expr } => {
                input.flow(defined, free);
                scalar_flow(expr, defined, free);
                defined.insert(attr.clone());
            }
            LogicalOp::CounterMap { input, attr, reset_on } => {
                input.flow(defined, free);
                if let Some(g) = reset_on {
                    reference(g, defined, free);
                }
                defined.insert(attr.clone());
            }
            LogicalOp::MemoMap { input, attr, expr, key } => {
                input.flow(defined, free);
                scalar_flow(expr, defined, free);
                reference(key, defined, free);
                defined.insert(attr.clone());
            }
            LogicalOp::DJoin { left, right } | LogicalOp::Cross { left, right } => {
                // The dependent side's pipeline continues the left tuple.
                left.flow(defined, free);
                right.flow(defined, free);
            }
            LogicalOp::SemiJoin { left, right, pred }
            | LogicalOp::AntiJoin { left, right, pred } => {
                // Both sides start from the operator's seed; the predicate
                // sees the merged tuple.
                let mut dl = defined.clone();
                left.flow(&mut dl, free);
                let mut dr = defined.clone();
                right.flow(&mut dr, free);
                let merged: BTreeSet<Attr> = dl.union(&dr).cloned().collect();
                scalar_flow(pred, &merged, free);
                // Output tuples are probe (left) tuples.
                *defined = dl;
            }
            LogicalOp::UnnestMap { input, context, attr, .. } => {
                input.flow(defined, free);
                reference(context, defined, free);
                defined.insert(attr.clone());
            }
            LogicalOp::Concat { parts } => {
                let base = defined.clone();
                let mut all = BTreeSet::new();
                for p in parts {
                    let mut d = base.clone();
                    p.flow(&mut d, free);
                    all.extend(d);
                }
                *defined = all;
            }
            LogicalOp::TmpCs { input, cs, group } => {
                input.flow(defined, free);
                if let Some(g) = group {
                    reference(g, defined, free);
                }
                defined.insert(cs.clone());
            }
            LogicalOp::MemoX { input, key } => {
                input.flow(defined, free);
                reference(key, defined, free);
            }
        }
    }

    /// Number of operators in the plan (diagnostics, tests).
    pub fn op_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.op_count()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(input: LogicalOp, ctx: &str, out: &str) -> LogicalOp {
        LogicalOp::unnest_map(input, ctx, out, Axis::Child, NodeTest::Wildcard)
    }

    #[test]
    fn free_attrs_of_dependent_branch() {
        // Υ_{c1:c0/child::*}(□) — c0 is free.
        let dep = step(LogicalOp::Singleton, "c0", "c1");
        assert_eq!(dep.free_attrs(), vec!["c0".to_owned()]);
        // Chained steps: only the first context is free.
        let dep2 = step(dep, "c1", "c2");
        assert_eq!(dep2.free_attrs(), vec!["c0".to_owned()]);
    }

    #[test]
    fn djoin_plan_is_closed_when_left_defines_context() {
        let left = LogicalOp::map(LogicalOp::Singleton, "c0", ScalarExpr::attr("cn"));
        let right = step(LogicalOp::Singleton, "c0", "c1");
        let plan = LogicalOp::djoin(left, right);
        // cn remains free (bound by the execution context).
        assert_eq!(plan.free_attrs(), vec!["cn".to_owned()]);
    }

    #[test]
    fn op_count() {
        let p = LogicalOp::dedup(
            LogicalOp::select(step(LogicalOp::Singleton, "a", "b"), ScalarExpr::boolean(true)),
            "b",
        );
        assert_eq!(p.op_count(), 4);
    }

    #[test]
    fn defined_attrs_cover_all_definers() {
        let plan = LogicalOp::TmpCs {
            input: Box::new(LogicalOp::CounterMap {
                input: Box::new(step(LogicalOp::Singleton, "c0", "c1")),
                attr: "cp".into(),
                reset_on: Some("c0".into()),
            }),
            cs: "cs".into(),
            group: Some("c0".into()),
        };
        let defined = plan.defined_attrs();
        assert!(defined.contains("c1"));
        assert!(defined.contains("cp"));
        assert!(defined.contains("cs"));
        assert!(!defined.contains("c0"));
        assert_eq!(plan.free_attrs(), vec!["c0".to_owned()]);
    }
}
