//! Plan pretty-printer: renders query trees in the paper's operator
//! notation (Fig. 2–4), for diagnostics and plan-shape tests.

use crate::ops::{LogicalOp, ScanHint};
use crate::scalar::ScalarExpr;

/// Render a plan as an indented operator tree.
pub fn explain(plan: &LogicalOp) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

/// One-line summary of an operator (no children).
pub fn op_label(plan: &LogicalOp) -> String {
    match plan {
        LogicalOp::Singleton => "□".to_owned(),
        LogicalOp::Select { pred, .. } => format!("σ[{pred}]"),
        LogicalOp::DedupBy { attr, .. } => format!("Π^D[{attr}]"),
        LogicalOp::Rename { from, to, .. } => format!("Π[{to}:{from}]"),
        LogicalOp::MapExpr { attr, expr, .. } => format!("χ[{attr}:{expr}]"),
        LogicalOp::CounterMap { attr, reset_on, .. } => match reset_on {
            Some(g) => format!("χ[{attr}:counter++ reset {g}]"),
            None => format!("χ[{attr}:counter++]"),
        },
        LogicalOp::MemoMap { attr, expr, key, .. } => {
            format!("χ^mat[{attr}:{expr} key {key}]")
        }
        LogicalOp::DJoin { .. } => "<>".to_owned(),
        LogicalOp::Cross { .. } => "×".to_owned(),
        LogicalOp::SemiJoin { pred, .. } => format!("⋉[{pred}]"),
        LogicalOp::AntiJoin { pred, .. } => format!("▷[{pred}]"),
        LogicalOp::UnnestMap { context, attr, axis, test, hint, probe, .. } => {
            let mut label = match hint {
                // `Auto` renders exactly as before the hint existed, so
                // every `CostMode::Off` plan keeps its historical label.
                ScanHint::Auto => format!("Υ[{attr}:{context}/{axis}::{test}]"),
                ScanHint::Range => format!("Υ[{attr}:{context}/{axis}::{test} hint=range]"),
                ScanHint::Cursor => format!("Υ[{attr}:{context}/{axis}::{test} hint=cursor]"),
            };
            if let Some(p) = probe {
                label.pop();
                label.push_str(&format!(" probe={p}]"));
            }
            label
        }
        LogicalOp::TokenizeMap { attr, expr, .. } => format!("Υ[{attr}:tokenize({expr})]"),
        LogicalOp::Concat { .. } => "⊕".to_owned(),
        LogicalOp::SortBy { attr, .. } => format!("Sort[{attr}]"),
        LogicalOp::TmpCs { cs, group, .. } => match group {
            Some(g) => format!("Tmp^cs[{cs} by {g}]"),
            None => format!("Tmp^cs[{cs}]"),
        },
        LogicalOp::MemoX { key, .. } => format!("𝔐[{key}]"),
        LogicalOp::Exchange { partitions, .. } => format!("⇶[{partitions}]"),
        LogicalOp::PartitionSource => "▤".to_owned(),
    }
}

fn render(plan: &LogicalOp, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&op_label(plan));
    out.push('\n');
    for c in plan.children() {
        render(c, depth + 1, out);
    }
    // Nested plans inside scalar subscripts, marked distinctly.
    for nested in nested_plans(plan) {
        for _ in 0..depth + 1 {
            out.push_str("  ");
        }
        out.push_str("(nested)\n");
        render(nested, depth + 2, out);
    }
}

/// The nested sequence plans hanging off `plan`'s scalar subscripts
/// (aggregate arguments inside predicates), in subscript order.
pub fn nested_plans(plan: &LogicalOp) -> Vec<&LogicalOp> {
    let mut out = Vec::new();
    match plan {
        LogicalOp::Select { pred, .. }
        | LogicalOp::SemiJoin { pred, .. }
        | LogicalOp::AntiJoin { pred, .. } => collect_nested(pred, &mut out),
        LogicalOp::MapExpr { expr, .. }
        | LogicalOp::MemoMap { expr, .. }
        | LogicalOp::TokenizeMap { expr, .. } => collect_nested(expr, &mut out),
        _ => {}
    }
    out
}

/// The nested sequence plans inside a standalone scalar expression (the
/// roots of a scalar query's profile).
pub fn scalar_plans(e: &ScalarExpr) -> Vec<&LogicalOp> {
    let mut out = Vec::new();
    collect_nested(e, &mut out);
    out
}

fn collect_nested<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a LogicalOp>) {
    use ScalarExpr as S;
    match e {
        S::Agg(agg) => out.push(&agg.plan),
        S::And(a, b) | S::Or(a, b) => {
            collect_nested(a, out);
            collect_nested(b, out);
        }
        S::Compare { lhs, rhs, .. } => {
            collect_nested(lhs, out);
            collect_nested(rhs, out);
        }
        S::Arith(_, a, b) => {
            collect_nested(a, out);
            collect_nested(b, out);
        }
        S::Not(a)
        | S::Neg(a)
        | S::Convert(_, a)
        | S::NumFn(_, a)
        | S::NodeFn(_, a)
        | S::Deref(a)
        | S::RootOf(a)
        | S::Lang(a, _) => collect_nested(a, out),
        S::StrFn(_, args) => {
            for a in args {
                collect_nested(a, out);
            }
        }
        S::Const(_) | S::Attr(_) | S::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{AggExpr, AggFunc};
    use xmlstore::Axis;
    use xpath_syntax::NodeTest;

    #[test]
    fn renders_operator_tree() {
        let plan = LogicalOp::dedup(
            LogicalOp::djoin(
                LogicalOp::map(LogicalOp::Singleton, "c0", ScalarExpr::attr("cn")),
                LogicalOp::unnest_map(
                    LogicalOp::Singleton,
                    "c0",
                    "c1",
                    Axis::Child,
                    NodeTest::Wildcard,
                ),
            ),
            "cn",
        );
        let text = explain(&plan);
        assert!(text.contains("Π^D[cn]"));
        assert!(text.contains("<>"));
        assert!(text.contains("Υ[c1:c0/child::*]"));
        assert!(text.contains("□"));
        // Indentation reflects tree depth.
        assert!(text.lines().any(|l| l.starts_with("    ")));
    }

    #[test]
    fn renders_nested_plans() {
        let nested = LogicalOp::unnest_map(
            LogicalOp::Singleton,
            "cn",
            "c1",
            Axis::Descendant,
            NodeTest::Wildcard,
        );
        let plan = LogicalOp::select(
            LogicalOp::Singleton,
            ScalarExpr::Agg(AggExpr {
                func: AggFunc::Exists,
                plan: Box::new(nested),
                over: "c1".into(),
                independent: false,
            }),
        );
        let text = explain(&plan);
        assert!(text.contains("(nested)"));
        assert!(text.contains("Υ[c1:cn/descendant::*]"));
    }
}
