//! Scalar (non-sequence-valued) expression IR: the subscript language of
//! the algebra operators. In the physical engine these compile to NVM
//! programs (paper §5.2.2); nested sequence-valued sub-plans are reached
//! through aggregation expressions (paper §5.2.3).

use xpath_syntax::{ArithOp, CompOp};

use crate::ops::{Attr, LogicalOp};
use crate::value::Const;

/// Comparison evaluation mode, fixed by semantic analysis where the static
/// types are known; `Dyn` applies the full XPath runtime rules (used when
/// a variable of unknown type is involved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpMode {
    /// Compare as numbers.
    Num,
    /// Compare as strings.
    Str,
    /// Compare as booleans.
    Bool,
    /// Decide by runtime types.
    Dyn,
}

/// Conversion targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvKind {
    /// `number(…)`
    ToNumber,
    /// `string(…)`
    ToString,
    /// `boolean(…)`
    ToBoolean,
}

/// Pure string functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrFn {
    /// `concat` (n-ary, n ≥ 2).
    Concat,
    /// `contains(a, b)`
    Contains,
    /// `starts-with(a, b)`
    StartsWith,
    /// `substring-before(a, b)`
    SubstringBefore,
    /// `substring-after(a, b)`
    SubstringAfter,
    /// `substring(s, start[, len])` (2- or 3-ary).
    Substring,
    /// `string-length(s)`
    StringLength,
    /// `normalize-space(s)`
    NormalizeSpace,
    /// `translate(s, from, to)`
    Translate,
}

/// Numeric functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumFn {
    /// `floor`
    Floor,
    /// `ceiling`
    Ceiling,
    /// `round` (XPath semantics: half towards +∞).
    Round,
}

/// Node-identity functions (operand must be node-valued or Null).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFn {
    /// `name(n)`
    Name,
    /// `local-name(n)`
    LocalName,
    /// `namespace-uri(n)` (always "" — names are stored verbatim).
    NamespaceUri,
}

/// Aggregation functions of the 𝔄 operator (paper §3.6.2 and §5.2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `count()`
    Count,
    /// `sum()` over the aggregated attribute (number conversion per node).
    Sum,
    /// Internal `exists()` — true for non-empty input; evaluated with
    /// premature termination ("smart aggregation").
    Exists,
    /// Internal `max()` — numeric maximum of the attribute.
    Max,
    /// Internal `min()` — numeric minimum.
    Min,
    /// First node in document order (string()/name() over node-sets).
    FirstNode,
}

impl AggFunc {
    /// True if one input tuple suffices to finish the aggregate.
    pub fn early_exit(self) -> bool {
        matches!(self, AggFunc::Exists)
    }
}

/// An aggregation over a nested sequence-valued plan: 𝔄_{a;f}(plan),
/// consumed as an atomic value (paper footnote 4).
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    /// The aggregation function.
    pub func: AggFunc,
    /// The nested plan producing the aggregated sequence.
    pub plan: Box<LogicalOp>,
    /// The attribute of the nested tuples to aggregate over.
    pub over: Attr,
    /// True if the nested plan has no free attributes (then the physical
    /// engine evaluates it once and caches the result instead of
    /// re-running it per outer tuple).
    pub independent: bool,
}

/// Scalar expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Constant.
    Const(Const),
    /// Attribute (register) reference; `position()`/`last()` compile to
    /// references to the `cp`/`cs` attributes (paper §3.3.3/§3.3.4).
    Attr(Attr),
    /// Runtime variable lookup (`$v`, bound by the execution context).
    Var(String),
    /// Short-circuit conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Short-circuit disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
    /// Comparison with a fixed mode.
    Compare {
        /// Operator.
        op: CompOp,
        /// Evaluation mode.
        mode: CmpMode,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// Arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Unary minus.
    Neg(Box<ScalarExpr>),
    /// Explicit conversion.
    Convert(ConvKind, Box<ScalarExpr>),
    /// String function application.
    StrFn(StrFn, Vec<ScalarExpr>),
    /// Numeric function application.
    NumFn(NumFn, Box<ScalarExpr>),
    /// Node function application.
    NodeFn(NodeFn, Box<ScalarExpr>),
    /// `lang(s)` — checks xml:lang on ancestor-or-self of the node held by
    /// the given context attribute.
    Lang(Box<ScalarExpr>, Attr),
    /// `deref(s)` — ID string to node (paper §3.6.3).
    Deref(Box<ScalarExpr>),
    /// `root(n)` — the document node of the node held by the operand
    /// (start of absolute paths, §3.1.2).
    RootOf(Box<ScalarExpr>),
    /// Nested aggregation.
    Agg(AggExpr),
}

impl ScalarExpr {
    /// Convenience constructors used heavily by the translation.
    pub fn attr(name: impl Into<Attr>) -> ScalarExpr {
        ScalarExpr::Attr(name.into())
    }

    /// Numeric constant.
    pub fn num(n: f64) -> ScalarExpr {
        ScalarExpr::Const(Const::Num(n))
    }

    /// String constant.
    pub fn str(s: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Const(Const::Str(s.into()))
    }

    /// Boolean constant.
    pub fn boolean(b: bool) -> ScalarExpr {
        ScalarExpr::Const(Const::Bool(b))
    }

    /// Collect the attribute names this expression references, including
    /// free attributes of nested plans.
    pub fn collect_attr_refs(&self, out: &mut Vec<Attr>) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Var(_) => {}
            ScalarExpr::Attr(a) => out.push(a.clone()),
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) => {
                a.collect_attr_refs(out);
                b.collect_attr_refs(out);
            }
            ScalarExpr::Not(a)
            | ScalarExpr::Neg(a)
            | ScalarExpr::Convert(_, a)
            | ScalarExpr::NumFn(_, a)
            | ScalarExpr::NodeFn(_, a)
            | ScalarExpr::Deref(a)
            | ScalarExpr::RootOf(a) => a.collect_attr_refs(out),
            ScalarExpr::Lang(a, ctx) => {
                a.collect_attr_refs(out);
                out.push(ctx.clone());
            }
            ScalarExpr::Compare { lhs, rhs, .. } => {
                lhs.collect_attr_refs(out);
                rhs.collect_attr_refs(out);
            }
            ScalarExpr::Arith(_, a, b) => {
                a.collect_attr_refs(out);
                b.collect_attr_refs(out);
            }
            ScalarExpr::StrFn(_, args) => {
                for a in args {
                    a.collect_attr_refs(out);
                }
            }
            ScalarExpr::Agg(agg) => {
                for a in agg.plan.free_attrs() {
                    out.push(a);
                }
            }
        }
    }
}

impl std::fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarExpr::Const(Const::Bool(b)) => write!(f, "{b}()"),
            ScalarExpr::Const(Const::Num(n)) => write!(f, "{n}"),
            ScalarExpr::Const(Const::Str(s)) => write!(f, "'{s}'"),
            ScalarExpr::Attr(a) => write!(f, "{a}"),
            ScalarExpr::Var(v) => write!(f, "${v}"),
            ScalarExpr::And(a, b) => write!(f, "({a} and {b})"),
            ScalarExpr::Or(a, b) => write!(f, "({a} or {b})"),
            ScalarExpr::Not(a) => write!(f, "not({a})"),
            ScalarExpr::Compare { op, lhs, rhs, .. } => {
                write!(f, "({lhs} {} {rhs})", op.symbol())
            }
            ScalarExpr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ScalarExpr::Neg(a) => write!(f, "(-{a})"),
            ScalarExpr::Convert(ConvKind::ToNumber, a) => write!(f, "number({a})"),
            ScalarExpr::Convert(ConvKind::ToString, a) => write!(f, "string({a})"),
            ScalarExpr::Convert(ConvKind::ToBoolean, a) => write!(f, "boolean({a})"),
            ScalarExpr::StrFn(func, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{func:?}({})", parts.join(", "))
            }
            ScalarExpr::NumFn(func, a) => write!(f, "{func:?}({a})"),
            ScalarExpr::NodeFn(func, a) => write!(f, "{func:?}({a})"),
            ScalarExpr::Lang(a, ctx) => write!(f, "lang({a}; {ctx})"),
            ScalarExpr::Deref(a) => write!(f, "deref({a})"),
            ScalarExpr::RootOf(a) => write!(f, "root({a})"),
            ScalarExpr::Agg(agg) => write!(f, "𝔄[{:?}; {}](…)", agg.func, agg.over),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::LogicalOp;

    #[test]
    fn attr_ref_collection() {
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::Compare {
                op: CompOp::Eq,
                mode: CmpMode::Num,
                lhs: Box::new(ScalarExpr::attr("cp")),
                rhs: Box::new(ScalarExpr::attr("cs")),
            }),
            Box::new(ScalarExpr::Not(Box::new(ScalarExpr::attr("flag")))),
        );
        let mut refs = Vec::new();
        e.collect_attr_refs(&mut refs);
        assert_eq!(refs, vec!["cp".to_owned(), "cs".to_owned(), "flag".to_owned()]);
    }

    #[test]
    fn agg_contributes_free_attrs_of_plan() {
        // Nested plan: Υ_{c1:c0/child::*}(□) — free attr c0.
        let plan = LogicalOp::unnest_map(
            LogicalOp::Singleton,
            "c0",
            "c1",
            xmlstore::Axis::Child,
            xpath_syntax::NodeTest::Wildcard,
        );
        let agg = ScalarExpr::Agg(AggExpr {
            func: AggFunc::Count,
            plan: Box::new(plan),
            over: "c1".into(),
            independent: false,
        });
        let mut refs = Vec::new();
        agg.collect_attr_refs(&mut refs);
        assert_eq!(refs, vec!["c0".to_owned()]);
    }

    #[test]
    fn early_exit_only_for_exists() {
        assert!(AggFunc::Exists.early_exit());
        assert!(!AggFunc::Count.early_exit());
        assert!(!AggFunc::Sum.early_exit());
    }
}
