//! Logical algebra over ordered tuple sequences — the target of the XPath
//! translation (paper §2.2, Fig. 1).
//!
//! * [`value`] — the universe: atomic XPath values, nodes, tuple sequences,
//! * [`ops`] — the sequence-valued operator IR (σ, Π^D, χ, d-join, ⋉, ▷,
//!   Υ, ⊕, Sort, Tmp^cs, 𝔐, …),
//! * [`scalar`] — the subscript language (with nested aggregations 𝔄),
//! * [`attrmgr`] — attribute-name → register-slot resolution with safe
//!   aliasing for renames (paper §5.1),
//! * [`explain`] — query-tree rendering in the paper's notation.

pub mod attrmgr;
pub mod docorder;
pub mod explain;
pub mod ops;
pub mod scalar;
pub mod value;

pub use attrmgr::{AttrManager, Slot};
pub use docorder::DocOrderKeys;
pub use explain::explain;
pub use ops::{Attr, LogicalOp, ProbeKind, ProbeSpec, ScanHint};
pub use scalar::{AggExpr, AggFunc, CmpMode, ConvKind, NodeFn, NumFn, ScalarExpr, StrFn};
pub use value::{Const, QueryError, QueryOutput, Tuple, Value};
