//! The attribute manager (paper §5.1): resolves symbolic attribute names
//! to register slots at code-generation time, and turns renaming
//! projections into slot *aliases* (no copies) whenever that is safe.
//!
//! Aliasing `to → from` is safe when both names are assigned exactly once
//! in the whole plan (the rename being `to`'s only assignment): then the
//! two names always hold the same value and can share one register. When
//! a name is reassigned (e.g. `cn` is rebound per predicate context), the
//! rename compiles to a register copy instead.

use std::collections::HashMap;

use crate::ops::{Attr, LogicalOp};

/// Slot index into the tuple register frame.
pub type Slot = usize;

/// Attribute-name → slot resolver for one plan.
#[derive(Debug, Default)]
pub struct AttrManager {
    slots: HashMap<Attr, Slot>,
    next: Slot,
    assignment_counts: HashMap<Attr, usize>,
}

impl AttrManager {
    /// Build a manager for `plan`, pre-counting assignments so alias
    /// safety can be decided per rename.
    pub fn for_plan(plan: &LogicalOp) -> AttrManager {
        let mut mgr = AttrManager::default();
        count_assignments(plan, &mut mgr.assignment_counts);
        mgr
    }

    /// Resolve (or allocate) the slot of `name`.
    pub fn slot(&mut self, name: &str) -> Slot {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.next;
        self.next += 1;
        self.slots.insert(name.to_owned(), s);
        s
    }

    /// Handle a rename `to := from`. Returns `None` if the manager aliased
    /// the two names to one slot (no code needed), or `Some((from_slot,
    /// to_slot))` if the code generator must emit a copy.
    pub fn rename(&mut self, from: &str, to: &str) -> Option<(Slot, Slot)> {
        let from_assignments = self.assignment_counts.get(from).copied().unwrap_or(0);
        let to_assignments = self.assignment_counts.get(to).copied().unwrap_or(0);
        let to_known = self.slots.contains_key(to);
        if from_assignments <= 1 && to_assignments <= 1 && !to_known {
            // Single-assignment on both sides: alias.
            let s = self.slot(from);
            self.slots.insert(to.to_owned(), s);
            None
        } else {
            let f = self.slot(from);
            let t = self.slot(to);
            if f == t {
                None
            } else {
                Some((f, t))
            }
        }
    }

    /// Width of the register frame (number of distinct slots).
    pub fn frame_width(&self) -> usize {
        self.next
    }

    /// Names currently mapped (diagnostics).
    pub fn mapped(&self) -> impl Iterator<Item = (&str, Slot)> {
        self.slots.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

fn bump(counts: &mut HashMap<Attr, usize>, name: &Attr) {
    *counts.entry(name.clone()).or_insert(0) += 1;
}

fn count_assignments(plan: &LogicalOp, counts: &mut HashMap<Attr, usize>) {
    match plan {
        LogicalOp::Rename { to, .. } => bump(counts, to),
        LogicalOp::MapExpr { attr, expr, .. } => {
            bump(counts, attr);
            count_in_scalar(expr, counts);
        }
        LogicalOp::CounterMap { attr, .. } => bump(counts, attr),
        LogicalOp::MemoMap { attr, expr, .. } => {
            bump(counts, attr);
            count_in_scalar(expr, counts);
        }
        LogicalOp::UnnestMap { attr, .. } | LogicalOp::TokenizeMap { attr, .. } => {
            bump(counts, attr)
        }
        LogicalOp::TmpCs { cs, .. } => bump(counts, cs),
        LogicalOp::Select { pred, .. }
        | LogicalOp::SemiJoin { pred, .. }
        | LogicalOp::AntiJoin { pred, .. } => count_in_scalar(pred, counts),
        _ => {}
    }
    for c in plan.children() {
        count_assignments(c, counts);
    }
}

fn count_in_scalar(e: &crate::scalar::ScalarExpr, counts: &mut HashMap<Attr, usize>) {
    // Nested plans inside aggregations also assign attributes; they share
    // the register frame, so their assignments count too.
    use crate::scalar::ScalarExpr as S;
    match e {
        S::Agg(agg) => count_assignments(&agg.plan, counts),
        S::And(a, b) | S::Or(a, b) => {
            count_in_scalar(a, counts);
            count_in_scalar(b, counts);
        }
        S::Compare { lhs, rhs, .. } => {
            count_in_scalar(lhs, counts);
            count_in_scalar(rhs, counts);
        }
        S::Arith(_, a, b) => {
            count_in_scalar(a, counts);
            count_in_scalar(b, counts);
        }
        S::Not(a)
        | S::Neg(a)
        | S::Convert(_, a)
        | S::NumFn(_, a)
        | S::NodeFn(_, a)
        | S::Deref(a)
        | S::RootOf(a)
        | S::Lang(a, _) => count_in_scalar(a, counts),
        S::StrFn(_, args) => {
            for a in args {
                count_in_scalar(a, counts);
            }
        }
        S::Const(_) | S::Attr(_) | S::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr;
    use xmlstore::Axis;
    use xpath_syntax::NodeTest;

    #[test]
    fn slots_are_stable_and_dense() {
        let plan = LogicalOp::Singleton;
        let mut m = AttrManager::for_plan(&plan);
        let a = m.slot("a");
        let b = m.slot("b");
        assert_ne!(a, b);
        assert_eq!(m.slot("a"), a);
        assert_eq!(m.frame_width(), 2);
    }

    #[test]
    fn single_assignment_rename_aliases() {
        // Plan: Rename(c1 → cn) over one step; both names assigned once.
        let plan = LogicalOp::Rename {
            input: Box::new(LogicalOp::unnest_map(
                LogicalOp::Singleton,
                "c0",
                "c1",
                Axis::Child,
                NodeTest::Wildcard,
            )),
            from: "c1".into(),
            to: "cn2".into(),
        };
        let mut m = AttrManager::for_plan(&plan);
        assert_eq!(m.rename("c1", "cn2"), None, "aliased, no copy");
        assert_eq!(m.slot("c1"), m.slot("cn2"));
    }

    #[test]
    fn reassigned_target_forces_copy() {
        // cn assigned twice (two maps) → rename to cn must copy.
        let plan = LogicalOp::map(
            LogicalOp::map(LogicalOp::Singleton, "cn", ScalarExpr::num(1.0)),
            "cn",
            ScalarExpr::num(2.0),
        );
        let mut m = AttrManager::for_plan(&plan);
        let r = m.rename("x", "cn");
        assert!(r.is_some(), "copy required");
        let (f, t) = r.unwrap();
        assert_ne!(f, t);
    }

    #[test]
    fn nested_plan_assignments_counted() {
        let nested = LogicalOp::map(LogicalOp::Singleton, "v", ScalarExpr::num(1.0));
        let plan = LogicalOp::select(
            LogicalOp::map(LogicalOp::Singleton, "v", ScalarExpr::num(2.0)),
            ScalarExpr::Agg(crate::scalar::AggExpr {
                func: crate::scalar::AggFunc::Count,
                plan: Box::new(nested),
                over: "v".into(),
                independent: true,
            }),
        );
        let m = AttrManager::for_plan(&plan);
        assert_eq!(m.assignment_counts.get("v"), Some(&2));
    }
}
