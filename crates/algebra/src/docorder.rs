//! Document-order helpers shared by the executor and the scalar layer.
//!
//! Every helper resolves the store's structural interval index once and
//! then works on plain integer keys, so sorting, deduplication and
//! first-in-document-order selection never call back into `dyn XmlStore`
//! per comparison. Stores without an index fall back to `order()`
//! lookups — one per node, still outside the comparator.

use xmlstore::{NodeId, StructuralIndex, XmlStore};

use crate::value::{Tuple, Value};

/// One-time binding of a store's cheapest document-order key source:
/// index ranks where available, `order()` otherwise.
pub struct DocOrderKeys<'a> {
    store: &'a dyn XmlStore,
    index: Option<&'a StructuralIndex>,
}

impl<'a> DocOrderKeys<'a> {
    /// Bind to `store` (fetches the structural index once).
    pub fn new(store: &'a dyn XmlStore) -> DocOrderKeys<'a> {
        DocOrderKeys { store, index: store.structural_index() }
    }

    /// Integer document-order key of `n`. Keys are totally ordered and
    /// agree with `store.order()` comparisons.
    #[inline]
    pub fn key(&self, n: NodeId) -> u64 {
        match self.index.and_then(|idx| idx.rank_of(n)) {
            Some(rank) => u64::from(rank),
            None => self.store.order(n),
        }
    }
}

/// Sort `nodes` into document order and drop duplicates: extract one
/// integer key per node, unstable-sort the (key, node) pairs, undecorate.
/// Duplicates share a key, so they end up adjacent regardless of the
/// unstable sort's tie handling.
pub fn sort_dedup(nodes: &mut Vec<NodeId>, store: &dyn XmlStore) {
    let keys = DocOrderKeys::new(store);
    let mut keyed: Vec<(u64, NodeId)> = nodes.iter().map(|&n| (keys.key(n), n)).collect();
    keyed.sort_unstable();
    keyed.dedup();
    nodes.clear();
    nodes.extend(keyed.into_iter().map(|(_, n)| n));
}

/// Scan a materialised sequence for the document-order-first node in any
/// slot: a single `min_by_key` pass over cached integer keys.
pub fn first_node_in_doc_order(ts: &[Tuple], store: &dyn XmlStore) -> Option<NodeId> {
    let keys = DocOrderKeys::new(store);
    ts.iter()
        .flat_map(|t| t.iter().filter_map(Value::as_node))
        .min_by_key(|&n| keys.key(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::{parse_document, NoIndex};

    #[test]
    fn sort_dedup_orders_and_dedups_with_and_without_index() {
        let s = parse_document("<r><a/><b/><c/></r>").unwrap();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        let b = s.next_sibling(a).unwrap();
        let c = s.next_sibling(b).unwrap();
        let scrambled = vec![c, a, b, a, c];
        let mut with_index = scrambled.clone();
        sort_dedup(&mut with_index, &s);
        assert_eq!(with_index, vec![a, b, c]);
        let mut without = scrambled;
        sort_dedup(&mut without, &NoIndex(&s));
        assert_eq!(without, vec![a, b, c], "fallback path agrees");
    }

    #[test]
    fn first_node_prefers_document_order_not_sequence_order() {
        let s = parse_document("<r><a/><b/></r>").unwrap();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        let b = s.next_sibling(a).unwrap();
        let ts = vec![vec![Value::Node(b)], vec![Value::Null, Value::Node(a)]];
        assert_eq!(first_node_in_doc_order(&ts, &s), Some(a));
        assert_eq!(first_node_in_doc_order(&ts, &NoIndex(&s)), Some(a));
        assert_eq!(first_node_in_doc_order(&[], &s), None);
    }
}
