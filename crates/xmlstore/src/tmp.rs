//! Minimal self-deleting temporary files (test and example support).
//!
//! Kept in-tree instead of depending on an external `tempfile` crate; the
//! disk-store tests, integration tests and examples all need scratch files.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A file path under the system temp directory, removed on drop.
pub struct TempPath {
    path: PathBuf,
}

impl TempPath {
    /// Fresh unique path with the given suffix; the file is not created.
    pub fn new(suffix: &str) -> TempPath {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "natix-{}-{}-{}{}",
            std::process::id(),
            n,
            // Extra disambiguation across quick process-id reuse.
            &format!("{:p}", &COUNTER)[2..],
            suffix
        ));
        TempPath { path }
    }

    /// The path itself.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TempPath::new(".bin");
        let b = TempPath::new(".bin");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.path(), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
    }
}
