//! Paged on-disk document store.
//!
//! This is the repo's stand-in for the Natix persistent document
//! representation: queries navigate node records held in fixed-size pages
//! behind the [`BufferManager`](crate::buffer::BufferManager) — no
//! main-memory DOM is ever built (paper §5.2.2).
//!
//! File layout (all pages are [`PAGE_SIZE`] bytes; the last 4 bytes of
//! every page are its CRC32C trailer, so [`PAGE_PAYLOAD`] bytes are
//! usable):
//!
//! ```text
//! page 0            header (magic, format version, counts, region
//!                   boundaries, total page count)
//! names region      the name dictionary, a length-prefixed byte stream
//! nodes region      fixed 40-byte node records, addressed arithmetically
//! strings region    slotted pages holding value records, chained when a
//!                   value exceeds one page
//! index region      fixed 16-byte structural-index records, one per
//!                   document-order rank (node, subtree size, name, kind)
//! postings region   slotted pages of content-index postings — chained
//!                   (rank, node) pair lists, ascending by rank
//! meta region       content-index metadata byte stream: uncovered
//!                   element names + the first key of every dir page
//! dir region        slotted pages of content-index directory entries,
//!                   sorted by (kind, name, value), pointing at postings
//! ```
//!
//! Robustness contract (DESIGN.md §13):
//!
//! * **Untrusted bytes.** Every field decoded from a page is validated —
//!   kind tags, name ids, link targets, region boundaries, dictionary
//!   offsets, string-chain links. A failed validation is a typed
//!   [`DiskError::Corrupt`] with page/slot coordinates, never a panic.
//! * **Checksums.** The buffer manager verifies the CRC32C trailer of
//!   every page read from disk, so random corruption is caught before
//!   decode. (Checksums authenticate bytes, not logic: a deliberately
//!   crafted file with valid checksums can still describe a cyclic
//!   sibling chain — bound such queries with the resource governor.)
//! * **Atomic build.** [`create_store_file`] writes to a temp file,
//!   fsyncs, then renames into place: a crash mid-build leaves either no
//!   store file or a fully valid one.
//! * **Cautious navigation.** The infallible [`XmlStore`] methods record
//!   the first failure in a fault cell and return inert values (no
//!   links, no value), so iteration terminates; the executor observes
//!   the fault and unwinds with a typed error, exactly like a
//!   resource-governor trip.

use std::io::Write;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::arena::{ArenaStore, NameTable};
use crate::buffer::{BufferManager, BufferOptions, BufferStats};
use crate::error::StorageFault;
use crate::fault::IoFailPoint;
use crate::index::StructuralIndex;
use crate::node::{NameId, NodeId, NodeKind};
use crate::page::{seal_page, SlottedPage, SlottedPageBuilder, PAGE_PAYLOAD, PAGE_SIZE};
use crate::store::{ContentKind, XmlStore};

pub use crate::error::DiskError;

const MAGIC: &[u8; 8] = b"NATIXSTR";
/// On-disk format version (v3: persisted structural + content indexes).
pub const FORMAT_VERSION: u32 = 3;
const NIL: u32 = u32::MAX;

/// Bytes per node record.
const NODE_REC: usize = 40;
/// Node records per page.
const NODES_PER_PAGE: usize = PAGE_PAYLOAD / NODE_REC;
/// Chain header inside a string record: next page (u32) + next slot (u16).
const CHAIN_HDR: usize = 6;
/// Bytes per structural-index record: node (u32), subtree size (u32),
/// name (u32), kind (u8) + 3 padding bytes.
const IDX_REC: usize = 16;
/// Structural-index records per page.
const IDX_PER_PAGE: usize = PAGE_PAYLOAD / IDX_REC;
/// Bytes per content posting: (rank u32, node u32).
const POST_PAIR: usize = 8;
/// Longest value (in bytes) the content index covers. Longer values are
/// not indexed, and probes for longer values return `None` (scan
/// fallback), so coverage stays exact by a pure length argument: an
/// over-cap stored value can never equal an under-cap probe value.
pub const VALUE_CAP: usize = 128;
/// Content-key kind byte for attribute values.
const CONTENT_ATTR: u8 = 0;
/// Content-key kind byte for element text values.
const CONTENT_ELEM: u8 = 1;
/// Fixed bytes of a directory record around its value: kind (u8), name
/// (u32), value length (u16) … value … posting count (u32), head page
/// (u32), head slot (u16).
const DIR_FIXED: usize = 1 + 4 + 2 + 4 + 4 + 2;

#[derive(Clone, Copy)]
struct Header {
    node_count: u32,
    names_start: u32,
    names_bytes: u32,
    nodes_start: u32,
    strings_start: u32,
    total_pages: u32,
    index_start: u32,
    postings_start: u32,
    meta_start: u32,
    dir_start: u32,
    index_count: u32,
    meta_bytes: u32,
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Page-granular writer that counts writes so the fault-injection
/// harness can simulate a crash (`kill -9`) at any point of a build.
struct PageWriter {
    inner: std::io::BufWriter<std::fs::File>,
    pages_written: u64,
    fail_write_at: Option<u64>,
}

impl PageWriter {
    fn write_page(&mut self, page: &[u8; PAGE_SIZE]) -> Result<(), DiskError> {
        self.pages_written += 1;
        if self.fail_write_at == Some(self.pages_written) {
            return Err(DiskError::io(IoFailPoint::injected_error()));
        }
        self.inner.write_all(&page[..]).map_err(DiskError::io)
    }
}

/// Serialise `store` into a page file at `path`.
///
/// Durable and atomic: the file is written to `<path>.tmp`, flushed and
/// fsynced, renamed over `path`, and the parent directory is fsynced
/// (best-effort on platforms that cannot open directories). A crash at
/// any point leaves either no file at `path` or a complete, valid store —
/// never a half-written one. Building goes through the in-memory
/// representation once; opening the result with [`DiskStore::open`] then
/// serves all navigation from checksummed pages.
pub fn create_store_file(store: &ArenaStore, path: &Path) -> Result<(), DiskError> {
    create_store_file_with(store, path, &IoFailPoint::none())
}

/// [`create_store_file`] with injected I/O faults (test harness).
pub fn create_store_file_with(
    store: &ArenaStore,
    path: &Path,
    failpoint: &IoFailPoint,
) -> Result<(), DiskError> {
    let Some(file_name) = path.file_name() else {
        return Err(DiskError::io(std::io::Error::other("store path has no file name")));
    };
    let tmp: PathBuf = path.with_file_name({
        let mut n = file_name.to_os_string();
        n.push(".tmp");
        n
    });
    let result = write_store(store, &tmp, path, failpoint);
    if result.is_err() {
        // Crash simulation or real failure: never leave the temp file
        // behind (a real crash leaves it, which is harmless — it is not
        // the store path and open() never looks at it).
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_store(
    store: &ArenaStore,
    tmp: &Path,
    path: &Path,
    failpoint: &IoFailPoint,
) -> Result<(), DiskError> {
    // --- names region ---------------------------------------------------
    let mut names_blob = Vec::new();
    for name in store.names().iter() {
        let bytes = name.as_bytes();
        names_blob.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        names_blob.extend_from_slice(bytes);
    }
    let names_pages = names_blob.len().div_ceil(PAGE_PAYLOAD).max(1);

    let node_count = store.node_count();
    let node_pages = node_count.div_ceil(NODES_PER_PAGE).max(1);

    let names_start = 1u32;
    let nodes_start = names_start + names_pages as u32;
    let strings_start = nodes_start + node_pages as u32;

    // --- strings region (built first so node records know their refs) ---
    let mut string_pages: Vec<SlottedPageBuilder> = vec![SlottedPageBuilder::new()];
    // Insert `data` as a chain of records, returning the head (page, slot).
    // Chains are built back-to-front so each segment knows its successor.
    let mut insert_string = |data: &[u8]| -> (u32, u16) {
        let seg_cap = SlottedPageBuilder::max_record() - CHAIN_HDR;
        let mut next: (u32, u16) = (NIL, 0);
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]]
        } else {
            data.chunks(seg_cap).collect()
        };
        for chunk in chunks.iter().rev() {
            let mut rec = Vec::with_capacity(CHAIN_HDR + chunk.len());
            rec.extend_from_slice(&next.0.to_le_bytes());
            rec.extend_from_slice(&next.1.to_le_bytes());
            rec.extend_from_slice(chunk);
            let slot = match string_pages.last_mut().and_then(|p| p.insert(&rec)) {
                Some(s) => s,
                None => {
                    // Segments are sized to fit an empty page, so the
                    // insert after pushing a fresh page cannot fail.
                    let mut fresh = SlottedPageBuilder::new();
                    let Some(s) = fresh.insert(&rec) else {
                        unreachable!("string segment sized to fit an empty page");
                    };
                    string_pages.push(fresh);
                    s
                }
            };
            next = (strings_start + (string_pages.len() - 1) as u32, slot);
        }
        next
    };

    // --- node records ----------------------------------------------------
    let mut node_region = vec![0u8; node_pages * PAGE_SIZE];
    for i in 0..node_count {
        let n = NodeId(i as u32);
        let page = i / NODES_PER_PAGE;
        let off = page * PAGE_SIZE + (i % NODES_PER_PAGE) * NODE_REC;
        let rec = &mut node_region[off..off + NODE_REC];
        rec[0] = store.kind(n) as u8;
        let enc = |v: Option<NodeId>| v.map_or(NIL, |x| x.0);
        put_u32(rec, 4, store.name(n).map_or(NIL, |x| x.0));
        put_u32(rec, 8, enc(store.parent(n)));
        put_u32(rec, 12, enc(store.first_child(n)));
        put_u32(rec, 16, enc(store.last_child(n)));
        put_u32(rec, 20, enc(store.next_sibling(n)));
        put_u32(rec, 24, enc(store.prev_sibling(n)));
        put_u32(rec, 28, enc(store.first_attribute(n)));
        // The arena's sparse u64 gap keys would overflow the u32 record
        // field; persisting compacts them to dense index ranks (same
        // relative order, tombstones get NIL — they are unreachable).
        let dense_order = store.structural_index().and_then(|idx| idx.rank_of(n)).unwrap_or(NIL);
        put_u32(rec, 32, dense_order);
        match store.value_ref(n) {
            None => {
                put_u32(rec, 36, NIL);
            }
            Some(v) => {
                let (vp, vs) = insert_string(v.as_bytes());
                // Pack page (26 bits would do; we store page u32 in a
                // side encoding: 36..40 = page, slot goes into rec[1..3]).
                put_u32(rec, 36, vp);
                rec[1..3].copy_from_slice(&vs.to_le_bytes());
            }
        }
    }

    // --- structural-index region (one fixed record per rank) -------------
    let built;
    let idx = match store.structural_index() {
        Some(idx) => idx,
        None => {
            built = StructuralIndex::build(store);
            &built
        }
    };
    let index_count = idx.len();
    let index_pages = index_count.div_ceil(IDX_PER_PAGE).max(1);
    let index_start = strings_start + string_pages.len() as u32;
    let postings_start = index_start + index_pages as u32;

    let mut index_region = vec![0u8; index_pages * PAGE_SIZE];
    for r in 0..index_count {
        let off = (r / IDX_PER_PAGE) * PAGE_SIZE + (r % IDX_PER_PAGE) * IDX_REC;
        let rec = &mut index_region[off..off + IDX_REC];
        let rank = r as u32;
        put_u32(rec, 0, idx.node_at(rank).0);
        put_u32(rec, 4, idx.size_at(rank));
        put_u32(rec, 8, idx.name_at(rank).map_or(NIL, |n| n.0));
        rec[12] = idx.kind_at(rank) as u8;
    }

    // --- content index ----------------------------------------------------
    let (entries, uncovered) = collect_content_entries(store, idx);

    // Postings pages: per-key chains of (rank, node) pairs, built
    // back-to-front (like string chains) so a walk from the head yields
    // ascending ranks.
    let mut posting_pages: Vec<SlottedPageBuilder> = vec![SlottedPageBuilder::new()];
    let pair_cap = (SlottedPageBuilder::max_record() - CHAIN_HDR) / POST_PAIR;
    let mut insert_postings = |pairs: &[(u32, u32)]| -> (u32, u16) {
        let mut next: (u32, u16) = (NIL, 0);
        let chunks: Vec<&[(u32, u32)]> = pairs.chunks(pair_cap).collect();
        for chunk in chunks.iter().rev() {
            let mut rec = Vec::with_capacity(CHAIN_HDR + chunk.len() * POST_PAIR);
            rec.extend_from_slice(&next.0.to_le_bytes());
            rec.extend_from_slice(&next.1.to_le_bytes());
            for &(rank, node) in *chunk {
                rec.extend_from_slice(&rank.to_le_bytes());
                rec.extend_from_slice(&node.to_le_bytes());
            }
            let slot = match posting_pages.last_mut().and_then(|p| p.insert(&rec)) {
                Some(s) => s,
                None => {
                    let mut fresh = SlottedPageBuilder::new();
                    let Some(s) = fresh.insert(&rec) else {
                        unreachable!("posting segment sized to fit an empty page");
                    };
                    posting_pages.push(fresh);
                    s
                }
            };
            next = (postings_start + (posting_pages.len() - 1) as u32, slot);
        }
        next
    };

    // Directory pages: sorted (kind, name, value) keys pointing at their
    // posting chains; the first key of each page becomes an ISAM fence.
    let mut dir_pages: Vec<SlottedPageBuilder> = vec![SlottedPageBuilder::new()];
    let mut fences: Vec<(u8, u32, Vec<u8>)> = Vec::new();
    for ((kind, name, value), pairs) in &entries {
        let head = insert_postings(pairs);
        let mut rec = Vec::with_capacity(DIR_FIXED + value.len());
        rec.push(*kind);
        rec.extend_from_slice(&name.to_le_bytes());
        rec.extend_from_slice(&(value.len() as u16).to_le_bytes());
        rec.extend_from_slice(value);
        rec.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        rec.extend_from_slice(&head.0.to_le_bytes());
        rec.extend_from_slice(&head.1.to_le_bytes());
        let page_index = match dir_pages.last_mut().and_then(|p| p.insert(&rec)) {
            Some(_) => dir_pages.len() - 1,
            None => {
                let mut fresh = SlottedPageBuilder::new();
                if fresh.insert(&rec).is_none() {
                    unreachable!("directory record sized to fit an empty page");
                }
                dir_pages.push(fresh);
                dir_pages.len() - 1
            }
        };
        if page_index == fences.len() {
            fences.push((*kind, *name, value.clone()));
        }
    }

    // Meta blob: uncovered element names, then the dir fence keys.
    let mut meta_blob = Vec::new();
    meta_blob.extend_from_slice(&(uncovered.len() as u32).to_le_bytes());
    for name in &uncovered {
        meta_blob.extend_from_slice(&name.to_le_bytes());
    }
    meta_blob.extend_from_slice(&(fences.len() as u32).to_le_bytes());
    for (kind, name, value) in &fences {
        meta_blob.push(*kind);
        meta_blob.extend_from_slice(&name.to_le_bytes());
        meta_blob.extend_from_slice(&(value.len() as u16).to_le_bytes());
        meta_blob.extend_from_slice(value);
    }
    let meta_pages = meta_blob.len().div_ceil(PAGE_PAYLOAD).max(1);
    let meta_start = postings_start + posting_pages.len() as u32;
    let dir_start = meta_start + meta_pages as u32;
    let total_pages = dir_start + dir_pages.len() as u32;

    // --- header ----------------------------------------------------------
    let mut header = Box::new([0u8; PAGE_SIZE]);
    header[0..8].copy_from_slice(MAGIC);
    put_u32(&mut header[..], 8, FORMAT_VERSION);
    put_u32(&mut header[..], 12, node_count as u32);
    put_u32(&mut header[..], 16, names_start);
    put_u32(&mut header[..], 20, names_blob.len() as u32);
    put_u32(&mut header[..], 24, nodes_start);
    put_u32(&mut header[..], 28, strings_start);
    put_u32(&mut header[..], 32, store.names().len() as u32);
    put_u32(&mut header[..], 36, total_pages);
    put_u32(&mut header[..], 40, index_start);
    put_u32(&mut header[..], 44, postings_start);
    put_u32(&mut header[..], 48, meta_start);
    put_u32(&mut header[..], 52, dir_start);
    put_u32(&mut header[..], 56, index_count as u32);
    put_u32(&mut header[..], 60, meta_blob.len() as u32);
    seal_page(&mut header);

    // --- write the temp file, page by page, each sealed ------------------
    let file = std::fs::File::create(tmp).map_err(DiskError::io)?;
    let mut w = PageWriter {
        inner: std::io::BufWriter::new(file),
        pages_written: 0,
        fail_write_at: failpoint.fail_write_at,
    };
    w.write_page(&header)?;
    let mut page = Box::new([0u8; PAGE_SIZE]);
    for i in 0..names_pages {
        let start = (i * PAGE_PAYLOAD).min(names_blob.len());
        let end = ((i + 1) * PAGE_PAYLOAD).min(names_blob.len());
        page[..].fill(0);
        page[..end - start].copy_from_slice(&names_blob[start..end]);
        seal_page(&mut page);
        w.write_page(&page)?;
    }
    for chunk in node_region.chunks_exact_mut(PAGE_SIZE) {
        // chunks_exact_mut guarantees PAGE_SIZE-long chunks.
        if let Ok(arr) = <&mut [u8; PAGE_SIZE]>::try_from(chunk) {
            seal_page(arr);
            w.write_page(arr)?;
        }
    }
    for p in string_pages {
        w.write_page(&p.finish())?;
    }
    for chunk in index_region.chunks_exact_mut(PAGE_SIZE) {
        if let Ok(arr) = <&mut [u8; PAGE_SIZE]>::try_from(chunk) {
            seal_page(arr);
            w.write_page(arr)?;
        }
    }
    for p in posting_pages {
        w.write_page(&p.finish())?;
    }
    for i in 0..meta_pages {
        let start = (i * PAGE_PAYLOAD).min(meta_blob.len());
        let end = ((i + 1) * PAGE_PAYLOAD).min(meta_blob.len());
        page[..].fill(0);
        page[..end - start].copy_from_slice(&meta_blob[start..end]);
        seal_page(&mut page);
        w.write_page(&page)?;
    }
    for p in dir_pages {
        w.write_page(&p.finish())?;
    }

    // --- durability: flush + fsync data, rename, fsync directory ---------
    w.inner.flush().map_err(DiskError::io)?;
    let file = w.inner.into_inner().map_err(|e| DiskError::io(e.into_error()))?;
    if failpoint.fail_sync {
        return Err(DiskError::io(IoFailPoint::injected_error()));
    }
    file.sync_all().map_err(DiskError::io)?;
    drop(file);
    if failpoint.fail_rename {
        return Err(DiskError::io(IoFailPoint::injected_error()));
    }
    std::fs::rename(tmp, path).map_err(DiskError::io)?;
    // Persist the rename itself. Best-effort: not every platform can
    // fsync a directory handle, and the data file is already durable.
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// One pass over the ranked nodes collecting the content-index entries:
/// `(kind, name, value) → rank-sorted (rank, node) postings` plus the
/// set of element names the index does *not* cover.
///
/// Coverage rules (DESIGN.md §19):
/// * attribute entries map the attribute's value to its **owning
///   element** (rank and node of the owner);
/// * element entries exist only for elements with **no element
///   children**; their value is the concatenation of direct text
///   children (comments/PIs ignored), which equals the XPath
///   string-value for such elements. Any same-named element *with*
///   element children marks the name uncovered — probes on it fall back
///   to scans;
/// * values longer than [`VALUE_CAP`] are skipped without poisoning
///   coverage: probes for over-cap values also refuse, so no under-cap
///   probe can miss an equal stored value.
#[allow(clippy::type_complexity)]
fn collect_content_entries(
    store: &ArenaStore,
    idx: &StructuralIndex,
) -> (BTreeMap<(u8, u32, Vec<u8>), Vec<(u32, u32)>>, BTreeSet<u32>) {
    let mut map: BTreeMap<(u8, u32, Vec<u8>), Vec<(u32, u32)>> = BTreeMap::new();
    let mut uncovered = BTreeSet::new();
    for r in 0..idx.len() as u32 {
        let node = idx.node_at(r);
        match idx.kind_at(r) {
            NodeKind::Attribute => {
                let Some(name) = idx.name_at(r) else { continue };
                let value = store.value(node).unwrap_or_default();
                if value.len() > VALUE_CAP {
                    continue;
                }
                let Some(owner) = store.parent(node) else {
                    continue;
                };
                let Some(owner_rank) = idx.rank_of(owner) else {
                    continue;
                };
                // Rank-ascending iteration visits attributes in owner
                // order, so each posting list stays sorted by rank.
                map.entry((CONTENT_ATTR, name.0, value.into_bytes()))
                    .or_default()
                    .push((owner_rank, owner.0));
            }
            NodeKind::Element => {
                let Some(name) = idx.name_at(r) else { continue };
                let mut text = String::new();
                let mut has_element_child = false;
                let mut c = store.first_child(node);
                while let Some(ch) = c {
                    match store.kind(ch) {
                        NodeKind::Element => has_element_child = true,
                        NodeKind::Text => {
                            if let Some(v) = store.value(ch) {
                                text.push_str(&v);
                            }
                        }
                        _ => {}
                    }
                    c = store.next_sibling(ch);
                }
                if has_element_child {
                    uncovered.insert(name.0);
                } else if text.len() <= VALUE_CAP {
                    map.entry((CONTENT_ELEM, name.0, text.into_bytes()))
                        .or_default()
                        .push((r, node.0));
                }
            }
            _ => {}
        }
    }
    (map, uncovered)
}

/// What [`DiskStore::verify`] checked (all counts are exact, so tests
/// can hand-compute them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Pages whose checksum was verified (the whole file).
    pub pages: u64,
    /// Node records fully decoded and link-checked.
    pub nodes: u64,
    /// Distinct names in the dictionary.
    pub names: u64,
    /// Bytes of string content followed through chain links.
    pub string_bytes: u64,
    /// Structural-index entries decoded with rank/size bounds verified.
    pub index_entries: u64,
    /// Content-index directory keys checked (sorted order, fence
    /// agreement, posting-chain integrity).
    pub content_keys: u64,
    /// Content postings followed through chain links (rank-sorted).
    pub postings: u64,
}

/// Resident content-index metadata (tiny): the element names the index
/// does not cover and the first key of every directory page.
struct ContentMeta {
    uncovered_elements: HashSet<u32>,
    fences: Vec<(u8, u32, Vec<u8>)>,
}

/// A decoded content-directory record (borrowing its page).
struct DirEntry<'a> {
    kind: u8,
    name: u32,
    value: &'a [u8],
    count: u32,
    head_page: u32,
    head_slot: u16,
}

/// Read-only paged document store.
pub struct DiskStore {
    buffer: BufferManager,
    header: Header,
    names: NameTable,
    /// Lazily loaded structural index (streamed off the index region on
    /// first use; `None` after a failed load, with the fault latched).
    index: std::sync::OnceLock<Option<StructuralIndex>>,
    /// Lazily loaded content-index metadata (uncovered names + fences).
    content: std::sync::OnceLock<Option<ContentMeta>>,
    /// Lazily built id lookup for values the content index skips
    /// (over-[`VALUE_CAP`]), or for all ids on plain (index-less) opens.
    long_ids: std::sync::OnceLock<Option<HashMap<Box<str>, NodeId>>>,
    /// `open_plain` hides the persisted indexes so benches and
    /// differential tests can exercise the pure cursor paths.
    indexes_enabled: bool,
    /// First storage fault observed while serving infallible [`XmlStore`]
    /// navigation; drained by the executor (`take_storage_fault`).
    fault: Mutex<Option<StorageFault>>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("nodes", &self.header.node_count)
            .field("pages", &self.header.total_pages)
            .finish_non_exhaustive()
    }
}

impl DiskStore {
    /// Open a store file with a buffer of `buffer_pages` frames.
    pub fn open(path: &Path, buffer_pages: usize) -> Result<DiskStore, DiskError> {
        DiskStore::open_with(path, buffer_pages, IoFailPoint::none())
    }

    /// Open with the persisted structural and content indexes hidden:
    /// `structural_index()` and `content_probe()` report `None`, so every
    /// consumer takes the cursor/scan fallback. Benchmarks and
    /// differential tests use this to compare indexed and unindexed
    /// execution over the very same page file.
    pub fn open_plain(path: &Path, buffer_pages: usize) -> Result<DiskStore, DiskError> {
        let mut store = DiskStore::open_with(path, buffer_pages, IoFailPoint::none())?;
        store.indexes_enabled = false;
        Ok(store)
    }

    /// [`DiskStore::open`] with injected I/O faults (test harness).
    pub fn open_with(
        path: &Path,
        buffer_pages: usize,
        failpoint: IoFailPoint,
    ) -> Result<DiskStore, DiskError> {
        // Truncation screen before any page read: the file must be a
        // non-zero whole number of pages.
        let len = std::fs::metadata(path).map_err(DiskError::io)?.len();
        if len == 0 {
            return Err(DiskError::corrupt("empty file"));
        }
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DiskError::corrupt(format!(
                "file length {len} is not a whole number of {PAGE_SIZE}-byte pages (truncated?)"
            )));
        }
        let buffer = BufferManager::open_with(
            path,
            buffer_pages,
            BufferOptions { verify_checksums: true, failpoint },
        )?;
        let h = buffer.pin(0)?;
        if &h[0..8] != MAGIC {
            return Err(DiskError::corrupt_at("bad magic", 0));
        }
        let version = get_u32(&h[..], 8);
        if version != FORMAT_VERSION {
            return Err(DiskError::corrupt_at(
                format!("unsupported store format version {version} (expected {FORMAT_VERSION})"),
                0,
            ));
        }
        let header = Header {
            node_count: get_u32(&h[..], 12),
            names_start: get_u32(&h[..], 16),
            names_bytes: get_u32(&h[..], 20),
            nodes_start: get_u32(&h[..], 24),
            strings_start: get_u32(&h[..], 28),
            total_pages: get_u32(&h[..], 36),
            index_start: get_u32(&h[..], 40),
            postings_start: get_u32(&h[..], 44),
            meta_start: get_u32(&h[..], 48),
            dir_start: get_u32(&h[..], 52),
            index_count: get_u32(&h[..], 56),
            meta_bytes: get_u32(&h[..], 60),
        };
        let name_count = get_u32(&h[..], 32);
        // Release the header pin before reading further pages: a
        // one-frame buffer must be able to evict page 0.
        drop(h);
        validate_header(&header, name_count, len / PAGE_SIZE as u64)?;

        // Load the name dictionary (kept resident; it is tiny relative to
        // the document and node tests hit it constantly).
        let names_bytes = header.names_bytes as usize;
        let mut blob = Vec::with_capacity(names_bytes);
        let npages = names_bytes.div_ceil(PAGE_PAYLOAD).max(1);
        for i in 0..npages {
            let p = buffer.pin(header.names_start + i as u32)?;
            let take = (names_bytes - blob.len()).min(PAGE_PAYLOAD);
            blob.extend_from_slice(&p[..take]);
        }
        let mut names = NameTable::default();
        let mut off = 0usize;
        for i in 0..name_count {
            if off + 4 > blob.len() {
                return Err(DiskError::corrupt_at(
                    format!("name dictionary truncated at entry {i}"),
                    header.names_start,
                ));
            }
            let nlen = get_u32(&blob, off) as usize;
            off += 4;
            let Some(bytes) = blob.get(off..off.saturating_add(nlen)) else {
                return Err(DiskError::corrupt_at(
                    format!("name dictionary entry {i} runs past the region ({nlen} bytes)"),
                    header.names_start,
                ));
            };
            let s = std::str::from_utf8(bytes).map_err(|_| {
                DiskError::corrupt_at(
                    format!("name dictionary entry {i} is not UTF-8"),
                    header.names_start,
                )
            })?;
            names.intern(s);
            off += nlen;
        }
        if names.len() as u32 != name_count {
            return Err(DiskError::corrupt_at(
                "name dictionary contains duplicate entries",
                header.names_start,
            ));
        }

        // No O(n) open-time scans: the structural index, content
        // metadata, and the long-id fallback all load lazily on first
        // use, streamed through the buffer manager.
        Ok(DiskStore {
            buffer,
            header,
            names,
            index: std::sync::OnceLock::new(),
            content: std::sync::OnceLock::new(),
            long_ids: std::sync::OnceLock::new(),
            indexes_enabled: true,
            fault: Mutex::new(None),
        })
    }

    /// Serialise + reopen convenience used by tests and examples.
    pub fn create_from(
        arena: &ArenaStore,
        path: &Path,
        buffer_pages: usize,
    ) -> Result<DiskStore, DiskError> {
        create_store_file(arena, path)?;
        DiskStore::open(path, buffer_pages)
    }

    /// Stream the index region through the buffer manager and decode it
    /// into a [`StructuralIndex`], validating every field: node ids in
    /// range, no duplicate ranks, kinds and names decodable, subtree
    /// intervals inside the document.
    fn try_load_structural_index(&self) -> Result<StructuralIndex, DiskError> {
        let n = self.header.index_count as usize;
        let mut rank_of = vec![NIL; self.header.node_count as usize];
        let mut node_at = Vec::with_capacity(n);
        let mut size = Vec::with_capacity(n);
        let mut kind = Vec::with_capacity(n);
        let mut name = Vec::with_capacity(n);
        let pages = n.div_ceil(IDX_PER_PAGE).max(1);
        let mut rank = 0usize;
        for pi in 0..pages {
            let pageno = self.header.index_start + pi as u32;
            let pg = self.buffer.pin(pageno)?;
            for s in 0..IDX_PER_PAGE {
                if rank >= n {
                    break;
                }
                let off = s * IDX_REC;
                let rec = &pg[off..off + IDX_REC];
                let node = get_u32(rec, 0);
                let sz = get_u32(rec, 4);
                let nm = get_u32(rec, 8);
                let slot = s as u16;
                if node >= self.header.node_count {
                    return Err(DiskError::corrupt_at_slot(
                        format!(
                            "index entry {rank} names node {node}, past the node count {}",
                            self.header.node_count
                        ),
                        pageno,
                        slot,
                    ));
                }
                if rank_of[node as usize] != NIL {
                    return Err(DiskError::corrupt_at_slot(
                        format!("index entry {rank} ranks node {node} twice"),
                        pageno,
                        slot,
                    ));
                }
                let Some(k) = NodeKind::from_u8(rec[12]) else {
                    return Err(DiskError::corrupt_at_slot(
                        format!("index entry {rank} has invalid kind byte {}", rec[12]),
                        pageno,
                        slot,
                    ));
                };
                if nm != NIL && nm as usize >= self.names.len() {
                    return Err(DiskError::corrupt_at_slot(
                        format!(
                            "index entry {rank} names name id {nm} (dictionary has {} names)",
                            self.names.len()
                        ),
                        pageno,
                        slot,
                    ));
                }
                if rank as u64 + u64::from(sz) >= n as u64 {
                    return Err(DiskError::corrupt_at_slot(
                        format!(
                            "index entry {rank} claims subtree size {sz}, past the last rank {}",
                            n - 1
                        ),
                        pageno,
                        slot,
                    ));
                }
                rank_of[node as usize] = rank as u32;
                node_at.push(NodeId(node));
                size.push(sz);
                kind.push(k);
                name.push(nm);
                rank += 1;
            }
        }
        if node_at.first() != Some(&NodeId::DOCUMENT) {
            return Err(DiskError::corrupt_at(
                "index rank 0 is not the document node",
                self.header.index_start,
            ));
        }
        Ok(StructuralIndex::from_disk_parts(rank_of, node_at, size, kind, name, self))
    }

    /// Load the resident content-index metadata (uncovered element
    /// names + directory fence keys) off the meta region.
    fn try_load_content_meta(&self) -> Result<ContentMeta, DiskError> {
        let bytes = self.header.meta_bytes as usize;
        let mut blob = Vec::with_capacity(bytes);
        let mpages = bytes.div_ceil(PAGE_PAYLOAD).max(1);
        for i in 0..mpages {
            let p = self.buffer.pin(self.header.meta_start + i as u32)?;
            let take = (bytes - blob.len()).min(PAGE_PAYLOAD);
            blob.extend_from_slice(&p[..take]);
        }
        let at = self.header.meta_start;
        let corrupt = |msg: String| DiskError::corrupt_at(msg, at);
        let mut off = 0usize;
        let read_u32 = |o: &mut usize| -> Result<u32, DiskError> {
            let Some(b) = blob.get(*o..*o + 4) else {
                return Err(DiskError::corrupt_at("content metadata truncated", at));
            };
            *o += 4;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        let unc = read_u32(&mut off)?;
        if u64::from(unc) * 4 > blob.len() as u64 {
            return Err(corrupt(format!("{unc} uncovered entries cannot fit the meta region")));
        }
        let mut uncovered = HashSet::with_capacity(unc as usize);
        for _ in 0..unc {
            let name = read_u32(&mut off)?;
            if name as usize >= self.names.len() {
                return Err(corrupt(format!(
                    "uncovered entry names name id {name} (dictionary has {} names)",
                    self.names.len()
                )));
            }
            uncovered.insert(name);
        }
        let fcount = read_u32(&mut off)?;
        let dir_page_count = self.header.total_pages - self.header.dir_start;
        if !(fcount == dir_page_count || (fcount == 0 && dir_page_count == 1)) {
            return Err(corrupt(format!(
                "{fcount} fence keys for {dir_page_count} directory page(s)"
            )));
        }
        let mut fences: Vec<(u8, u32, Vec<u8>)> = Vec::with_capacity(fcount as usize);
        for i in 0..fcount {
            let Some(&kind) = blob.get(off) else {
                return Err(corrupt(format!("fence {i} truncated")));
            };
            off += 1;
            if kind != CONTENT_ATTR && kind != CONTENT_ELEM {
                return Err(corrupt(format!("fence {i} has invalid kind byte {kind}")));
            }
            let name = read_u32(&mut off)?;
            if name as usize >= self.names.len() {
                return Err(corrupt(format!("fence {i} names an unknown name id {name}")));
            }
            let Some(lb) = blob.get(off..off + 2) else {
                return Err(corrupt(format!("fence {i} truncated")));
            };
            let vlen = u16::from_le_bytes([lb[0], lb[1]]) as usize;
            off += 2;
            if vlen > VALUE_CAP {
                return Err(corrupt(format!("fence {i} value length {vlen} exceeds the cap")));
            }
            let Some(value) = blob.get(off..off + vlen) else {
                return Err(corrupt(format!("fence {i} value runs past the meta region")));
            };
            off += vlen;
            let key = (kind, name, value.to_vec());
            if fences.last().is_some_and(|prev| *prev >= key) {
                return Err(corrupt(format!("fence {i} is not in ascending key order")));
            }
            fences.push(key);
        }
        Ok(ContentMeta { uncovered_elements: uncovered, fences })
    }

    /// The lazily loaded content metadata (`None` after a failed load,
    /// with the fault latched for the executor).
    fn content_meta(&self) -> Option<&ContentMeta> {
        self.content
            .get_or_init(|| match self.try_load_content_meta() {
                Ok(m) => Some(m),
                Err(e) => {
                    self.note(Err::<(), DiskError>(e), ());
                    None
                }
            })
            .as_ref()
    }

    /// Decode one directory record, validating every field.
    fn parse_dir_record<'a>(
        &self,
        rec: &'a [u8],
        page: u32,
        slot: u16,
    ) -> Result<DirEntry<'a>, DiskError> {
        if rec.len() < DIR_FIXED {
            return Err(DiskError::corrupt_at_slot(
                format!("directory record too short ({} bytes)", rec.len()),
                page,
                slot,
            ));
        }
        let kind = rec[0];
        if kind != CONTENT_ATTR && kind != CONTENT_ELEM {
            return Err(DiskError::corrupt_at_slot(
                format!("directory record has invalid kind byte {kind}"),
                page,
                slot,
            ));
        }
        let name = get_u32(rec, 1);
        if name as usize >= self.names.len() {
            return Err(DiskError::corrupt_at_slot(
                format!(
                    "directory record names name id {name} (dictionary has {} names)",
                    self.names.len()
                ),
                page,
                slot,
            ));
        }
        let vlen = get_u16(rec, 5) as usize;
        if vlen > VALUE_CAP || rec.len() != DIR_FIXED + vlen {
            return Err(DiskError::corrupt_at_slot(
                format!(
                    "directory record length {} does not match its value length {vlen}",
                    rec.len()
                ),
                page,
                slot,
            ));
        }
        let value = &rec[7..7 + vlen];
        let count = get_u32(rec, 7 + vlen);
        if count == 0 || u64::from(count) > u64::from(self.header.index_count) {
            return Err(DiskError::corrupt_at_slot(
                format!("directory record posting count {count} out of range"),
                page,
                slot,
            ));
        }
        Ok(DirEntry {
            kind,
            name,
            value,
            count,
            head_page: get_u32(rec, 11 + vlen),
            head_slot: get_u16(rec, 15 + vlen),
        })
    }

    /// Walk a posting chain from its head, validating coordinates,
    /// rank/node bounds, ascending rank order, and the directory count.
    fn try_walk_postings(
        &self,
        mut page: u32,
        mut slot: u16,
        count: u32,
    ) -> Result<Vec<(u32, NodeId)>, DiskError> {
        let mut out: Vec<(u32, NodeId)> = Vec::with_capacity(count.min(65_536) as usize);
        let mut hops = 0u64;
        loop {
            if page < self.header.postings_start || page >= self.header.meta_start {
                return Err(DiskError::corrupt_at_slot(
                    format!(
                        "posting ref points at page {page}, outside the postings region [{}, {})",
                        self.header.postings_start, self.header.meta_start
                    ),
                    page,
                    slot,
                ));
            }
            // Every segment written carries at least one pair, so more
            // hops than the directory count is a cycle.
            hops += 1;
            if hops > u64::from(count) {
                return Err(DiskError::corrupt_at_slot("posting chain cycle", page, slot));
            }
            let p = self.buffer.pin(page)?;
            let sp = SlottedPage::new(&p[..]);
            let Some(rec) = sp.record(slot) else {
                return Err(DiskError::corrupt_at_slot(
                    format!("invalid posting slot (page has {} slots)", sp.slot_count()),
                    page,
                    slot,
                ));
            };
            if rec.len() <= CHAIN_HDR || !(rec.len() - CHAIN_HDR).is_multiple_of(POST_PAIR) {
                return Err(DiskError::corrupt_at_slot(
                    format!("posting record size {} is not a chain of pairs", rec.len()),
                    page,
                    slot,
                ));
            }
            let next_page = get_u32(rec, 0);
            let next_slot = get_u16(rec, 4);
            for pair in rec[CHAIN_HDR..].chunks_exact(POST_PAIR) {
                let rank = get_u32(pair, 0);
                let node = get_u32(pair, 4);
                if rank >= self.header.index_count {
                    return Err(DiskError::corrupt_at_slot(
                        format!("posting rank {rank} out of range"),
                        page,
                        slot,
                    ));
                }
                if node >= self.header.node_count {
                    return Err(DiskError::corrupt_at_slot(
                        format!("posting node {node} out of range"),
                        page,
                        slot,
                    ));
                }
                if out.last().is_some_and(|&(prev, _)| prev >= rank) {
                    return Err(DiskError::corrupt_at_slot(
                        "postings not sorted by ascending rank",
                        page,
                        slot,
                    ));
                }
                if out.len() as u64 >= u64::from(count) {
                    return Err(DiskError::corrupt_at_slot(
                        format!("posting chain longer than its directory count {count}"),
                        page,
                        slot,
                    ));
                }
                out.push((rank, NodeId(node)));
            }
            if next_page == NIL {
                break;
            }
            page = next_page;
            slot = next_slot;
        }
        if out.len() as u64 != u64::from(count) {
            return Err(DiskError::corrupt_at_slot(
                format!("posting chain holds {} pairs, directory says {count}", out.len()),
                page,
                slot,
            ));
        }
        Ok(out)
    }

    /// Directory lookup: fence binary search → one dir page scan →
    /// posting-chain walk. `Ok(vec![])` is a definitive miss.
    fn try_probe(
        &self,
        meta: &ContentMeta,
        kind: u8,
        name: u32,
        value: &[u8],
    ) -> Result<Vec<(u32, NodeId)>, DiskError> {
        let pos = meta
            .fences
            .partition_point(|f| (f.0, f.1, f.2.as_slice()) <= (kind, name, value));
        if pos == 0 {
            // The key sorts before the first directory key: not present.
            return Ok(Vec::new());
        }
        let page = self.header.dir_start + (pos as u32 - 1);
        let p = self.buffer.pin(page)?;
        let sp = SlottedPage::new(&p[..]);
        for slot in 0..sp.slot_count() {
            let Some(rec) = sp.record(slot) else {
                return Err(DiskError::corrupt_at_slot(
                    format!("invalid directory slot (page has {} slots)", sp.slot_count()),
                    page,
                    slot,
                ));
            };
            let e = self.parse_dir_record(rec, page, slot)?;
            if (e.kind, e.name, e.value) == (kind, name, value) {
                return self.try_walk_postings(e.head_page, e.head_slot, e.count);
            }
        }
        Ok(Vec::new())
    }

    /// Scan for `id` attributes the content index does not cover:
    /// over-cap values on indexed opens, every value on plain opens.
    /// Mirrors the retired open-time id-index (first owner in node-id
    /// order wins on duplicates).
    fn try_scan_ids(&self) -> Result<HashMap<Box<str>, NodeId>, DiskError> {
        let mut index = HashMap::new();
        let Some(id_name) = self.names.lookup("id") else {
            return Ok(index);
        };
        for i in 0..self.header.node_count {
            let n = NodeId(i);
            if self.try_kind(n)? == NodeKind::Attribute && self.try_name(n)? == Some(id_name) {
                if let (Some(v), Some(owner)) = (self.try_value(n)?, self.try_link(n, 8)?) {
                    if !self.indexes_enabled || v.len() > VALUE_CAP {
                        index.entry(v.into_boxed_str()).or_insert(owner);
                    }
                }
            }
        }
        Ok(index)
    }

    /// Buffer-manager statistics (page hits/misses/evictions, checksum
    /// verification counters).
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Full-file integrity check: every page checksum, every node record
    /// (kind, name, all links, value chains), the complete dictionary,
    /// the structural-index region (rank/size bounds), and the content
    /// index (directory sort order, fence agreement, posting chains
    /// sorted by rank with exact counts). Stops at the first fault with
    /// its coordinates.
    pub fn verify(&self) -> Result<VerifyReport, DiskError> {
        let mut report = VerifyReport { names: self.names.len() as u64, ..VerifyReport::default() };
        for p in 0..self.header.total_pages {
            self.buffer.pin(p)?;
            report.pages += 1;
        }
        for i in 0..self.header.node_count {
            let n = NodeId(i);
            self.try_kind(n)?;
            self.try_name(n)?;
            for field in [8usize, 12, 16, 20, 24, 28] {
                self.try_link(n, field)?;
            }
            if let Some(v) = self.try_value(n)? {
                report.string_bytes += v.len() as u64;
            }
            report.nodes += 1;
        }
        // Structural-index region: full decode with bounds checks
        // (independent of the lazily cached copy).
        let idx = self.try_load_structural_index()?;
        report.index_entries = idx.len() as u64;
        // Content index: metadata, directory, postings.
        let meta = self.try_load_content_meta()?;
        let mut prev: Option<(u8, u32, Vec<u8>)> = None;
        let dir_page_count = self.header.total_pages - self.header.dir_start;
        for pi in 0..dir_page_count {
            let page = self.header.dir_start + pi;
            let p = self.buffer.pin(page)?;
            let sp = SlottedPage::new(&p[..]);
            for slot in 0..sp.slot_count() {
                let Some(rec) = sp.record(slot) else {
                    return Err(DiskError::corrupt_at_slot(
                        format!("invalid directory slot (page has {} slots)", sp.slot_count()),
                        page,
                        slot,
                    ));
                };
                let e = self.parse_dir_record(rec, page, slot)?;
                let key = (e.kind, e.name, e.value.to_vec());
                if slot == 0 && meta.fences.get(pi as usize) != Some(&key) {
                    return Err(DiskError::corrupt_at_slot(
                        "directory fence key disagrees with the page's first key",
                        page,
                        slot,
                    ));
                }
                if prev.as_ref().is_some_and(|pk| *pk >= key) {
                    return Err(DiskError::corrupt_at_slot(
                        "directory keys not in ascending order",
                        page,
                        slot,
                    ));
                }
                let pairs = self.try_walk_postings(e.head_page, e.head_slot, e.count)?;
                report.content_keys += 1;
                report.postings += pairs.len() as u64;
                prev = Some(key);
            }
        }
        Ok(report)
    }

    /// The first storage fault recorded by infallible navigation, if any
    /// (left in place; see [`XmlStore::take_storage_fault`] to drain it).
    pub fn storage_fault(&self) -> Option<StorageFault> {
        self.fault.lock().clone()
    }

    /// Record `e` as the session fault (first one wins) and surface the
    /// inert fallback to the caller.
    fn note<T>(&self, r: Result<T, DiskError>, fallback: T) -> T {
        match r {
            Ok(v) => v,
            Err(e) => {
                let mut guard = self.fault.lock();
                if guard.is_none() {
                    *guard = Some(StorageFault::from(&e));
                }
                fallback
            }
        }
    }

    /// Page/slot coordinate of node `n`'s record.
    fn node_coord(&self, n: NodeId) -> (u32, u16) {
        (
            self.header.nodes_start + n.0 / NODES_PER_PAGE as u32,
            (n.0 as usize % NODES_PER_PAGE) as u16,
        )
    }

    fn try_record(&self, n: NodeId) -> Result<[u8; NODE_REC], DiskError> {
        if n.0 >= self.header.node_count {
            return Err(DiskError::corrupt(format!(
                "node id {n} out of range (store has {} nodes)",
                self.header.node_count
            )));
        }
        let (page, idx) = self.node_coord(n);
        let p = self.buffer.pin(page)?;
        let off = idx as usize * NODE_REC;
        let mut rec = [0u8; NODE_REC];
        rec.copy_from_slice(&p[off..off + NODE_REC]);
        Ok(rec)
    }

    fn try_kind(&self, n: NodeId) -> Result<NodeKind, DiskError> {
        let rec = self.try_record(n)?;
        let (page, idx) = self.node_coord(n);
        NodeKind::from_u8(rec[0]).ok_or_else(|| {
            DiskError::corrupt_at_slot(format!("invalid node kind byte {}", rec[0]), page, idx)
        })
    }

    fn try_name(&self, n: NodeId) -> Result<Option<NameId>, DiskError> {
        let v = get_u32(&self.try_record(n)?, 4);
        if v == NIL {
            return Ok(None);
        }
        if v as usize >= self.names.len() {
            let (page, idx) = self.node_coord(n);
            return Err(DiskError::corrupt_at_slot(
                format!("name id {v} out of range (dictionary has {} names)", self.names.len()),
                page,
                idx,
            ));
        }
        Ok(Some(NameId(v)))
    }

    fn try_link(&self, n: NodeId, field: usize) -> Result<Option<NodeId>, DiskError> {
        let v = get_u32(&self.try_record(n)?, field);
        if v == NIL {
            return Ok(None);
        }
        if v >= self.header.node_count {
            let (page, idx) = self.node_coord(n);
            return Err(DiskError::corrupt_at_slot(
                format!(
                    "link field {field} points at node {v}, past the node count {}",
                    self.header.node_count
                ),
                page,
                idx,
            ));
        }
        Ok(Some(NodeId(v)))
    }

    fn try_value(&self, n: NodeId) -> Result<Option<String>, DiskError> {
        let rec = self.try_record(n)?;
        let vp = get_u32(&rec, 36);
        if vp == NIL {
            return Ok(None);
        }
        let vs = get_u16(&rec, 1);
        Ok(Some(self.try_read_string(vp, vs)?))
    }

    fn check_string_coord(&self, page: u32, slot: u16) -> Result<(), DiskError> {
        if page < self.header.strings_start || page >= self.header.index_start {
            return Err(DiskError::corrupt_at_slot(
                format!(
                    "string ref points at page {page}, outside the strings region [{}, {})",
                    self.header.strings_start, self.header.index_start
                ),
                page,
                slot,
            ));
        }
        Ok(())
    }

    fn try_read_string(&self, mut page: u32, mut slot: u16) -> Result<String, DiskError> {
        let mut out = Vec::new();
        // Every chain segment occupies at least CHAIN_HDR + 4 directory
        // bytes on its page, bounding how many distinct segments the
        // strings region can hold; more hops than that is a cycle.
        let strings_pages = (self.header.index_start - self.header.strings_start) as u64;
        let max_segments = strings_pages * (PAGE_PAYLOAD / (CHAIN_HDR + 4)) as u64 + 1;
        let mut hops = 0u64;
        loop {
            self.check_string_coord(page, slot)?;
            hops += 1;
            if hops > max_segments {
                return Err(DiskError::corrupt_at_slot("string chain cycle", page, slot));
            }
            let p = self.buffer.pin(page)?;
            let sp = SlottedPage::new(&p[..]);
            let Some(rec) = sp.record(slot) else {
                return Err(DiskError::corrupt_at_slot(
                    format!("invalid string slot (page has {} slots)", sp.slot_count()),
                    page,
                    slot,
                ));
            };
            if rec.len() < CHAIN_HDR {
                return Err(DiskError::corrupt_at_slot(
                    format!("string record too short for its chain header ({} bytes)", rec.len()),
                    page,
                    slot,
                ));
            }
            let next_page = get_u32(rec, 0);
            let next_slot = get_u16(rec, 4);
            out.extend_from_slice(&rec[CHAIN_HDR..]);
            if next_page == NIL {
                break;
            }
            page = next_page;
            slot = next_slot;
        }
        String::from_utf8(out)
            .map_err(|_| DiskError::corrupt_at_slot("stored string is not UTF-8", page, slot))
    }
}

fn validate_header(h: &Header, name_count: u32, file_pages: u64) -> Result<(), DiskError> {
    if h.total_pages as u64 != file_pages {
        return Err(DiskError::corrupt_at(
            format!(
                "header says {} pages but the file has {file_pages} (truncated?)",
                h.total_pages
            ),
            0,
        ));
    }
    if h.node_count == 0 {
        return Err(DiskError::corrupt_at("node count is zero (no document node)", 0));
    }
    if h.names_start != 1 {
        return Err(DiskError::corrupt_at(
            format!("names region must start at page 1, not {}", h.names_start),
            0,
        ));
    }
    let names_pages = (h.names_bytes as usize).div_ceil(PAGE_PAYLOAD).max(1) as u32;
    if h.nodes_start != h.names_start + names_pages {
        return Err(DiskError::corrupt_at(
            format!(
                "nodes region starts at page {} but the {}-byte name dictionary ends at page {}",
                h.nodes_start,
                h.names_bytes,
                h.names_start + names_pages
            ),
            0,
        ));
    }
    let node_pages = (h.node_count as usize).div_ceil(NODES_PER_PAGE).max(1) as u32;
    if h.strings_start != h.nodes_start + node_pages {
        return Err(DiskError::corrupt_at(
            format!(
                "strings region starts at page {} but {} node records end at page {}",
                h.strings_start,
                h.node_count,
                h.nodes_start + node_pages
            ),
            0,
        ));
    }
    if h.strings_start >= h.index_start {
        return Err(DiskError::corrupt_at(
            format!(
                "strings region (page {}) leaves no room before the index region (page {})",
                h.strings_start, h.index_start
            ),
            0,
        ));
    }
    if h.index_count == 0 || h.index_count > h.node_count {
        return Err(DiskError::corrupt_at(
            format!(
                "index entry count {} out of range for {} node records",
                h.index_count, h.node_count
            ),
            0,
        ));
    }
    // Region-start sums are done in u64: a damaged start field near
    // u32::MAX must be rejected typed, not overflow the addition.
    let index_pages = (h.index_count as usize).div_ceil(IDX_PER_PAGE).max(1) as u32;
    if h.postings_start as u64 != h.index_start as u64 + index_pages as u64 {
        return Err(DiskError::corrupt_at(
            format!(
                "postings region starts at page {} but {} index entries end at page {}",
                h.postings_start,
                h.index_count,
                h.index_start as u64 + index_pages as u64
            ),
            0,
        ));
    }
    if h.postings_start >= h.meta_start {
        return Err(DiskError::corrupt_at(
            format!(
                "postings region (page {}) leaves no room before the meta region (page {})",
                h.postings_start, h.meta_start
            ),
            0,
        ));
    }
    let meta_pages = (h.meta_bytes as usize).div_ceil(PAGE_PAYLOAD).max(1) as u32;
    if h.dir_start as u64 != h.meta_start as u64 + meta_pages as u64 {
        return Err(DiskError::corrupt_at(
            format!(
                "directory region starts at page {} but {} meta bytes end at page {}",
                h.dir_start,
                h.meta_bytes,
                h.meta_start as u64 + meta_pages as u64
            ),
            0,
        ));
    }
    if h.dir_start >= h.total_pages {
        return Err(DiskError::corrupt_at(
            format!(
                "directory region (page {}) lies past the file end (page {})",
                h.dir_start, h.total_pages
            ),
            0,
        ));
    }
    // Each dictionary entry needs at least its 4-byte length prefix.
    if name_count as u64 * 4 > h.names_bytes as u64 {
        return Err(DiskError::corrupt_at(
            format!(
                "{} dictionary entries cannot fit in {} name-region bytes",
                name_count, h.names_bytes
            ),
            0,
        ));
    }
    Ok(())
}

impl XmlStore for DiskStore {
    fn node_count(&self) -> usize {
        self.header.node_count as usize
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        // Text is the inert fallback: no links, no children, no name.
        self.note(self.try_kind(n), NodeKind::Text)
    }

    fn name(&self, n: NodeId) -> Option<NameId> {
        self.note(self.try_name(n), None)
    }

    fn value(&self, n: NodeId) -> Option<String> {
        self.note(self.try_value(n), None)
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.note(self.try_link(n, 8), None)
    }

    fn first_child(&self, n: NodeId) -> Option<NodeId> {
        self.note(self.try_link(n, 12), None)
    }

    fn last_child(&self, n: NodeId) -> Option<NodeId> {
        self.note(self.try_link(n, 16), None)
    }

    fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.note(self.try_link(n, 20), None)
    }

    fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.note(self.try_link(n, 24), None)
    }

    fn first_attribute(&self, n: NodeId) -> Option<NodeId> {
        self.note(self.try_link(n, 28), None)
    }

    fn order(&self, n: NodeId) -> u64 {
        self.note(self.try_record(n).map(|r| get_u32(&r, 32) as u64), 0)
    }

    fn intern_lookup(&self, name: &str) -> Option<NameId> {
        self.names.lookup(name)
    }

    fn name_text(&self, id: NameId) -> String {
        self.names.text(id).to_owned()
    }

    fn element_by_id(&self, idval: &str) -> Option<NodeId> {
        if let Some(postings) = self.content_probe(ContentKind::Attribute, "id", idval) {
            // First posting = first owner in document order.
            return postings.first().map(|&(_, n)| n);
        }
        // Over-cap value, plain open, or a damaged content index: one
        // lazy scan covering exactly the ids the probe path cannot.
        self.long_ids
            .get_or_init(|| self.note(self.try_scan_ids().map(Some), None))
            .as_ref()?
            .get(idval)
            .copied()
    }

    fn structural_index(&self) -> Option<&StructuralIndex> {
        if !self.indexes_enabled {
            return None;
        }
        self.index
            .get_or_init(|| match self.try_load_structural_index() {
                Ok(idx) => Some(idx),
                Err(e) => {
                    self.note(Err::<(), DiskError>(e), ());
                    None
                }
            })
            .as_ref()
    }

    fn content_probe(
        &self,
        kind: ContentKind,
        name: &str,
        value: &str,
    ) -> Option<Vec<(u32, NodeId)>> {
        if !self.indexes_enabled || value.len() > VALUE_CAP {
            return None;
        }
        let kb = match kind {
            ContentKind::Attribute => CONTENT_ATTR,
            ContentKind::Element => CONTENT_ELEM,
        };
        let Some(name_id) = self.names.lookup(name) else {
            // The name occurs nowhere in the document: definitive miss.
            return Some(Vec::new());
        };
        let meta = self.content_meta()?;
        if kb == CONTENT_ELEM && meta.uncovered_elements.contains(&name_id.0) {
            return None;
        }
        self.note(self.try_probe(meta, kb, name_id.0, value.as_bytes()).map(Some), None)
    }

    fn storage_tripped(&self) -> bool {
        self.fault.lock().is_some()
    }

    fn take_storage_fault(&self) -> Option<StorageFault> {
        self.fault.lock().take()
    }

    fn buffer_stats(&self) -> Option<BufferStats> {
        Some(self.buffer.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::serialize::to_xml;
    use crate::tmp::TempPath;

    fn roundtrip(xml: &str) -> (TempPath, DiskStore) {
        let arena = parse_document(xml).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 16).unwrap();
        (t, disk)
    }

    #[test]
    fn structure_preserved() {
        let src = r#"<a x="1"><b>hello</b><!--c--><?pi data?><d><e/></d></a>"#;
        let (_t, disk) = roundtrip(src);
        assert_eq!(to_xml(&disk), src);
    }

    #[test]
    fn orders_preserved() {
        let src = "<a><b><c/></b><d/></a>";
        let arena = parse_document(src).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 4).unwrap();
        assert_eq!(arena.node_count(), disk.node_count());
        for i in 0..arena.node_count() as u32 {
            let n = NodeId(i);
            // Disk orders are the arena's index ranks (dense compaction
            // of the sparse gap keys): same relative order.
            assert_eq!(
                disk.order(n),
                u64::from(arena.structural_index().unwrap().rank_of(n).unwrap())
            );
            assert_eq!(
                arena.order(n),
                disk.order(n) << crate::arena::ORDER_GAP_SHIFT,
                "fresh-build gap keys are scaled ranks"
            );
            assert_eq!(arena.kind(n), disk.kind(n));
            assert_eq!(arena.parent(n), disk.parent(n));
            assert_eq!(arena.next_sibling(n), disk.next_sibling(n));
        }
    }

    #[test]
    fn long_text_chains_across_pages() {
        let big = "x".repeat(3 * PAGE_SIZE);
        let src = format!("<a><t>{big}</t></a>");
        let (_t, disk) = roundtrip(&src);
        let a = disk.first_child(disk.root()).unwrap();
        let t = disk.first_child(a).unwrap();
        assert_eq!(disk.string_value(t), big);
    }

    #[test]
    fn id_index_rebuilt_on_open() {
        let (_t, disk) = roundtrip(r#"<r><x id="k1"/><y id="k2"/></r>"#);
        let x = disk.element_by_id("k1").unwrap();
        assert_eq!(disk.node_name(x), "x");
        assert!(disk.element_by_id("nope").is_none());
    }

    #[test]
    fn small_buffer_still_correct_with_evictions() {
        // Enough nodes to span several node pages, tiny buffer.
        let mut xml = String::from("<r>");
        for i in 0..1000 {
            xml.push_str(&format!("<item n=\"{i}\">v{i}</item>"));
        }
        xml.push_str("</r>");
        let arena = parse_document(&xml).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 2).unwrap();
        assert_eq!(to_xml(&disk), to_xml(&arena));
        assert!(disk.buffer_stats().evictions > 0, "tiny buffer must evict");
    }

    #[test]
    fn bad_magic_rejected() {
        let t = TempPath::new(".bad");
        let mut page = [0u8; PAGE_SIZE];
        page[0..8].copy_from_slice(b"NOTNATIX");
        seal_page(&mut page);
        std::fs::write(t.path(), page).unwrap();
        assert!(matches!(DiskStore::open(t.path(), 2), Err(DiskError::Corrupt { .. })));
    }

    #[test]
    fn wrong_version_rejected_with_version_in_message() {
        let (t, _disk) = roundtrip("<a><b/></a>");
        let mut bytes = std::fs::read(t.path()).unwrap();
        put_u32(&mut bytes, 8, 99);
        let mut page0 = [0u8; PAGE_SIZE];
        page0.copy_from_slice(&bytes[..PAGE_SIZE]);
        seal_page(&mut page0);
        bytes[..PAGE_SIZE].copy_from_slice(&page0);
        std::fs::write(t.path(), &bytes).unwrap();
        let Err(err) = DiskStore::open(t.path(), 2) else {
            panic!("wrong version must be rejected");
        };
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn empty_attribute_value_roundtrips() {
        let (_t, disk) = roundtrip(r#"<a empty=""/>"#);
        let a = disk.first_child(disk.root()).unwrap();
        assert_eq!(disk.attribute_value(a, "empty").as_deref(), Some(""));
    }

    #[test]
    fn verify_reports_exact_counts() {
        let (_t, disk) = roundtrip(r#"<r><x id="k1">text</x></r>"#);
        let report = disk.verify().unwrap();
        assert_eq!(report.pages, disk.header.total_pages as u64);
        assert_eq!(report.nodes, disk.node_count() as u64);
        assert_eq!(report.names, disk.names.len() as u64);
        // "k1" + "text"
        assert_eq!(report.string_bytes, 6);
        // doc, r, x, @id, text — all ranked.
        assert_eq!(report.index_entries, 5);
        // (attr id="k1") + (elem x → "text"); r has an element child, so
        // its name is uncovered and contributes no key.
        assert_eq!(report.content_keys, 2);
        assert_eq!(report.postings, 2);
    }

    #[test]
    fn structural_index_loads_lazily_and_matches_arena() {
        let src = r#"<r a="1"><x p="2"><y/></x><z>t</z></r>"#;
        let arena = parse_document(src).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 16).unwrap();
        let di = disk.structural_index().expect("disk store loads its persisted index");
        let ai = arena.structural_index().unwrap();
        assert_eq!(di.len(), ai.len());
        for rank in 0..ai.len() as u32 {
            assert_eq!(di.node_at(rank), ai.node_at(rank), "rank {rank}");
            assert_eq!(di.size_at(rank), ai.size_at(rank), "rank {rank}");
            assert_eq!(di.kind_at(rank), ai.kind_at(rank), "rank {rank}");
            assert_eq!(di.name_at(rank), ai.name_at(rank), "rank {rank}");
        }
        assert_eq!(
            di.stats().fingerprint,
            ai.stats().fingerprint,
            "same shape must give the same stats fingerprint"
        );
        assert_ne!(di.stats().fingerprint, 0);
    }

    #[test]
    fn content_probe_attribute_and_element() {
        let (_t, disk) = roundtrip(
            r#"<dblp><article id="a1"><year>2002</year></article><article id="a2"><year>1999</year></article></dblp>"#,
        );
        let hits = disk.content_probe(ContentKind::Attribute, "id", "a2").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(disk.node_name(hits[0].1), "article");
        let y = disk.content_probe(ContentKind::Element, "year", "2002").unwrap();
        assert_eq!(y.len(), 1);
        assert_eq!(disk.string_value(y[0].1), "2002");
        // Definitive misses: covered keys that match nothing.
        assert!(disk.content_probe(ContentKind::Attribute, "id", "zz").unwrap().is_empty());
        assert!(disk
            .content_probe(ContentKind::Attribute, "nosuchname", "x")
            .unwrap()
            .is_empty());
        // dblp and article have element children → uncovered → scan fallback.
        assert!(disk.content_probe(ContentKind::Element, "dblp", "").is_none());
        assert!(disk.content_probe(ContentKind::Element, "article", "x").is_none());
        // Over-cap probe values refuse (the stored side skipped them too).
        let long = "v".repeat(VALUE_CAP + 1);
        assert!(disk.content_probe(ContentKind::Attribute, "id", &long).is_none());
        assert!(!disk.storage_tripped(), "probes on a healthy store record no fault");
    }

    #[test]
    fn content_probe_postings_chain_across_pages_stays_sorted() {
        // 3000 same-keyed attributes force the posting chain across pages.
        let mut xml = String::from("<r>");
        for i in 0..3000 {
            xml.push_str(&format!("<item cat=\"hot\" n=\"{i}\"/>"));
        }
        xml.push_str("</r>");
        let arena = parse_document(&xml).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 64).unwrap();
        let hits = disk.content_probe(ContentKind::Attribute, "cat", "hot").unwrap();
        assert_eq!(hits.len(), 3000);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0), "postings ascend by rank");
        let report = disk.verify().unwrap();
        // cat="hot" ×3000, n="i" ×3000 distinct, (item → "") ×3000.
        assert_eq!(report.postings, 9000);
        assert_eq!(report.content_keys, 1 + 3000 + 1);
    }

    #[test]
    fn plain_open_hides_indexes_but_still_resolves_ids() {
        let arena = parse_document(r#"<r><x id="k1"/><y id="k2"/></r>"#).unwrap();
        let t = TempPath::new(".natix");
        create_store_file(&arena, t.path()).unwrap();
        let plain = DiskStore::open_plain(t.path(), 8).unwrap();
        assert!(plain.structural_index().is_none());
        assert!(plain.content_probe(ContentKind::Attribute, "id", "k1").is_none());
        let x = plain.element_by_id("k1").unwrap();
        assert_eq!(plain.node_name(x), "x");
        assert!(plain.element_by_id("nope").is_none());
    }

    #[test]
    fn long_id_values_resolve_via_fallback_scan() {
        let long = "k".repeat(VALUE_CAP + 10);
        let xml = format!(r#"<r><x id="{long}"/><y id="s"/></r>"#);
        let arena = parse_document(&xml).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 8).unwrap();
        let x = disk.element_by_id(&long).unwrap();
        assert_eq!(disk.node_name(x), "x");
        let y = disk.element_by_id("s").unwrap();
        assert_eq!(disk.node_name(y), "y");
        assert!(!disk.storage_tripped());
    }

    #[test]
    fn empty_values_are_indexed_exactly() {
        let (_t, disk) = roundtrip(r#"<r><x note=""/><empty/></r>"#);
        let hits = disk.content_probe(ContentKind::Attribute, "note", "").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(disk.node_name(hits[0].1), "x");
        let e = disk.content_probe(ContentKind::Element, "empty", "").unwrap();
        assert_eq!(e.len(), 1);
        assert!(disk.content_probe(ContentKind::Element, "empty", "x").unwrap().is_empty());
    }

    #[test]
    fn out_of_range_node_faults_instead_of_panicking() {
        let (_t, disk) = roundtrip("<a/>");
        assert!(!disk.storage_tripped());
        assert_eq!(disk.first_child(NodeId(999)), None);
        assert!(disk.storage_tripped());
        let fault = disk.take_storage_fault().unwrap();
        assert!(fault.message.contains("out of range"), "{fault:?}");
        assert!(!disk.storage_tripped(), "take drains the fault cell");
    }

    #[test]
    fn atomic_build_crash_leaves_no_store_file() {
        let arena = parse_document("<r><a>text</a><b/></r>").unwrap();
        let t = TempPath::new(".natix");
        // A clean build of this document writes a known number of pages;
        // fail each write in turn, plus the fsync and the rename.
        create_store_file(&arena, t.path()).unwrap();
        let total_pages = (std::fs::read(t.path()).unwrap().len() / PAGE_SIZE) as u64;
        std::fs::remove_file(t.path()).unwrap();
        for k in 1..=total_pages {
            let fp = IoFailPoint { fail_write_at: Some(k), ..IoFailPoint::none() };
            assert!(create_store_file_with(&arena, t.path(), &fp).is_err());
            assert!(!t.path().exists(), "crash at write {k} must leave no store file");
        }
        for fp in [
            IoFailPoint { fail_sync: true, ..IoFailPoint::none() },
            IoFailPoint { fail_rename: true, ..IoFailPoint::none() },
        ] {
            assert!(create_store_file_with(&arena, t.path(), &fp).is_err());
            assert!(!t.path().exists());
        }
        // And a subsequent clean build over the same path succeeds.
        let disk = DiskStore::create_from(&arena, t.path(), 4).unwrap();
        assert_eq!(to_xml(&disk), "<r><a>text</a><b/></r>");
    }

    #[test]
    fn rebuild_over_existing_store_is_atomic() {
        let arena_v1 = parse_document("<r><old/></r>").unwrap();
        let arena_v2 = parse_document("<r><new/></r>").unwrap();
        let t = TempPath::new(".natix");
        create_store_file(&arena_v1, t.path()).unwrap();
        // A crashed rebuild leaves the previous store intact…
        let fp = IoFailPoint { fail_write_at: Some(1), ..IoFailPoint::none() };
        assert!(create_store_file_with(&arena_v2, t.path(), &fp).is_err());
        let disk = DiskStore::open(t.path(), 4).unwrap();
        assert_eq!(to_xml(&disk), "<r><old/></r>");
        drop(disk);
        // …and a completed rebuild replaces it.
        create_store_file(&arena_v2, t.path()).unwrap();
        let disk = DiskStore::open(t.path(), 4).unwrap();
        assert_eq!(to_xml(&disk), "<r><new/></r>");
    }
}
