//! Paged on-disk document store.
//!
//! This is the repo's stand-in for the Natix persistent document
//! representation: queries navigate node records held in fixed-size pages
//! behind the [`BufferManager`](crate::buffer::BufferManager) — no
//! main-memory DOM is ever built (paper §5.2.2).
//!
//! File layout (all pages are [`PAGE_SIZE`] bytes):
//!
//! ```text
//! page 0            header (magic, counts, region boundaries)
//! names region      the name dictionary, a length-prefixed byte stream
//! nodes region      fixed 40-byte node records, addressed arithmetically
//! strings region    slotted pages holding value records, chained when a
//!                   value exceeds one page
//! ```

use std::io::Write;
use std::path::Path;

use crate::arena::{ArenaStore, NameTable};
use crate::buffer::{BufferManager, BufferStats};
use crate::node::{NameId, NodeId, NodeKind};
use crate::page::{SlottedPage, SlottedPageBuilder, PAGE_SIZE};
use crate::store::XmlStore;

const MAGIC: &[u8; 8] = b"NATIXSTR";
const NIL: u32 = u32::MAX;

/// Bytes per node record.
const NODE_REC: usize = 40;
/// Node records per page.
const NODES_PER_PAGE: usize = PAGE_SIZE / NODE_REC;
/// Chain header inside a string record: next page (u32) + next slot (u16).
const CHAIN_HDR: usize = 6;

/// Errors raised while building or opening a disk store.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a Natix store or is structurally damaged.
    Corrupt(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "I/O error: {e}"),
            DiskError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

#[derive(Clone, Copy)]
struct Header {
    node_count: u32,
    names_start: u32,
    names_bytes: u32,
    nodes_start: u32,
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Serialise `store` into a page file at `path`.
///
/// Building goes through the in-memory representation once; opening the
/// result with [`DiskStore::open`] then serves all navigation from pages.
pub fn create_store_file(store: &ArenaStore, path: &Path) -> Result<(), DiskError> {
    // --- names region ---------------------------------------------------
    let mut names_blob = Vec::new();
    for name in store.names().iter() {
        let bytes = name.as_bytes();
        names_blob.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        names_blob.extend_from_slice(bytes);
    }
    let names_pages = names_blob.len().div_ceil(PAGE_SIZE).max(1);

    let node_count = store.node_count();
    let node_pages = node_count.div_ceil(NODES_PER_PAGE).max(1);

    let names_start = 1u32;
    let nodes_start = names_start + names_pages as u32;
    let strings_start = nodes_start + node_pages as u32;

    // --- strings region (built first so node records know their refs) ---
    let mut string_pages: Vec<SlottedPageBuilder> = vec![SlottedPageBuilder::new()];
    // Insert `data` as a chain of records, returning the head (page, slot).
    // Chains are built back-to-front so each segment knows its successor.
    let mut insert_string = |data: &[u8]| -> (u32, u16) {
        let seg_cap = SlottedPageBuilder::max_record() - CHAIN_HDR;
        let mut next: (u32, u16) = (NIL, 0);
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]]
        } else {
            data.chunks(seg_cap).collect()
        };
        for chunk in chunks.iter().rev() {
            let mut rec = Vec::with_capacity(CHAIN_HDR + chunk.len());
            rec.extend_from_slice(&next.0.to_le_bytes());
            rec.extend_from_slice(&next.1.to_le_bytes());
            rec.extend_from_slice(chunk);
            let slot = match string_pages.last_mut().expect("non-empty").insert(&rec) {
                Some(s) => s,
                None => {
                    string_pages.push(SlottedPageBuilder::new());
                    string_pages
                        .last_mut()
                        .expect("non-empty")
                        .insert(&rec)
                        .expect("segment fits an empty page")
                }
            };
            next = (strings_start + (string_pages.len() - 1) as u32, slot);
        }
        next
    };

    // --- node records ----------------------------------------------------
    let mut node_region = vec![0u8; node_pages * PAGE_SIZE];
    for i in 0..node_count {
        let n = NodeId(i as u32);
        let page = i / NODES_PER_PAGE;
        let off = page * PAGE_SIZE + (i % NODES_PER_PAGE) * NODE_REC;
        let rec = &mut node_region[off..off + NODE_REC];
        rec[0] = store.kind(n) as u8;
        let enc = |v: Option<NodeId>| v.map_or(NIL, |x| x.0);
        put_u32(rec, 4, store.name(n).map_or(NIL, |x| x.0));
        put_u32(rec, 8, enc(store.parent(n)));
        put_u32(rec, 12, enc(store.first_child(n)));
        put_u32(rec, 16, enc(store.last_child(n)));
        put_u32(rec, 20, enc(store.next_sibling(n)));
        put_u32(rec, 24, enc(store.prev_sibling(n)));
        put_u32(rec, 28, enc(store.first_attribute(n)));
        put_u32(rec, 32, store.order(n) as u32);
        match store.value_ref(n) {
            None => {
                put_u32(rec, 36, NIL);
            }
            Some(v) => {
                let (vp, vs) = insert_string(v.as_bytes());
                // Pack page (26 bits would do; we store page u32 in a
                // side encoding: 36..40 = page, slot goes into rec[1..3]).
                put_u32(rec, 36, vp);
                rec[1..3].copy_from_slice(&vs.to_le_bytes());
            }
        }
    }

    // --- header ----------------------------------------------------------
    let mut header = vec![0u8; PAGE_SIZE];
    header[0..8].copy_from_slice(MAGIC);
    put_u32(&mut header, 8, node_count as u32);
    put_u32(&mut header, 12, names_start);
    put_u32(&mut header, 16, names_blob.len() as u32);
    put_u32(&mut header, 20, nodes_start);
    put_u32(&mut header, 24, strings_start);
    put_u32(&mut header, 28, store.names().len() as u32);

    // --- write file -------------------------------------------------------
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&header)?;
    names_blob.resize(names_pages * PAGE_SIZE, 0);
    file.write_all(&names_blob)?;
    file.write_all(&node_region)?;
    for p in string_pages {
        file.write_all(&p.finish()[..])?;
    }
    file.flush()?;
    Ok(())
}

/// Read-only paged document store.
pub struct DiskStore {
    buffer: BufferManager,
    header: Header,
    names: NameTable,
    id_index: std::collections::HashMap<Box<str>, NodeId>,
}

impl DiskStore {
    /// Open a store file with a buffer of `buffer_pages` frames.
    pub fn open(path: &Path, buffer_pages: usize) -> Result<DiskStore, DiskError> {
        let buffer = BufferManager::open(path, buffer_pages)?;
        let h = buffer.pin(0)?;
        if &h[0..8] != MAGIC {
            return Err(DiskError::Corrupt("bad magic"));
        }
        let header = Header {
            node_count: get_u32(&h[..], 8),
            names_start: get_u32(&h[..], 12),
            names_bytes: get_u32(&h[..], 16),
            nodes_start: get_u32(&h[..], 20),
        };
        let name_count = get_u32(&h[..], 28);

        // Load the name dictionary (kept resident; it is tiny relative to
        // the document and node tests hit it constantly).
        let mut blob = Vec::with_capacity(header.names_bytes as usize);
        let npages = (header.names_bytes as usize).div_ceil(PAGE_SIZE).max(1);
        for i in 0..npages {
            let p = buffer.pin(header.names_start + i as u32)?;
            let take = (header.names_bytes as usize - blob.len()).min(PAGE_SIZE);
            blob.extend_from_slice(&p[..take]);
        }
        let mut names = NameTable::default();
        let mut off = 0usize;
        for _ in 0..name_count {
            if off + 4 > blob.len() {
                return Err(DiskError::Corrupt("name dictionary truncated"));
            }
            let len = get_u32(&blob, off) as usize;
            off += 4;
            let s = std::str::from_utf8(&blob[off..off + len])
                .map_err(|_| DiskError::Corrupt("name dictionary not UTF-8"))?;
            names.intern(s);
            off += len;
        }

        let mut store = DiskStore {
            buffer,
            header,
            names,
            id_index: std::collections::HashMap::new(),
        };
        store.build_id_index()?;
        Ok(store)
    }

    /// Serialise + reopen convenience used by tests and examples.
    pub fn create_from(
        arena: &ArenaStore,
        path: &Path,
        buffer_pages: usize,
    ) -> Result<DiskStore, DiskError> {
        create_store_file(arena, path)?;
        DiskStore::open(path, buffer_pages)
    }

    fn build_id_index(&mut self) -> Result<(), DiskError> {
        let Some(id_name) = self.names.lookup("id") else {
            return Ok(());
        };
        let mut index = std::collections::HashMap::new();
        for i in 0..self.header.node_count {
            let n = NodeId(i);
            if self.kind(n) == NodeKind::Attribute && self.name(n) == Some(id_name) {
                if let (Some(v), Some(owner)) = (self.value(n), self.parent(n)) {
                    index.entry(v.into_boxed_str()).or_insert(owner);
                }
            }
        }
        self.id_index = index;
        Ok(())
    }

    /// Buffer-manager statistics (page hits/misses/evictions).
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    fn record(&self, n: NodeId) -> [u8; NODE_REC] {
        assert!(n.0 < self.header.node_count, "node id out of range");
        let page = self.header.nodes_start + n.0 / NODES_PER_PAGE as u32;
        let off = (n.0 as usize % NODES_PER_PAGE) * NODE_REC;
        let p = self.buffer.pin(page).expect("node page readable");
        let mut rec = [0u8; NODE_REC];
        rec.copy_from_slice(&p[off..off + NODE_REC]);
        rec
    }

    fn link(&self, n: NodeId, field: usize) -> Option<NodeId> {
        let v = get_u32(&self.record(n), field);
        (v != NIL).then_some(NodeId(v))
    }

    fn read_string(&self, mut page: u32, mut slot: u16) -> String {
        let mut out = Vec::new();
        loop {
            let p = self.buffer.pin(page).expect("string page readable");
            let sp = SlottedPage::new(&p[..]);
            let rec = sp.record(slot).expect("valid string slot");
            let next_page = get_u32(rec, 0);
            let next_slot = get_u16(rec, 4);
            out.extend_from_slice(&rec[CHAIN_HDR..]);
            if next_page == NIL {
                break;
            }
            page = next_page;
            slot = next_slot;
        }
        String::from_utf8(out).expect("stored strings are UTF-8")
    }
}

impl XmlStore for DiskStore {
    fn node_count(&self) -> usize {
        self.header.node_count as usize
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        NodeKind::from_u8(self.record(n)[0]).expect("valid node kind on disk")
    }

    fn name(&self, n: NodeId) -> Option<NameId> {
        let v = get_u32(&self.record(n), 4);
        (v != NIL).then_some(NameId(v))
    }

    fn value(&self, n: NodeId) -> Option<String> {
        let rec = self.record(n);
        let vp = get_u32(&rec, 36);
        if vp == NIL {
            return None;
        }
        let vs = get_u16(&rec, 1);
        Some(self.read_string(vp, vs))
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.link(n, 8)
    }

    fn first_child(&self, n: NodeId) -> Option<NodeId> {
        self.link(n, 12)
    }

    fn last_child(&self, n: NodeId) -> Option<NodeId> {
        self.link(n, 16)
    }

    fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.link(n, 20)
    }

    fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.link(n, 24)
    }

    fn first_attribute(&self, n: NodeId) -> Option<NodeId> {
        self.link(n, 28)
    }

    fn order(&self, n: NodeId) -> u64 {
        get_u32(&self.record(n), 32) as u64
    }

    fn intern_lookup(&self, name: &str) -> Option<NameId> {
        self.names.lookup(name)
    }

    fn name_text(&self, id: NameId) -> String {
        self.names.text(id).to_owned()
    }

    fn element_by_id(&self, idval: &str) -> Option<NodeId> {
        self.id_index.get(idval).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::serialize::to_xml;
    use crate::tmp::TempPath;

    fn roundtrip(xml: &str) -> (TempPath, DiskStore) {
        let arena = parse_document(xml).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 16).unwrap();
        (t, disk)
    }

    #[test]
    fn structure_preserved() {
        let src = r#"<a x="1"><b>hello</b><!--c--><?pi data?><d><e/></d></a>"#;
        let (_t, disk) = roundtrip(src);
        assert_eq!(to_xml(&disk), src);
    }

    #[test]
    fn orders_preserved() {
        let src = "<a><b><c/></b><d/></a>";
        let arena = parse_document(src).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 4).unwrap();
        assert_eq!(arena.node_count(), disk.node_count());
        for i in 0..arena.node_count() as u32 {
            let n = NodeId(i);
            assert_eq!(arena.order(n), disk.order(n));
            assert_eq!(arena.kind(n), disk.kind(n));
            assert_eq!(arena.parent(n), disk.parent(n));
            assert_eq!(arena.next_sibling(n), disk.next_sibling(n));
        }
    }

    #[test]
    fn long_text_chains_across_pages() {
        let big = "x".repeat(3 * PAGE_SIZE);
        let src = format!("<a><t>{big}</t></a>");
        let (_t, disk) = roundtrip(&src);
        let a = disk.first_child(disk.root()).unwrap();
        let t = disk.first_child(a).unwrap();
        assert_eq!(disk.string_value(t), big);
    }

    #[test]
    fn id_index_rebuilt_on_open() {
        let (_t, disk) = roundtrip(r#"<r><x id="k1"/><y id="k2"/></r>"#);
        let x = disk.element_by_id("k1").unwrap();
        assert_eq!(disk.node_name(x), "x");
        assert!(disk.element_by_id("nope").is_none());
    }

    #[test]
    fn small_buffer_still_correct_with_evictions() {
        // Enough nodes to span several node pages, tiny buffer.
        let mut xml = String::from("<r>");
        for i in 0..1000 {
            xml.push_str(&format!("<item n=\"{i}\">v{i}</item>"));
        }
        xml.push_str("</r>");
        let arena = parse_document(&xml).unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&arena, t.path(), 2).unwrap();
        assert_eq!(to_xml(&disk), to_xml(&arena));
        assert!(disk.buffer_stats().evictions > 0, "tiny buffer must evict");
    }

    #[test]
    fn bad_magic_rejected() {
        let t = TempPath::new(".bad");
        std::fs::write(t.path(), vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(DiskStore::open(t.path(), 2), Err(DiskError::Corrupt(_))));
    }

    #[test]
    fn empty_attribute_value_roundtrips() {
        let (_t, disk) = roundtrip(r#"<a empty=""/>"#);
        let a = disk.first_child(disk.root()).unwrap();
        assert_eq!(disk.attribute_value(a, "empty").as_deref(), Some(""));
    }
}
