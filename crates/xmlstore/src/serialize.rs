//! XML writer: serialise any [`XmlStore`] subtree back to markup.
//!
//! Used for round-trip testing, the examples, and for persisting generated
//! documents to disk before loading them into the paged store.

use crate::node::{NodeId, NodeKind};
use crate::store::XmlStore;

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn write_node(store: &dyn XmlStore, n: NodeId, out: &mut String) {
    match store.kind(n) {
        NodeKind::Document => {
            let mut c = store.first_child(n);
            while let Some(ch) = c {
                write_node(store, ch, out);
                c = store.next_sibling(ch);
            }
        }
        NodeKind::Element => {
            let name = store.node_name(n);
            out.push('<');
            out.push_str(&name);
            let mut a = store.first_attribute(n);
            while let Some(att) = a {
                out.push(' ');
                out.push_str(&store.node_name(att));
                out.push_str("=\"");
                escape_attr(&store.value(att).unwrap_or_default(), out);
                out.push('"');
                a = store.next_sibling(att);
            }
            match store.first_child(n) {
                None => out.push_str("/>"),
                Some(first) => {
                    out.push('>');
                    let mut c = Some(first);
                    while let Some(ch) = c {
                        write_node(store, ch, out);
                        c = store.next_sibling(ch);
                    }
                    out.push_str("</");
                    out.push_str(&name);
                    out.push('>');
                }
            }
        }
        NodeKind::Text => escape_text(&store.value(n).unwrap_or_default(), out),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(&store.value(n).unwrap_or_default());
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("<?");
            out.push_str(&store.node_name(n));
            let v = store.value(n).unwrap_or_default();
            if !v.is_empty() {
                out.push(' ');
                out.push_str(&v);
            }
            out.push_str("?>");
        }
        NodeKind::Attribute => {
            // Standalone attribute serialisation: just its value.
            escape_attr(&store.value(n).unwrap_or_default(), out);
        }
    }
}

/// Serialise the subtree rooted at `n`.
pub fn to_xml_node(store: &dyn XmlStore, n: NodeId) -> String {
    let mut out = String::new();
    write_node(store, n, &mut out);
    out
}

/// Serialise the whole document.
pub fn to_xml(store: &dyn XmlStore) -> String {
    to_xml_node(store, store.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrip_simple() {
        let src = r#"<a x="1&amp;2"><b>hi &lt;there&gt;</b><!--c--><?p q?><d/></a>"#;
        let store = parse_document(src).unwrap();
        let out = to_xml(&store);
        assert_eq!(out, src);
        // And a second round trip is a fixpoint.
        let store2 = parse_document(&out).unwrap();
        assert_eq!(to_xml(&store2), out);
    }

    #[test]
    fn quote_escaping_in_attributes() {
        let store = parse_document(r#"<a t="say &quot;hi&quot;"/>"#).unwrap();
        let out = to_xml(&store);
        assert!(out.contains("&quot;hi&quot;"));
        let again = parse_document(&out).unwrap();
        let a = crate::store::XmlStore::first_child(&again, again.root()).unwrap();
        assert_eq!(again.attribute_value(a, "t").as_deref(), Some("say \"hi\""));
    }
}
