//! Structural interval index: the (order, subtree-size) pre/post encoding
//! over one stored document.
//!
//! Document order is a preorder walk with attributes ranked immediately
//! after their element and before its children, so every node's subtree
//! (attributes and descendants, transitively) occupies the contiguous rank
//! interval `[rank, rank + size]`. That single invariant turns the four
//! unbounded axes — `descendant`, `descendant-or-self`, `following`,
//! `preceding` — into range scans over dense arrays (no per-hop virtual
//! dispatch through `dyn XmlStore`), and ancestor/containment tests and
//! document-order comparisons into O(1) integer arithmetic.
//!
//! The index is finalized when a store is built (`ArenaBuilder::finish`)
//! and re-derived by every structural update (`ArenaStore::renumber`), so
//! it is never stale. Stores without an index (e.g. the paged
//! [`DiskStore`](crate::diskstore::DiskStore)) simply return `None` from
//! [`XmlStore::structural_index`] and every consumer falls back to the
//! pointer-chasing [`AxisCursor`](crate::axes::AxisCursor).

use crate::axes::Axis;
use crate::node::{NameId, NodeId, NodeKind};
use crate::stats::StoreStats;
use crate::store::XmlStore;

const NIL: u32 = u32::MAX;

/// Immutable (order, subtree-size) encoding of one document, plus dense
/// per-rank kind/name arrays so scan loops never touch the store.
///
/// `PartialEq` exists for the repair differential tests: an incrementally
/// repaired index must equal a from-scratch [`StructuralIndex::build`]
/// over the same store, array for array and statistic for statistic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StructuralIndex {
    /// `NodeId.index() → rank`; `NIL` for unreachable slots (tombstones
    /// left behind by updates).
    rank_of: Vec<u32>,
    /// `rank → node` for the reachable nodes, in document order.
    node_at: Vec<NodeId>,
    /// `rank → subtree size` excluding the node itself: the number of
    /// attributes and descendants (with *their* attributes) it dominates.
    size: Vec<u32>,
    /// `rank → kind`.
    kind: Vec<NodeKind>,
    /// `rank → interned name` (`NIL` if unnamed).
    name: Vec<u32>,
    /// Shape summary derived in the same build pass (never stale: every
    /// structural update rebuilds the index and the stats with it).
    stats: StoreStats,
}

impl StructuralIndex {
    /// An index over nothing (placeholder while a store is under
    /// construction).
    pub fn empty() -> StructuralIndex {
        StructuralIndex::default()
    }

    /// Derive the encoding from any store with one preorder pass (the
    /// same walk `ArenaStore::renumber` performs: element, then its
    /// attributes, then children). O(n) time and space, iterative — deep
    /// chains cannot overflow the call stack.
    pub fn build(store: &dyn XmlStore) -> StructuralIndex {
        let slots = store.node_count();
        let mut idx = StructuralIndex {
            rank_of: vec![NIL; slots],
            node_at: Vec::with_capacity(slots),
            size: Vec::new(),
            kind: Vec::with_capacity(slots),
            name: Vec::with_capacity(slots),
            stats: StoreStats::default(),
        };
        // rank → rank of the structural parent (NIL for the root), used
        // by the size accumulation below.
        let mut parent_rank: Vec<u32> = Vec::with_capacity(slots);
        let mut stack: Vec<(NodeId, u32)> = vec![(store.root(), NIL)];
        let mut kids: Vec<NodeId> = Vec::new();
        while let Some((n, pr)) = stack.pop() {
            let r = idx.push(store, n, pr, &mut parent_rank);
            let mut a = store.first_attribute(n);
            while let Some(att) = a {
                idx.push(store, att, r, &mut parent_rank);
                a = store.next_sibling(att);
            }
            kids.clear();
            let mut c = store.first_child(n);
            while let Some(ch) = c {
                kids.push(ch);
                c = store.next_sibling(ch);
            }
            for &k in kids.iter().rev() {
                stack.push((k, r));
            }
        }
        // Sizes: every node contributes size+1 to its parent; walking
        // ranks in descending order sees each node after its whole
        // subtree, so one pass suffices.
        idx.size = vec![0u32; idx.node_at.len()];
        for r in (1..idx.node_at.len()).rev() {
            let p = parent_rank[r];
            if p != NIL {
                idx.size[p as usize] += idx.size[r] + 1;
            }
        }
        idx.stats = StoreStats::from_index(&idx, store);
        idx
    }

    /// Reassemble an index from arrays decoded off persisted pages
    /// (`DiskStore`'s lazy load). The caller has already validated every
    /// field (node ids in range, no duplicate ranks, kinds and names
    /// decodable, subtree sizes inside the document); stats are derived
    /// here so disk stores carry the same never-stale snapshot as arenas.
    pub(crate) fn from_disk_parts(
        rank_of: Vec<u32>,
        node_at: Vec<NodeId>,
        size: Vec<u32>,
        kind: Vec<NodeKind>,
        name: Vec<u32>,
        store: &dyn XmlStore,
    ) -> StructuralIndex {
        let mut idx = StructuralIndex {
            rank_of,
            node_at,
            size,
            kind,
            name,
            stats: StoreStats::default(),
        };
        idx.stats = StoreStats::from_index(&idx, store);
        idx
    }

    fn push(
        &mut self,
        store: &dyn XmlStore,
        n: NodeId,
        parent: u32,
        parent_rank: &mut Vec<u32>,
    ) -> u32 {
        let r = self.node_at.len() as u32;
        self.rank_of[n.index()] = r;
        self.node_at.push(n);
        self.kind.push(store.kind(n));
        self.name.push(store.name(n).map_or(NIL, |id| id.0));
        parent_rank.push(parent);
        r
    }

    /// Number of ranked (reachable) nodes.
    pub fn len(&self) -> usize {
        self.node_at.len()
    }

    /// The document-statistics snapshot derived at build time.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// True if the index covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_at.is_empty()
    }

    /// Document-order rank of `n`, or `None` for unreachable nodes.
    #[inline]
    pub fn rank_of(&self, n: NodeId) -> Option<u32> {
        let r = *self.rank_of.get(n.index())?;
        (r != NIL).then_some(r)
    }

    /// Node at `rank` (must be `< len()`).
    #[inline]
    pub fn node_at(&self, rank: u32) -> NodeId {
        self.node_at[rank as usize]
    }

    /// Subtree size of the node at `rank` (self excluded).
    #[inline]
    pub fn size_at(&self, rank: u32) -> u32 {
        self.size[rank as usize]
    }

    /// Kind of the node at `rank`.
    #[inline]
    pub fn kind_at(&self, rank: u32) -> NodeKind {
        self.kind[rank as usize]
    }

    /// Interned name of the node at `rank`.
    #[inline]
    pub fn name_at(&self, rank: u32) -> Option<NameId> {
        let v = self.name[rank as usize];
        (v != NIL).then_some(NameId(v))
    }

    /// Inclusive rank interval `[rank, rank+size]` of `n`'s subtree.
    pub fn subtree_range(&self, n: NodeId) -> Option<(u32, u32)> {
        let r = self.rank_of(n)?;
        Some((r, r + self.size[r as usize]))
    }

    /// O(1) proper-ancestor test (`None` if either node is unranked).
    #[inline]
    pub fn is_ancestor(&self, anc: NodeId, n: NodeId) -> Option<bool> {
        let ra = self.rank_of(anc)?;
        let rn = self.rank_of(n)?;
        Some(self.rank_contains(ra, rn))
    }

    /// True if the subtree interval of `anc_rank` properly contains
    /// `rank`.
    #[inline]
    fn rank_contains(&self, anc_rank: u32, rank: u32) -> bool {
        anc_rank < rank && rank <= anc_rank + self.size[anc_rank as usize]
    }

    /// O(1) document-order comparison (`None` if either node is
    /// unranked).
    #[inline]
    pub fn doc_lt(&self, a: NodeId, b: NodeId) -> Option<bool> {
        Some(self.rank_of(a)? < self.rank_of(b)?)
    }

    // ----- incremental repair (crate-internal; ArenaStore drives it) -----
    //
    // The rank arrays are dense, so a structural update cannot avoid
    // shifting the tail — but a `Vec` splice plus a rank-bump loop over
    // plain `u32`s is a memmove and a scattered add, not a preorder walk
    // through `dyn XmlStore` with stats BTreeMaps and an id-index rebuild.
    // That difference is what makes small-batch commits O(touched-ish)
    // in practice (bench B9).

    /// Splice one freshly allocated node in at `rank` with subtree size 0.
    /// Extends the slot table if the node id is new.
    pub(crate) fn splice_insert(
        &mut self,
        rank: u32,
        n: NodeId,
        kind: NodeKind,
        name: Option<NameId>,
    ) {
        if self.rank_of.len() <= n.index() {
            self.rank_of.resize(n.index() + 1, NIL);
        }
        let r = rank as usize;
        self.node_at.insert(r, n);
        self.kind.insert(r, kind);
        self.name.insert(r, name.map_or(NIL, |i| i.0));
        self.size.insert(r, 0);
        self.rank_of[n.index()] = rank;
        for i in (r + 1)..self.node_at.len() {
            self.rank_of[self.node_at[i].index()] += 1;
        }
    }

    /// Splice the contiguous block `[rank, rank+count)` out, tombstoning
    /// its nodes (rank `NIL`). The block keeps its internal layout so a
    /// subtree move can splice it back in elsewhere.
    pub(crate) fn splice_remove(&mut self, rank: u32, count: u32) -> SplicedBlock {
        let r = rank as usize;
        let c = count as usize;
        let node_at: Vec<NodeId> = self.node_at.drain(r..r + c).collect();
        let kind: Vec<NodeKind> = self.kind.drain(r..r + c).collect();
        let name: Vec<u32> = self.name.drain(r..r + c).collect();
        let size: Vec<u32> = self.size.drain(r..r + c).collect();
        for n in &node_at {
            self.rank_of[n.index()] = NIL;
        }
        for i in r..self.node_at.len() {
            self.rank_of[self.node_at[i].index()] -= count;
        }
        SplicedBlock { node_at, kind, name, size }
    }

    /// Splice a previously removed block back in at `rank` (subtree move).
    pub(crate) fn splice_insert_block(&mut self, rank: u32, block: SplicedBlock) {
        let r = rank as usize;
        let cnt = block.node_at.len() as u32;
        for (i, n) in block.node_at.iter().enumerate() {
            self.rank_of[n.index()] = rank + i as u32;
        }
        self.node_at.splice(r..r, block.node_at);
        self.kind.splice(r..r, block.kind);
        self.name.splice(r..r, block.name);
        self.size.splice(r..r, block.size);
        for i in (r + cnt as usize)..self.node_at.len() {
            self.rank_of[self.node_at[i].index()] += cnt;
        }
    }

    /// Adjust the subtree size at `rank` (ancestors of a spliced node).
    pub(crate) fn add_size(&mut self, rank: u32, delta: i64) {
        let s = &mut self.size[rank as usize];
        *s = (i64::from(*s) + delta).max(0) as u32;
    }

    /// Mutable statistics access for the incremental repair.
    pub(crate) fn stats_mut(&mut self) -> &mut StoreStats {
        &mut self.stats
    }

    /// A range scan over the axis, if it is one of the four interval
    /// axes and `n` is ranked. Other axes (and tombstoned nodes) return
    /// `None` — callers fall back to the cursor.
    pub fn range_scan(&self, axis: Axis, n: NodeId) -> Option<RangeScan> {
        let r = self.rank_of(n)?;
        let s = self.size[r as usize];
        let last = (self.node_at.len() - 1) as u32;
        let mode = match axis {
            // Subtree interval minus self; attributes filtered by the scan.
            Axis::Descendant => Mode::Forward { cur: r + 1, end: r + s },
            Axis::DescendantOrSelf => Mode::SelfThen { rank: r, end: r + s },
            // Everything after the subtree interval. Attributes have
            // size 0, so this also yields the owner-subtree-then-rest
            // semantics of `following` from an attribute node.
            Axis::Following => Mode::Forward { cur: (r + s).saturating_add(1), end: last },
            // Everything before `r` except ancestors, in reverse rank
            // order. For an attribute this equals `preceding` of its
            // owner: the owner's interval covers the attribute's rank,
            // so the owner (and every ancestor above it) is skipped by
            // the containment test.
            Axis::Preceding => Mode::Preceding { next: i64::from(r) - 1, ctx: r },
            _ => return None,
        };
        Some(RangeScan { mode })
    }
}

/// A contiguous rank interval removed by [`StructuralIndex::splice_remove`],
/// preserving internal layout for re-insertion (subtree moves).
pub(crate) struct SplicedBlock {
    pub(crate) node_at: Vec<NodeId>,
    pub(crate) kind: Vec<NodeKind>,
    pub(crate) name: Vec<u32>,
    pub(crate) size: Vec<u32>,
}

enum Mode {
    /// Yield `rank` itself, then forward-scan `(rank, end]`.
    SelfThen {
        rank: u32,
        end: u32,
    },
    /// Forward scan of `[cur, end]`, skipping attribute ranks.
    Forward {
        cur: u32,
        end: u32,
    },
    /// Downward scan of `[0, next]`, skipping attribute ranks and
    /// ancestors of the context rank `ctx`.
    Preceding {
        next: i64,
        ctx: u32,
    },
    Done,
}

/// A compiled axis scan: pure rank arithmetic over a
/// [`StructuralIndex`]. Holds no store borrow, so physical operators can
/// embed it like an [`AxisCursor`](crate::axes::AxisCursor); every
/// advance takes the index explicitly.
pub struct RangeScan {
    mode: Mode,
}

impl RangeScan {
    /// Rank of the next axis node, or `None` when the interval is
    /// exhausted. Axis order: document order for the forward axes,
    /// reverse document order for `preceding`.
    #[inline]
    pub fn advance(&mut self, idx: &StructuralIndex) -> Option<u32> {
        match &mut self.mode {
            Mode::Done => None,
            Mode::SelfThen { rank, end } => {
                let r = *rank;
                self.mode = if r < *end {
                    Mode::Forward { cur: r + 1, end: *end }
                } else {
                    Mode::Done
                };
                Some(r)
            }
            Mode::Forward { cur, end } => {
                while *cur <= *end {
                    let r = *cur;
                    *cur += 1;
                    if idx.kind[r as usize] != NodeKind::Attribute {
                        return Some(r);
                    }
                }
                self.mode = Mode::Done;
                None
            }
            Mode::Preceding { next, ctx } => {
                while *next >= 0 {
                    let r = *next as u32;
                    *next -= 1;
                    if idx.kind[r as usize] == NodeKind::Attribute {
                        continue;
                    }
                    if idx.rank_contains(r, *ctx) {
                        continue; // ancestors are not on the preceding axis
                    }
                    return Some(r);
                }
                self.mode = Mode::Done;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{ArenaBuilder, ArenaStore};
    use crate::axes::{axis_nodes, indexed_axis_nodes};

    /// <r a="1"><x p="2"><y/></x><z/></r> with a text node under z.
    fn sample() -> ArenaStore {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        b.attribute("a", "1");
        b.start_element("x");
        b.attribute("p", "2");
        b.start_element("y");
        b.end_element();
        b.end_element();
        b.start_element("z");
        b.text("t");
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn intervals_hand_computed() {
        let s = sample();
        let idx = s.structural_index().expect("arena builds an index");
        // Ranks: 0 doc, 1 r, 2 @a, 3 x, 4 @p, 5 y, 6 z, 7 text.
        assert_eq!(idx.len(), 8);
        let doc = s.root();
        let r = s.first_child(doc).unwrap();
        let a = s.first_attribute(r).unwrap();
        let x = s.first_child(r).unwrap();
        let p = s.first_attribute(x).unwrap();
        let y = s.first_child(x).unwrap();
        let z = s.next_sibling(x).unwrap();
        let t = s.first_child(z).unwrap();
        assert_eq!(idx.subtree_range(doc), Some((0, 7)), "root spans the document");
        assert_eq!(idx.subtree_range(r), Some((1, 7)));
        assert_eq!(idx.subtree_range(a), Some((2, 2)), "attribute subtree is empty");
        assert_eq!(idx.subtree_range(x), Some((3, 5)), "x contains @p and y");
        assert_eq!(idx.subtree_range(y), Some((5, 5)), "leaf element subtree is empty");
        assert_eq!(idx.subtree_range(z), Some((6, 7)));
        assert_eq!(idx.subtree_range(t), Some((7, 7)));
        // Ranks agree with the store's document order on a fresh build:
        // gap keys are the rank scaled by the gap stride.
        for rank in 0..idx.len() as u32 {
            assert_eq!(
                s.order(idx.node_at(rank)),
                u64::from(rank) << crate::arena::ORDER_GAP_SHIFT
            );
        }
        // O(1) containment agrees with the pointer-chasing walk.
        assert_eq!(idx.is_ancestor(x, y), Some(true));
        assert_eq!(idx.is_ancestor(x, p), Some(true), "attributes are inside the interval");
        assert_eq!(idx.is_ancestor(x, x), Some(false), "proper ancestor only");
        assert_eq!(idx.is_ancestor(y, x), Some(false));
        assert_eq!(idx.is_ancestor(z, y), Some(false));
        assert_eq!(idx.doc_lt(x, z), Some(true));
        assert_eq!(idx.doc_lt(z, x), Some(false));
    }

    #[test]
    fn range_scans_match_cursor_on_sample() {
        let s = sample();
        for rank in 0..s.structural_index().unwrap().len() as u32 {
            let n = s.structural_index().unwrap().node_at(rank);
            for axis in [
                Axis::Descendant,
                Axis::DescendantOrSelf,
                Axis::Following,
                Axis::Preceding,
            ] {
                assert_eq!(
                    indexed_axis_nodes(&s, axis, n),
                    axis_nodes(&s, axis, n),
                    "{axis} from rank {rank}"
                );
            }
        }
    }

    #[test]
    fn descendant_or_self_of_attribute_is_self_only() {
        let s = sample();
        let idx = s.structural_index().unwrap();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_attribute(r).unwrap();
        let mut scan = idx.range_scan(Axis::DescendantOrSelf, a).unwrap();
        assert_eq!(scan.advance(idx).map(|r| idx.node_at(r)), Some(a));
        assert_eq!(scan.advance(idx), None);
        let mut scan = idx.range_scan(Axis::Descendant, a).unwrap();
        assert_eq!(scan.advance(idx), None, "attributes dominate nothing");
    }

    #[test]
    fn following_of_last_node_and_preceding_of_root_are_empty() {
        let s = sample();
        let idx = s.structural_index().unwrap();
        let last = idx.node_at(idx.len() as u32 - 1);
        let mut scan = idx.range_scan(Axis::Following, last).unwrap();
        assert_eq!(scan.advance(idx), None);
        let mut scan = idx.range_scan(Axis::Preceding, s.root()).unwrap();
        assert_eq!(scan.advance(idx), None);
    }

    #[test]
    fn non_interval_axes_have_no_range_scan() {
        let s = sample();
        let idx = s.structural_index().unwrap();
        for axis in [
            Axis::Child,
            Axis::Parent,
            Axis::Ancestor,
            Axis::Attribute,
            Axis::SelfAxis,
        ] {
            assert!(idx.range_scan(axis, s.root()).is_none());
        }
    }

    #[test]
    fn single_node_document() {
        let b = ArenaBuilder::new();
        let s = b.finish();
        let idx = s.structural_index().unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.subtree_range(s.root()), Some((0, 0)));
        let mut scan = idx.range_scan(Axis::DescendantOrSelf, s.root()).unwrap();
        assert_eq!(scan.advance(idx), Some(0));
        assert_eq!(scan.advance(idx), None);
    }
}
