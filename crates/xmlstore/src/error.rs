//! Typed storage errors.
//!
//! Every byte read from a store file is untrusted (DESIGN.md §13): decode
//! failures surface as [`DiskError::Corrupt`] carrying the page/slot
//! coordinates of the damage instead of panicking mid-query, and I/O
//! failures as [`DiskError::Io`]. The executor converts either into a
//! typed `QueryError::Storage` so a mid-query fault unwinds exactly like
//! a resource-governor trip.

/// Errors raised while building, opening or reading a disk store.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure (the page coordinate is known for reads
    /// that went through the buffer manager).
    Io {
        /// Page being read when the failure occurred, if known.
        page: Option<u32>,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// The file is not a Natix store or is structurally damaged.
    Corrupt {
        /// What failed to validate.
        detail: String,
        /// Page coordinate of the damage, if known.
        page: Option<u32>,
        /// Slot (or in-page record index) of the damage, if known.
        slot: Option<u16>,
    },
}

impl DiskError {
    /// Corruption with no coordinates (file-level damage).
    pub fn corrupt(detail: impl Into<String>) -> DiskError {
        DiskError::Corrupt { detail: detail.into(), page: None, slot: None }
    }

    /// Corruption at a page.
    pub fn corrupt_at(detail: impl Into<String>, page: u32) -> DiskError {
        DiskError::Corrupt { detail: detail.into(), page: Some(page), slot: None }
    }

    /// Corruption at a page/slot coordinate.
    pub fn corrupt_at_slot(detail: impl Into<String>, page: u32, slot: u16) -> DiskError {
        DiskError::Corrupt { detail: detail.into(), page: Some(page), slot: Some(slot) }
    }

    /// I/O failure with no page coordinate.
    pub fn io(source: std::io::Error) -> DiskError {
        DiskError::Io { page: None, source }
    }

    /// I/O failure while reading a page.
    pub fn io_at(source: std::io::Error, page: u32) -> DiskError {
        DiskError::Io { page: Some(page), source }
    }

    /// True for the corruption variant (used by callers that map error
    /// classes to distinct exit codes).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, DiskError::Corrupt { .. })
    }
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io { page: Some(p), source } => {
                write!(f, "I/O error reading page {p}: {source}")
            }
            DiskError::Io { page: None, source } => write!(f, "I/O error: {source}"),
            DiskError::Corrupt { detail, page, slot } => {
                write!(f, "corrupt store: {detail}")?;
                match (page, slot) {
                    (Some(p), Some(s)) => write!(f, " (page {p}, slot {s})"),
                    (Some(p), None) => write!(f, " (page {p})"),
                    _ => Ok(()),
                }
            }
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io { source, .. } => Some(source),
            DiskError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::io(e)
    }
}

/// A storage fault observed while serving infallible [`XmlStore`]
/// navigation (the trait cannot return `Result`, so the store records the
/// first fault and returns inert values; the executor drains it via
/// [`XmlStore::take_storage_fault`] and unwinds with a typed error).
///
/// [`XmlStore`]: crate::store::XmlStore
/// [`XmlStore::take_storage_fault`]: crate::store::XmlStore::take_storage_fault
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageFault {
    /// Rendered [`DiskError`] message, including page/slot coordinates.
    pub message: String,
    /// True for I/O failures, false for corruption (callers map the two
    /// classes to distinct exit codes).
    pub is_io: bool,
}

impl From<&DiskError> for StorageFault {
    fn from(e: &DiskError) -> Self {
        StorageFault { message: e.to_string(), is_io: !e.is_corrupt() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_coordinates() {
        let e = DiskError::corrupt_at_slot("bad string chain", 7, 3);
        assert_eq!(e.to_string(), "corrupt store: bad string chain (page 7, slot 3)");
        let e = DiskError::corrupt_at("checksum mismatch", 2);
        assert_eq!(e.to_string(), "corrupt store: checksum mismatch (page 2)");
        let e = DiskError::corrupt("bad magic");
        assert_eq!(e.to_string(), "corrupt store: bad magic");
        assert!(e.is_corrupt());
        let e = DiskError::io_at(std::io::Error::other("boom"), 4);
        assert!(e.to_string().contains("page 4"));
        assert!(!e.is_corrupt());
    }
}
