//! In-memory arena document store.
//!
//! Nodes live in one contiguous `Vec`; links are indices. Document order is
//! assigned while building (the builder runs in document order by
//! construction) so order comparison is a single integer compare.

use std::collections::HashMap;

use crate::index::StructuralIndex;
use crate::node::{NameId, NodeId, NodeKind};
use crate::store::XmlStore;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct NodeData {
    kind: NodeKind,
    name: u32, // NameId or NIL
    value: Option<Box<str>>,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    prev_sibling: u32,
    first_attr: u32,
    last_attr: u32,
    order: u32,
}

impl NodeData {
    fn new(kind: NodeKind, order: u32) -> NodeData {
        NodeData {
            kind,
            name: NIL,
            value: None,
            parent: NIL,
            first_child: NIL,
            last_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
            first_attr: NIL,
            last_attr: NIL,
            order,
        }
    }
}

/// Interning name dictionary shared by builder and store.
#[derive(Default, Clone, Debug)]
pub struct NameTable {
    map: HashMap<Box<str>, NameId>,
    names: Vec<Box<str>>,
}

impl NameTable {
    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.into());
        self.map.insert(name.into(), id);
        id
    }

    /// Look up without interning.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.map.get(name).copied()
    }

    /// Resolve an id back to text. Panics on foreign ids.
    pub fn text(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names were interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate names in id order (used by the disk serializer).
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_ref())
    }
}

/// Completed, immutable in-memory document.
#[derive(Clone, Debug)]
pub struct ArenaStore {
    nodes: Vec<NodeData>,
    names: NameTable,
    id_index: HashMap<Box<str>, NodeId>,
    index: StructuralIndex,
}

impl ArenaStore {
    /// Access to the name dictionary (used by the disk serializer).
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    #[inline]
    fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    fn opt(v: u32) -> Option<NodeId> {
        (v != NIL).then_some(NodeId(v))
    }

    /// Raw value without cloning (arena-only fast path).
    pub fn value_ref(&self, n: NodeId) -> Option<&str> {
        self.node(n).value.as_deref()
    }

    // ----- update support (see crate::update for the public API) ---------

    pub(crate) fn set_value_raw(&mut self, n: NodeId, content: &str) {
        self.nodes[n.index()].value = Some(content.into());
    }

    pub(crate) fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    fn push_node(&mut self, kind: NodeKind, name: Option<NameId>, value: Option<&str>) -> u32 {
        let mut data = NodeData::new(kind, 0);
        data.name = name.map_or(NIL, |x| x.0);
        data.value = value.map(Into::into);
        let idx = self.nodes.len() as u32;
        self.nodes.push(data);
        idx
    }

    pub(crate) fn alloc_attribute(&mut self, owner: NodeId, name: NameId, value: &str) -> NodeId {
        let idx = self.push_node(NodeKind::Attribute, Some(name), Some(value));
        self.nodes[idx as usize].parent = owner.0;
        let o = &mut self.nodes[owner.index()];
        if o.first_attr == NIL {
            o.first_attr = idx;
        } else {
            let last = o.last_attr;
            self.nodes[last as usize].next_sibling = idx;
            self.nodes[idx as usize].prev_sibling = last;
        }
        self.nodes[owner.index()].last_attr = idx;
        NodeId(idx)
    }

    pub(crate) fn alloc_child(
        &mut self,
        parent: NodeId,
        kind: NodeKind,
        name: Option<NameId>,
        value: Option<&str>,
    ) -> NodeId {
        let idx = self.push_node(kind, name, value);
        self.nodes[idx as usize].parent = parent.0;
        let p = &mut self.nodes[parent.index()];
        if p.first_child == NIL {
            p.first_child = idx;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = idx;
            self.nodes[idx as usize].prev_sibling = last;
        }
        self.nodes[parent.index()].last_child = idx;
        NodeId(idx)
    }

    pub(crate) fn alloc_before(
        &mut self,
        parent: NodeId,
        sibling: NodeId,
        kind: NodeKind,
        name: Option<NameId>,
        value: Option<&str>,
    ) -> NodeId {
        let idx = self.push_node(kind, name, value);
        self.nodes[idx as usize].parent = parent.0;
        let prev = self.nodes[sibling.index()].prev_sibling;
        self.nodes[idx as usize].next_sibling = sibling.0;
        self.nodes[idx as usize].prev_sibling = prev;
        self.nodes[sibling.index()].prev_sibling = idx;
        if prev == NIL {
            self.nodes[parent.index()].first_child = idx;
        } else {
            self.nodes[prev as usize].next_sibling = idx;
        }
        NodeId(idx)
    }

    pub(crate) fn unlink(&mut self, n: NodeId) {
        let (parent, prev, next) = {
            let d = self.node(n);
            (d.parent, d.prev_sibling, d.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else if parent != NIL {
            self.nodes[parent as usize].first_child = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        } else if parent != NIL {
            self.nodes[parent as usize].last_child = prev;
        }
        let d = &mut self.nodes[n.index()];
        d.parent = NIL;
        d.prev_sibling = NIL;
        d.next_sibling = NIL;
    }

    pub(crate) fn unlink_attribute(&mut self, owner: NodeId, attr: NodeId) {
        let (prev, next) = {
            let d = self.node(attr);
            (d.prev_sibling, d.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else {
            self.nodes[owner.index()].first_attr = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        } else {
            self.nodes[owner.index()].last_attr = prev;
        }
        let d = &mut self.nodes[attr.index()];
        d.parent = NIL;
        d.prev_sibling = NIL;
        d.next_sibling = NIL;
    }

    /// Re-derive document order with a pre-order pass over the reachable
    /// tree (attributes right after their element), and rebuild the ID
    /// index so removed elements no longer resolve.
    pub(crate) fn renumber(&mut self) {
        let id_name = self.names.lookup("id");
        let mut order = 0u32;
        let mut id_index = HashMap::new();
        // Iterative pre-order walk.
        let mut stack: Vec<u32> = vec![0];
        while let Some(idx) = stack.pop() {
            self.nodes[idx as usize].order = order;
            order += 1;
            // Attributes directly after the element.
            let mut a = self.nodes[idx as usize].first_attr;
            while a != NIL {
                self.nodes[a as usize].order = order;
                order += 1;
                if let Some(id_name) = id_name {
                    if self.nodes[a as usize].name == id_name.0 {
                        if let Some(v) = self.nodes[a as usize].value.clone() {
                            id_index.entry(v).or_insert(NodeId(idx));
                        }
                    }
                }
                a = self.nodes[a as usize].next_sibling;
            }
            // Children pushed in reverse so the leftmost pops first.
            let mut kids = Vec::new();
            let mut c = self.nodes[idx as usize].first_child;
            while c != NIL {
                kids.push(c);
                c = self.nodes[c as usize].next_sibling;
            }
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
        self.id_index = id_index;
        // Structural updates invalidate every interval: re-derive the
        // index from the renumbered tree (tombstones stay unranked).
        self.index = StructuralIndex::build(&*self);
    }
}

impl XmlStore for ArenaStore {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        self.node(n).kind
    }

    fn name(&self, n: NodeId) -> Option<NameId> {
        let v = self.node(n).name;
        (v != NIL).then_some(NameId(v))
    }

    fn value(&self, n: NodeId) -> Option<String> {
        self.node(n).value.as_deref().map(str::to_owned)
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).parent)
    }

    fn first_child(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).first_child)
    }

    fn last_child(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).last_child)
    }

    fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).next_sibling)
    }

    fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).prev_sibling)
    }

    fn first_attribute(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).first_attr)
    }

    fn order(&self, n: NodeId) -> u64 {
        self.node(n).order as u64
    }

    fn intern_lookup(&self, name: &str) -> Option<NameId> {
        self.names.lookup(name)
    }

    fn name_text(&self, id: NameId) -> String {
        self.names.text(id).to_owned()
    }

    fn element_by_id(&self, idval: &str) -> Option<NodeId> {
        self.id_index.get(idval).copied()
    }

    fn structural_index(&self) -> Option<&StructuralIndex> {
        Some(&self.index)
    }
}

/// Event-style builder producing an [`ArenaStore`].
///
/// Calls must arrive in document order: `start_element`, then its
/// `attribute`s, then content, then `end_element`. The XML parser and the
/// synthetic generators both drive this interface.
pub struct ArenaBuilder {
    nodes: Vec<NodeData>,
    names: NameTable,
    stack: Vec<u32>,
    id_index: HashMap<Box<str>, NodeId>,
    id_name: NameId,
    order: u32,
}

impl Default for ArenaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArenaBuilder {
    /// Fresh builder containing only the document node.
    pub fn new() -> ArenaBuilder {
        let mut names = NameTable::default();
        let id_name = names.intern("id");
        let doc = NodeData::new(NodeKind::Document, 0);
        ArenaBuilder {
            nodes: vec![doc],
            names,
            stack: vec![0],
            id_index: HashMap::new(),
            id_name,
            order: 1,
        }
    }

    fn next_order(&mut self) -> u32 {
        let o = self.order;
        self.order += 1;
        o
    }

    fn append_child(&mut self, mut data: NodeData) -> NodeId {
        let Some(&parent) = self.stack.last() else {
            panic!("builder stack underflow");
        };
        let idx = self.nodes.len() as u32;
        data.parent = parent;
        let p = &mut self.nodes[parent as usize];
        if p.first_child == NIL {
            p.first_child = idx;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = idx;
            data.prev_sibling = last;
        }
        self.nodes[parent as usize].last_child = idx;
        self.nodes.push(data);
        NodeId(idx)
    }

    /// Open an element; subsequent content goes under it until
    /// [`ArenaBuilder::end_element`].
    pub fn start_element(&mut self, name: &str) -> NodeId {
        let order = self.next_order();
        let name = self.names.intern(name);
        let mut data = NodeData::new(NodeKind::Element, order);
        data.name = name.0;
        let id = self.append_child(data);
        self.stack.push(id.0);
        id
    }

    /// Attach an attribute to the currently open element. Must be called
    /// before any child content is added.
    pub fn attribute(&mut self, name: &str, value: &str) -> NodeId {
        let Some(&owner) = self.stack.last() else {
            panic!("attribute outside element");
        };
        assert!(
            self.nodes[owner as usize].kind == NodeKind::Element,
            "attribute outside element"
        );
        assert!(
            self.nodes[owner as usize].first_child == NIL,
            "attributes must precede child content"
        );
        let order = self.next_order();
        let name_id = self.names.intern(name);
        let mut data = NodeData::new(NodeKind::Attribute, order);
        data.name = name_id.0;
        data.value = Some(value.into());
        data.parent = owner;
        let idx = self.nodes.len() as u32;
        let o = &mut self.nodes[owner as usize];
        if o.first_attr == NIL {
            o.first_attr = idx;
        } else {
            let last = o.last_attr;
            self.nodes[last as usize].next_sibling = idx;
            data.prev_sibling = last;
        }
        self.nodes[owner as usize].last_attr = idx;
        if name_id == self.id_name {
            self.id_index.entry(value.into()).or_insert(NodeId(owner));
        }
        self.nodes.push(data);
        NodeId(idx)
    }

    /// Close the currently open element.
    pub fn end_element(&mut self) {
        assert!(self.stack.len() > 1, "end_element without start_element");
        self.stack.pop();
    }

    fn leaf(&mut self, kind: NodeKind, value: &str) -> NodeId {
        let order = self.next_order();
        let mut data = NodeData::new(kind, order);
        data.value = Some(value.into());
        self.append_child(data)
    }

    /// Append a text node. Empty text is dropped (no-op) to match the XPath
    /// data model, which has no empty text nodes.
    pub fn text(&mut self, content: &str) -> Option<NodeId> {
        if content.is_empty() {
            return None;
        }
        Some(self.leaf(NodeKind::Text, content))
    }

    /// Append a comment node.
    pub fn comment(&mut self, content: &str) -> NodeId {
        self.leaf(NodeKind::Comment, content)
    }

    /// Append a processing instruction.
    pub fn processing_instruction(&mut self, target: &str, content: &str) -> NodeId {
        let order = self.next_order();
        let name = self.names.intern(target);
        let mut data = NodeData::new(NodeKind::ProcessingInstruction, order);
        data.name = name.0;
        data.value = Some(content.into());
        self.append_child(data)
    }

    /// Finish building: freeze the arena and derive the structural
    /// interval index. Panics if elements are still open.
    pub fn finish(self) -> ArenaStore {
        assert_eq!(self.stack.len(), 1, "unclosed elements at finish()");
        let mut store = ArenaStore {
            nodes: self.nodes,
            names: self.names,
            id_index: self.id_index,
            index: StructuralIndex::empty(),
        };
        store.index = StructuralIndex::build(&store);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArenaStore {
        let mut b = ArenaBuilder::new();
        b.start_element("root");
        b.attribute("id", "0");
        b.start_element("a");
        b.attribute("id", "1");
        b.text("hello");
        b.end_element();
        b.comment("note");
        b.start_element("b");
        b.processing_instruction("php", "echo");
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn structure_links() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        assert_eq!(s.kind(root_el), NodeKind::Element);
        assert_eq!(s.node_name(root_el), "root");
        let a = s.first_child(root_el).unwrap();
        assert_eq!(s.node_name(a), "a");
        let comment = s.next_sibling(a).unwrap();
        assert_eq!(s.kind(comment), NodeKind::Comment);
        let b = s.next_sibling(comment).unwrap();
        assert_eq!(s.node_name(b), "b");
        assert_eq!(s.next_sibling(b), None);
        assert_eq!(s.prev_sibling(b), Some(comment));
        assert_eq!(s.last_child(root_el), Some(b));
        assert_eq!(s.parent(a), Some(root_el));
    }

    #[test]
    fn attributes_not_on_child_axis() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        let attr = s.first_attribute(root_el).unwrap();
        assert_eq!(s.kind(attr), NodeKind::Attribute);
        assert_eq!(s.parent(attr), Some(root_el));
        let a = s.first_child(root_el).unwrap();
        assert_ne!(a, attr);
    }

    #[test]
    fn document_order_is_preorder_with_attrs_after_element() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        let attr = s.first_attribute(root_el).unwrap();
        let a = s.first_child(root_el).unwrap();
        assert!(s.order(s.root()) < s.order(root_el));
        assert!(s.order(root_el) < s.order(attr));
        assert!(s.order(attr) < s.order(a));
    }

    #[test]
    fn id_index_first_wins() {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        b.start_element("x");
        b.attribute("id", "k");
        b.end_element();
        b.start_element("y");
        b.attribute("id", "k");
        b.end_element();
        b.end_element();
        let s = b.finish();
        let hit = s.element_by_id("k").unwrap();
        assert_eq!(s.node_name(hit), "x");
        assert_eq!(s.element_by_id("zzz"), None);
    }

    #[test]
    fn empty_text_dropped() {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        assert!(b.text("").is_none());
        b.end_element();
        let s = b.finish();
        let r = s.first_child(s.root()).unwrap();
        assert_eq!(s.first_child(r), None);
    }

    #[test]
    fn pi_has_target_name_and_content() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        let b = s.last_child(root_el).unwrap();
        let pi = s.first_child(b).unwrap();
        assert_eq!(s.kind(pi), NodeKind::ProcessingInstruction);
        assert_eq!(s.node_name(pi), "php");
        assert_eq!(s.value(pi).as_deref(), Some("echo"));
    }

    #[test]
    fn element_count_counts_only_elements() {
        let s = sample();
        assert_eq!(s.element_count(), 3);
    }
}
