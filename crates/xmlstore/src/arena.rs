//! In-memory arena document store.
//!
//! Nodes live in one contiguous `Vec`; links are indices. Document order is
//! assigned while building (the builder runs in document order by
//! construction) so order comparison is a single integer compare.
//!
//! Order keys are *sparse*: a fresh build stamps node `i` with
//! `i << ORDER_GAP_SHIFT`, leaving a gap of `2^20` keys between adjacent
//! nodes. Structural updates then allocate midpoint keys inside the gap
//! instead of renumbering the document — the incremental repair path
//! (DESIGN.md §18). Each midpoint split halves the local gap, so ~20
//! pathological same-spot inserts exhaust it; the repair then relabels the
//! smallest enclosing element subtree with fresh strides, escalating up
//! the ancestor chain, and falls back to a full key renumber (counted in
//! [`RepairStats::full_renumbers`]) only when even the root interval is
//! dense.

use std::collections::HashMap;

use crate::fault::RepairFailPoint;
use crate::index::StructuralIndex;
use crate::node::{NameId, NodeId, NodeKind};
use crate::store::XmlStore;
use crate::update::{RepairMode, RepairStats, UpdateError};

const NIL: u32 = u32::MAX;

/// log2 of the key gap left between adjacent nodes by a full (re)build.
pub const ORDER_GAP_SHIFT: u32 = 20;
/// The key gap itself.
pub(crate) const ORDER_GAP: u64 = 1 << ORDER_GAP_SHIFT;
/// A subtree relabel only claims an interval when it can hand every node
/// at least this much headroom; thinner intervals escalate to the parent.
const RELABEL_MIN_STRIDE: u64 = 1 << 10;

#[derive(Clone, Debug)]
struct NodeData {
    kind: NodeKind,
    name: u32, // NameId or NIL
    value: Option<Box<str>>,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    prev_sibling: u32,
    first_attr: u32,
    last_attr: u32,
    order: u64,
}

impl NodeData {
    fn new(kind: NodeKind, order: u64) -> NodeData {
        NodeData {
            kind,
            name: NIL,
            value: None,
            parent: NIL,
            first_child: NIL,
            last_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
            first_attr: NIL,
            last_attr: NIL,
            order,
        }
    }
}

/// Interning name dictionary shared by builder and store.
#[derive(Default, Clone, Debug)]
pub struct NameTable {
    map: HashMap<Box<str>, NameId>,
    names: Vec<Box<str>>,
}

impl NameTable {
    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.into());
        self.map.insert(name.into(), id);
        id
    }

    /// Look up without interning.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.map.get(name).copied()
    }

    /// Resolve an id back to text. Panics on foreign ids.
    pub fn text(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names were interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate names in id order (used by the disk serializer).
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_ref())
    }
}

/// Completed, immutable in-memory document.
#[derive(Clone, Debug)]
pub struct ArenaStore {
    nodes: Vec<NodeData>,
    names: NameTable,
    id_index: HashMap<Box<str>, NodeId>,
    index: StructuralIndex,
    repair_mode: RepairMode,
    repair_stats: RepairStats,
    repair_attempts: u64,
    repair_failpoint: RepairFailPoint,
}

impl ArenaStore {
    /// Access to the name dictionary (used by the disk serializer).
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// How structural updates maintain the index (incremental by default).
    pub fn repair_mode(&self) -> RepairMode {
        self.repair_mode
    }

    /// Switch between incremental repair and full renumbering. The two
    /// modes produce identical stores (the differential tests assert it);
    /// `FullRenumber` exists for benchmarking and as a safety valve.
    pub fn set_repair_mode(&mut self, mode: RepairMode) {
        self.repair_mode = mode;
    }

    /// Counters of how updates were absorbed since the store was built.
    pub fn repair_stats(&self) -> RepairStats {
        self.repair_stats
    }

    /// Arm (or clear) deterministic repair-abort injection.
    pub fn set_repair_failpoint(&mut self, fp: RepairFailPoint) {
        self.repair_failpoint = fp;
    }

    #[inline]
    fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    fn opt(v: u32) -> Option<NodeId> {
        (v != NIL).then_some(NodeId(v))
    }

    /// Raw value without cloning (arena-only fast path).
    pub fn value_ref(&self, n: NodeId) -> Option<&str> {
        self.node(n).value.as_deref()
    }

    // ----- update support (see crate::update for the public API) ---------

    pub(crate) fn set_value_raw(&mut self, n: NodeId, content: &str) {
        self.nodes[n.index()].value = Some(content.into());
    }

    pub(crate) fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    fn push_node(&mut self, kind: NodeKind, name: Option<NameId>, value: Option<&str>) -> u32 {
        let mut data = NodeData::new(kind, 0);
        data.name = name.map_or(NIL, |x| x.0);
        data.value = value.map(Into::into);
        let idx = self.nodes.len() as u32;
        self.nodes.push(data);
        idx
    }

    pub(crate) fn alloc_attribute(&mut self, owner: NodeId, name: NameId, value: &str) -> NodeId {
        let idx = self.push_node(NodeKind::Attribute, Some(name), Some(value));
        self.nodes[idx as usize].parent = owner.0;
        let o = &mut self.nodes[owner.index()];
        if o.first_attr == NIL {
            o.first_attr = idx;
        } else {
            let last = o.last_attr;
            self.nodes[last as usize].next_sibling = idx;
            self.nodes[idx as usize].prev_sibling = last;
        }
        self.nodes[owner.index()].last_attr = idx;
        NodeId(idx)
    }

    pub(crate) fn alloc_child(
        &mut self,
        parent: NodeId,
        kind: NodeKind,
        name: Option<NameId>,
        value: Option<&str>,
    ) -> NodeId {
        let idx = self.push_node(kind, name, value);
        self.nodes[idx as usize].parent = parent.0;
        let p = &mut self.nodes[parent.index()];
        if p.first_child == NIL {
            p.first_child = idx;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = idx;
            self.nodes[idx as usize].prev_sibling = last;
        }
        self.nodes[parent.index()].last_child = idx;
        NodeId(idx)
    }

    pub(crate) fn alloc_before(
        &mut self,
        parent: NodeId,
        sibling: NodeId,
        kind: NodeKind,
        name: Option<NameId>,
        value: Option<&str>,
    ) -> NodeId {
        let idx = self.push_node(kind, name, value);
        self.nodes[idx as usize].parent = parent.0;
        let prev = self.nodes[sibling.index()].prev_sibling;
        self.nodes[idx as usize].next_sibling = sibling.0;
        self.nodes[idx as usize].prev_sibling = prev;
        self.nodes[sibling.index()].prev_sibling = idx;
        if prev == NIL {
            self.nodes[parent.index()].first_child = idx;
        } else {
            self.nodes[prev as usize].next_sibling = idx;
        }
        NodeId(idx)
    }

    pub(crate) fn unlink(&mut self, n: NodeId) {
        let (parent, prev, next) = {
            let d = self.node(n);
            (d.parent, d.prev_sibling, d.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else if parent != NIL {
            self.nodes[parent as usize].first_child = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        } else if parent != NIL {
            self.nodes[parent as usize].last_child = prev;
        }
        let d = &mut self.nodes[n.index()];
        d.parent = NIL;
        d.prev_sibling = NIL;
        d.next_sibling = NIL;
    }

    pub(crate) fn unlink_attribute(&mut self, owner: NodeId, attr: NodeId) {
        let (prev, next) = {
            let d = self.node(attr);
            (d.prev_sibling, d.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else {
            self.nodes[owner.index()].first_attr = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        } else {
            self.nodes[owner.index()].last_attr = prev;
        }
        let d = &mut self.nodes[attr.index()];
        d.parent = NIL;
        d.prev_sibling = NIL;
        d.next_sibling = NIL;
    }

    /// Re-derive document order with a pre-order pass over the reachable
    /// tree (attributes right after their element), and rebuild the ID
    /// index so removed elements no longer resolve.
    pub(crate) fn renumber(&mut self) {
        let id_name = self.names.lookup("id");
        let mut seq = 0u64;
        let mut id_index = HashMap::new();
        // Iterative pre-order walk.
        let mut stack: Vec<u32> = vec![0];
        while let Some(idx) = stack.pop() {
            self.nodes[idx as usize].order = seq << ORDER_GAP_SHIFT;
            seq += 1;
            // Attributes directly after the element.
            let mut a = self.nodes[idx as usize].first_attr;
            while a != NIL {
                self.nodes[a as usize].order = seq << ORDER_GAP_SHIFT;
                seq += 1;
                if let Some(id_name) = id_name {
                    if self.nodes[a as usize].name == id_name.0 {
                        if let Some(v) = self.nodes[a as usize].value.clone() {
                            id_index.entry(v).or_insert(NodeId(idx));
                        }
                    }
                }
                a = self.nodes[a as usize].next_sibling;
            }
            // Children pushed in reverse so the leftmost pops first.
            let mut kids = Vec::new();
            let mut c = self.nodes[idx as usize].first_child;
            while c != NIL {
                kids.push(c);
                c = self.nodes[c as usize].next_sibling;
            }
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
        self.id_index = id_index;
        // Structural updates invalidate every interval: re-derive the
        // index from the renumbered tree (tombstones stay unranked).
        self.index = StructuralIndex::build(&*self);
    }

    // ----- incremental repair (DESIGN.md §18) -----------------------------
    //
    // Every public update op in `crate::update` ends in one of the three
    // `repair_*` entry points below. In `RepairMode::FullRenumber` they
    // defer to `renumber()`; in the default incremental mode they splice
    // the structural index, adjust ancestor sizes and statistics exactly,
    // allocate a sparse order key from the local gap, and patch the id
    // index — all O(touched + tail-shift) with no tree walk.
    //
    // On an injected `RepairAborted` the store's index is *undefined*;
    // callers (the engine's `WriteBatch`) must discard the store. That is
    // the point: atomicity lives at the snapshot layer, not here.

    /// Count a repair attempt, honoring the injected abort point.
    fn note_repair_attempt(&mut self) -> Result<(), UpdateError> {
        self.repair_attempts += 1;
        if self.repair_failpoint.fail_repair_at == Some(self.repair_attempts) {
            return Err(UpdateError::RepairAborted);
        }
        Ok(())
    }

    /// Rank of a node that must be reachable (repair precondition).
    fn rank_checked(&self, n: NodeId) -> u32 {
        match self.index.rank_of(n) {
            Some(r) => r,
            None => unreachable!("repair target {n} must be ranked"),
        }
    }

    /// Document-order rank the freshly linked node `n` must occupy.
    /// Derived purely from sibling/parent links and existing intervals.
    fn insertion_rank(&self, n: NodeId) -> u32 {
        let d = &self.nodes[n.index()];
        if d.kind == NodeKind::Attribute {
            // Attributes rank right after their element, in attr order.
            if d.prev_sibling != NIL {
                self.rank_checked(NodeId(d.prev_sibling)) + 1
            } else {
                self.rank_checked(NodeId(d.parent)) + 1
            }
        } else if d.prev_sibling != NIL {
            // After the previous sibling's whole subtree.
            let pr = self.rank_checked(NodeId(d.prev_sibling));
            pr + self.index.size_at(pr) + 1
        } else {
            // First child: after the parent and its attributes.
            let pr = self.rank_checked(NodeId(d.parent));
            let mut r = pr + 1;
            let mut a = self.nodes[d.parent as usize].first_attr;
            while a != NIL {
                r += 1;
                a = self.nodes[a as usize].next_sibling;
            }
            r
        }
    }

    /// Give the nodes at ranks `[rank, rank+count)` fresh order keys
    /// between their rank neighbours, relabeling an enclosing subtree
    /// (or, ultimately, the whole key space) when the local gap is spent.
    fn assign_gap_keys(&mut self, rank: u32, count: u32) {
        let lo = self.nodes[self.index.node_at(rank - 1).index()].order;
        let hi_rank = rank + count;
        let hi = if (hi_rank as usize) < self.index.len() {
            self.nodes[self.index.node_at(hi_rank).index()].order
        } else {
            u64::MAX
        };
        let c = u64::from(count);
        if hi == u64::MAX {
            // Append at the document tail: stamp fresh full gaps.
            if let Some(top) = lo.checked_add(ORDER_GAP.saturating_mul(c)) {
                if top < u64::MAX {
                    for i in 0..count {
                        let n = self.index.node_at(rank + i);
                        self.nodes[n.index()].order = lo + ORDER_GAP * u64::from(i + 1);
                    }
                    return;
                }
            }
        } else {
            let stride = (hi - lo) / (c + 1);
            if stride >= 1 {
                for i in 0..count {
                    let n = self.index.node_at(rank + i);
                    self.nodes[n.index()].order = lo + stride * u64::from(i + 1);
                }
                return;
            }
        }
        self.relabel_for_space(rank);
    }

    /// The gap at `rank` is exhausted: restamp the smallest enclosing
    /// element subtree that still has key headroom, escalating upward.
    /// Reaching the document node means the whole key space is dense —
    /// rewrite every key from the (already correct) index in one pass.
    fn relabel_for_space(&mut self, rank: u32) {
        let mut anc = self.nodes[self.index.node_at(rank).index()].parent;
        while anc != NIL && self.nodes[anc as usize].kind != NodeKind::Document {
            if let Some(ar) = self.index.rank_of(NodeId(anc)) {
                let span_nodes = self.index.size_at(ar);
                let base = self.nodes[anc as usize].order;
                let hi_rank = ar + span_nodes + 1;
                let hi = if (hi_rank as usize) < self.index.len() {
                    self.nodes[self.index.node_at(hi_rank).index()].order
                } else {
                    u64::MAX
                };
                let stride = ((hi - base) / (u64::from(span_nodes) + 1)).min(ORDER_GAP);
                if stride >= RELABEL_MIN_STRIDE {
                    for i in 1..=span_nodes {
                        let n = self.index.node_at(ar + i);
                        self.nodes[n.index()].order = base + stride * u64::from(i);
                    }
                    self.repair_stats.relabels += 1;
                    return;
                }
            }
            anc = self.nodes[anc as usize].parent;
        }
        self.renumber_keys_from_index();
        self.repair_stats.full_renumbers += 1;
    }

    /// Full key renumber *without* a tree walk or index rebuild: the
    /// index is intact, so keys are just ranks scaled back to full gaps.
    fn renumber_keys_from_index(&mut self) {
        for r in 0..self.index.len() as u32 {
            let n = self.index.node_at(r);
            self.nodes[n.index()].order = u64::from(r) << ORDER_GAP_SHIFT;
        }
    }

    /// Absorb the freshly allocated-and-linked node `n` (element, text or
    /// attribute) into index, statistics, order keys and id index.
    pub(crate) fn repair_after_insert(&mut self, n: NodeId) -> Result<(), UpdateError> {
        if self.repair_mode == RepairMode::FullRenumber {
            self.renumber();
            self.repair_stats.full_renumbers += 1;
            return Ok(());
        }
        self.note_repair_attempt()?;
        let (kind, name) = {
            let d = &self.nodes[n.index()];
            (d.kind, d.name)
        };
        let rank = self.insertion_rank(n);
        self.index.splice_insert(rank, n, kind, (name != NIL).then_some(NameId(name)));
        // Ancestors: every one grows by a node; element ancestors also
        // grow their per-tag subtree sums.
        let mut depth = 0u32;
        let mut elem_anc = 0i64;
        let mut anc_tags: Vec<u32> = Vec::new();
        let mut a = self.nodes[n.index()].parent;
        while a != NIL {
            if let Some(ar) = self.index.rank_of(NodeId(a)) {
                self.index.add_size(ar, 1);
            }
            if self.nodes[a as usize].kind == NodeKind::Element {
                elem_anc += 1;
                if self.nodes[a as usize].name != NIL {
                    anc_tags.push(self.nodes[a as usize].name);
                }
            }
            depth += 1;
            a = self.nodes[a as usize].parent;
        }
        self.assign_gap_keys(rank, 1);
        {
            let st = self.index.stats_mut();
            st.node_count += 1;
            match kind {
                NodeKind::Element => st.element_count += 1,
                NodeKind::Attribute => st.attribute_count += 1,
                NodeKind::Text => st.text_count += 1,
                _ => {}
            }
            if depth > st.max_depth {
                st.set_max_depth(depth);
            }
            st.add_subtree_total(elem_anc);
        }
        if matches!(kind, NodeKind::Element | NodeKind::Attribute) && name != NIL {
            let t = self.names.text(NameId(name));
            self.index.stats_mut().tag_adjust(t, 1, 0);
        }
        for nm in anc_tags {
            let t = self.names.text(NameId(nm));
            self.index.stats_mut().tag_adjust(t, 0, 1);
        }
        self.index.stats_mut().refresh_derived();
        if kind == NodeKind::Attribute && self.names.lookup("id").map(|i| i.0) == Some(name) {
            if let Some(v) = self.nodes[n.index()].value.clone() {
                self.id_consider(&v, NodeId(self.nodes[n.index()].parent));
            }
        }
        self.repair_stats.incremental += 1;
        Ok(())
    }

    /// Remove the subtree (or single attribute: `attr_owner` set) rooted
    /// at `n`: unlink, splice its rank interval out, shrink ancestors and
    /// statistics, and re-elect any id-index winners that lived inside.
    pub(crate) fn repair_remove(
        &mut self,
        n: NodeId,
        attr_owner: Option<NodeId>,
    ) -> Result<(), UpdateError> {
        if self.repair_mode == RepairMode::FullRenumber {
            match attr_owner {
                Some(o) => self.unlink_attribute(o, n),
                None => self.unlink(n),
            }
            self.renumber();
            self.repair_stats.full_renumbers += 1;
            return Ok(());
        }
        self.note_repair_attempt()?;
        let rank = self.rank_checked(n);
        let s = self.index.size_at(rank);
        let count = s + 1;

        // Ancestor chain, walked before the unlink severs it.
        let mut base_depth = 0u32;
        let mut elem_anc = 0i64;
        let mut anc_tags: Vec<u32> = Vec::new();
        let mut a = self.nodes[n.index()].parent;
        while a != NIL {
            if let Some(ar) = self.index.rank_of(NodeId(a)) {
                self.index.add_size(ar, -i64::from(count));
            }
            if self.nodes[a as usize].kind == NodeKind::Element {
                elem_anc += 1;
                if self.nodes[a as usize].name != NIL {
                    anc_tags.push(self.nodes[a as usize].name);
                }
            }
            base_depth += 1;
            a = self.nodes[a as usize].parent;
        }

        // One pass over the doomed interval: per-kind and per-tag counts,
        // id entries whose winner lives inside, and whether the document's
        // max depth might shrink (relative depth via an interval stack).
        let id_name = self.names.lookup("id").map(|i| i.0);
        let (mut node_d, mut elem_d, mut attr_d, mut text_d) = (0u64, 0u64, 0u64, 0u64);
        let mut sub_total_d: i64 = -(elem_anc * i64::from(count));
        let mut tag_deltas: Vec<(u32, i64, i64)> = Vec::new();
        let mut rescan_ids: Vec<Box<str>> = Vec::new();
        let mut ends: Vec<u32> = Vec::new();
        let mut touches_max = false;
        for r in rank..=rank + s {
            while ends.last().is_some_and(|&e| r > e) {
                ends.pop();
            }
            if base_depth + ends.len() as u32 >= self.index.stats().max_depth {
                touches_max = true;
            }
            ends.push(r + self.index.size_at(r));
            let d = &self.nodes[self.index.node_at(r).index()];
            node_d += 1;
            match d.kind {
                NodeKind::Element => {
                    elem_d += 1;
                    let size = i64::from(self.index.size_at(r));
                    sub_total_d -= size;
                    if d.name != NIL {
                        tag_deltas.push((d.name, -1, -size));
                    }
                }
                NodeKind::Attribute => {
                    attr_d += 1;
                    if d.name != NIL {
                        tag_deltas.push((d.name, -1, 0));
                        if Some(d.name) == id_name {
                            if let Some(v) = d.value.as_deref() {
                                if self.id_index.get(v).copied() == Some(NodeId(d.parent)) {
                                    rescan_ids.push(v.into());
                                }
                            }
                        }
                    }
                }
                NodeKind::Text => text_d += 1,
                _ => {}
            }
        }

        match attr_owner {
            Some(o) => self.unlink_attribute(o, n),
            None => self.unlink(n),
        }
        let _ = self.index.splice_remove(rank, count);

        {
            let st = self.index.stats_mut();
            st.node_count -= node_d;
            st.element_count -= elem_d;
            st.attribute_count -= attr_d;
            st.text_count -= text_d;
            st.add_subtree_total(sub_total_d);
        }
        for nm in anc_tags {
            let t = self.names.text(NameId(nm));
            self.index.stats_mut().tag_adjust(t, 0, -i64::from(count));
        }
        for (nm, cd, sd) in tag_deltas {
            let t = self.names.text(NameId(nm));
            self.index.stats_mut().tag_adjust(t, cd, sd);
        }
        if touches_max {
            self.recompute_max_depth();
        }
        self.index.stats_mut().refresh_derived();
        for v in rescan_ids {
            self.id_rescan(&v);
        }
        self.repair_stats.incremental += 1;
        Ok(())
    }

    /// Relocate the subtree rooted at `n` to become the last child of
    /// `new_parent`: splice its rank block out, relink, splice it back in
    /// at the new position, and shift the ancestor deltas across.
    /// Validation (child kind, cycles, root constraints) happens in
    /// `crate::update::move_subtree`.
    pub(crate) fn repair_move(&mut self, n: NodeId, new_parent: NodeId) -> Result<(), UpdateError> {
        if self.repair_mode == RepairMode::FullRenumber {
            self.unlink(n);
            self.link_last_child(new_parent, n);
            self.renumber();
            self.repair_stats.full_renumbers += 1;
            return Ok(());
        }
        self.note_repair_attempt()?;
        let rank = self.rank_checked(n);
        let s = self.index.size_at(rank);
        let count = s + 1;

        // Old ancestors shed the block.
        let mut old_depth = 0u32;
        let mut old_elem_anc = 0i64;
        let mut old_anc_tags: Vec<u32> = Vec::new();
        let mut a = self.nodes[n.index()].parent;
        while a != NIL {
            if let Some(ar) = self.index.rank_of(NodeId(a)) {
                self.index.add_size(ar, -i64::from(count));
            }
            if self.nodes[a as usize].kind == NodeKind::Element {
                old_elem_anc += 1;
                if self.nodes[a as usize].name != NIL {
                    old_anc_tags.push(self.nodes[a as usize].name);
                }
            }
            old_depth += 1;
            a = self.nodes[a as usize].parent;
        }

        // Block scan: deepest relative depth (for max-depth bookkeeping)
        // and every id value inside (winners may change when ranks move).
        let id_name = self.names.lookup("id").map(|i| i.0);
        let mut max_rel = 0u32;
        let mut block_ids: Vec<Box<str>> = Vec::new();
        let mut ends: Vec<u32> = Vec::new();
        for r in rank..=rank + s {
            while ends.last().is_some_and(|&e| r > e) {
                ends.pop();
            }
            max_rel = max_rel.max(ends.len() as u32);
            ends.push(r + self.index.size_at(r));
            let d = &self.nodes[self.index.node_at(r).index()];
            if d.kind == NodeKind::Attribute && Some(d.name) == id_name {
                if let Some(v) = d.value.as_deref() {
                    block_ids.push(v.into());
                }
            }
        }
        let touches_max = old_depth + max_rel >= self.index.stats().max_depth;

        let block = self.index.splice_remove(rank, count);
        self.unlink(n);
        self.link_last_child(new_parent, n);
        let new_rank = self.insertion_rank(n);
        self.index.splice_insert_block(new_rank, block);

        // New ancestors absorb the block.
        let mut new_depth = 0u32;
        let mut new_elem_anc = 0i64;
        let mut new_anc_tags: Vec<u32> = Vec::new();
        let mut a = self.nodes[n.index()].parent;
        while a != NIL {
            if let Some(ar) = self.index.rank_of(NodeId(a)) {
                self.index.add_size(ar, i64::from(count));
            }
            if self.nodes[a as usize].kind == NodeKind::Element {
                new_elem_anc += 1;
                if self.nodes[a as usize].name != NIL {
                    new_anc_tags.push(self.nodes[a as usize].name);
                }
            }
            new_depth += 1;
            a = self.nodes[a as usize].parent;
        }

        self.assign_gap_keys(new_rank, count);
        self.index
            .stats_mut()
            .add_subtree_total((new_elem_anc - old_elem_anc) * i64::from(count));
        for nm in old_anc_tags {
            let t = self.names.text(NameId(nm));
            self.index.stats_mut().tag_adjust(t, 0, -i64::from(count));
        }
        for nm in new_anc_tags {
            let t = self.names.text(NameId(nm));
            self.index.stats_mut().tag_adjust(t, 0, i64::from(count));
        }
        if touches_max {
            self.recompute_max_depth();
        } else {
            let candidate = new_depth + max_rel;
            if candidate > self.index.stats().max_depth {
                self.index.stats_mut().set_max_depth(candidate);
            }
        }
        self.index.stats_mut().refresh_derived();
        for v in block_ids {
            self.id_rescan(&v);
        }
        self.repair_stats.incremental += 1;
        Ok(())
    }

    /// Exact max-depth recompute over the interval nesting (only run when
    /// a removal or move might have taken the deepest node with it).
    fn recompute_max_depth(&mut self) {
        let mut ends: Vec<u32> = Vec::new();
        let mut md = 0u32;
        for r in 0..self.index.len() as u32 {
            while ends.last().is_some_and(|&e| r > e) {
                ends.pop();
            }
            md = md.max(ends.len() as u32);
            ends.push(r + self.index.size_at(r));
        }
        self.index.stats_mut().set_max_depth(md);
    }

    /// Attach the (unlinked) node `n` as the last child of `parent`.
    pub(crate) fn link_last_child(&mut self, parent: NodeId, n: NodeId) {
        self.nodes[n.index()].parent = parent.0;
        let p = &mut self.nodes[parent.index()];
        if p.first_child == NIL {
            p.first_child = n.0;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = n.0;
            self.nodes[n.index()].prev_sibling = last;
        }
        self.nodes[parent.index()].last_child = n.0;
    }

    /// Offer `owner` as the element for id `value`; first-in-document-
    /// order wins, decided by index rank.
    fn id_consider(&mut self, value: &str, owner: NodeId) {
        let Some(new_r) = self.index.rank_of(owner) else {
            return;
        };
        match self.id_index.get(value) {
            Some(&cur) => {
                let cur_r = self.index.rank_of(cur).unwrap_or(u32::MAX);
                if new_r < cur_r {
                    self.id_index.insert(value.into(), owner);
                }
            }
            None => {
                self.id_index.insert(value.into(), owner);
            }
        }
    }

    /// Re-elect the id-index winner for `value` by scanning ranks in
    /// document order (run only when the current winner was removed or
    /// relocated — rare, so the linear scan is acceptable).
    fn id_rescan(&mut self, value: &str) {
        self.id_index.remove(value);
        let Some(id_name) = self.names.lookup("id") else {
            return;
        };
        for r in 0..self.index.len() as u32 {
            if self.index.kind_at(r) != NodeKind::Attribute {
                continue;
            }
            let d = &self.nodes[self.index.node_at(r).index()];
            if d.name == id_name.0 && d.value.as_deref() == Some(value) {
                self.id_index.insert(value.into(), NodeId(d.parent));
                return;
            }
        }
    }

    /// Replace an attribute's value, keeping the id index honest when the
    /// attribute is named `id` (overwriting an id used to leave the index
    /// stale). In-place: no structural or order changes.
    pub(crate) fn set_attr_value_with_id_fix(&mut self, attr: NodeId, value: &str) {
        let name = self.nodes[attr.index()].name;
        let is_id = name != NIL && self.names.lookup("id").map(|i| i.0) == Some(name);
        let old = self.nodes[attr.index()].value.clone();
        self.set_value_raw(attr, value);
        if is_id && self.index.rank_of(attr).is_some() {
            let owner = NodeId(self.nodes[attr.index()].parent);
            if let Some(old) = old {
                if old.as_ref() != value && self.id_index.get(old.as_ref()).copied() == Some(owner)
                {
                    self.id_rescan(&old);
                }
            }
            self.id_consider(value, owner);
        }
    }
}

impl XmlStore for ArenaStore {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        self.node(n).kind
    }

    fn name(&self, n: NodeId) -> Option<NameId> {
        let v = self.node(n).name;
        (v != NIL).then_some(NameId(v))
    }

    fn value(&self, n: NodeId) -> Option<String> {
        self.node(n).value.as_deref().map(str::to_owned)
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).parent)
    }

    fn first_child(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).first_child)
    }

    fn last_child(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).last_child)
    }

    fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).next_sibling)
    }

    fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).prev_sibling)
    }

    fn first_attribute(&self, n: NodeId) -> Option<NodeId> {
        Self::opt(self.node(n).first_attr)
    }

    fn order(&self, n: NodeId) -> u64 {
        self.node(n).order
    }

    fn intern_lookup(&self, name: &str) -> Option<NameId> {
        self.names.lookup(name)
    }

    fn name_text(&self, id: NameId) -> String {
        self.names.text(id).to_owned()
    }

    fn element_by_id(&self, idval: &str) -> Option<NodeId> {
        self.id_index.get(idval).copied()
    }

    fn structural_index(&self) -> Option<&StructuralIndex> {
        Some(&self.index)
    }
}

/// Event-style builder producing an [`ArenaStore`].
///
/// Calls must arrive in document order: `start_element`, then its
/// `attribute`s, then content, then `end_element`. The XML parser and the
/// synthetic generators both drive this interface.
pub struct ArenaBuilder {
    nodes: Vec<NodeData>,
    names: NameTable,
    stack: Vec<u32>,
    id_index: HashMap<Box<str>, NodeId>,
    id_name: NameId,
    order: u32,
}

impl Default for ArenaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArenaBuilder {
    /// Fresh builder containing only the document node.
    pub fn new() -> ArenaBuilder {
        let mut names = NameTable::default();
        let id_name = names.intern("id");
        let doc = NodeData::new(NodeKind::Document, 0);
        ArenaBuilder {
            nodes: vec![doc],
            names,
            stack: vec![0],
            id_index: HashMap::new(),
            id_name,
            order: 1,
        }
    }

    fn next_order(&mut self) -> u64 {
        let o = u64::from(self.order) << ORDER_GAP_SHIFT;
        self.order += 1;
        o
    }

    fn append_child(&mut self, mut data: NodeData) -> NodeId {
        let Some(&parent) = self.stack.last() else {
            panic!("builder stack underflow");
        };
        let idx = self.nodes.len() as u32;
        data.parent = parent;
        let p = &mut self.nodes[parent as usize];
        if p.first_child == NIL {
            p.first_child = idx;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = idx;
            data.prev_sibling = last;
        }
        self.nodes[parent as usize].last_child = idx;
        self.nodes.push(data);
        NodeId(idx)
    }

    /// Open an element; subsequent content goes under it until
    /// [`ArenaBuilder::end_element`].
    pub fn start_element(&mut self, name: &str) -> NodeId {
        let order = self.next_order();
        let name = self.names.intern(name);
        let mut data = NodeData::new(NodeKind::Element, order);
        data.name = name.0;
        let id = self.append_child(data);
        self.stack.push(id.0);
        id
    }

    /// Attach an attribute to the currently open element. Must be called
    /// before any child content is added.
    pub fn attribute(&mut self, name: &str, value: &str) -> NodeId {
        let Some(&owner) = self.stack.last() else {
            panic!("attribute outside element");
        };
        assert!(
            self.nodes[owner as usize].kind == NodeKind::Element,
            "attribute outside element"
        );
        assert!(
            self.nodes[owner as usize].first_child == NIL,
            "attributes must precede child content"
        );
        let order = self.next_order();
        let name_id = self.names.intern(name);
        let mut data = NodeData::new(NodeKind::Attribute, order);
        data.name = name_id.0;
        data.value = Some(value.into());
        data.parent = owner;
        let idx = self.nodes.len() as u32;
        let o = &mut self.nodes[owner as usize];
        if o.first_attr == NIL {
            o.first_attr = idx;
        } else {
            let last = o.last_attr;
            self.nodes[last as usize].next_sibling = idx;
            data.prev_sibling = last;
        }
        self.nodes[owner as usize].last_attr = idx;
        if name_id == self.id_name {
            self.id_index.entry(value.into()).or_insert(NodeId(owner));
        }
        self.nodes.push(data);
        NodeId(idx)
    }

    /// Close the currently open element.
    pub fn end_element(&mut self) {
        assert!(self.stack.len() > 1, "end_element without start_element");
        self.stack.pop();
    }

    fn leaf(&mut self, kind: NodeKind, value: &str) -> NodeId {
        let order = self.next_order();
        let mut data = NodeData::new(kind, order);
        data.value = Some(value.into());
        self.append_child(data)
    }

    /// Append a text node. Empty text is dropped (no-op) to match the XPath
    /// data model, which has no empty text nodes.
    pub fn text(&mut self, content: &str) -> Option<NodeId> {
        if content.is_empty() {
            return None;
        }
        Some(self.leaf(NodeKind::Text, content))
    }

    /// Append a comment node.
    pub fn comment(&mut self, content: &str) -> NodeId {
        self.leaf(NodeKind::Comment, content)
    }

    /// Append a processing instruction.
    pub fn processing_instruction(&mut self, target: &str, content: &str) -> NodeId {
        let order = self.next_order();
        let name = self.names.intern(target);
        let mut data = NodeData::new(NodeKind::ProcessingInstruction, order);
        data.name = name.0;
        data.value = Some(content.into());
        self.append_child(data)
    }

    /// Finish building: freeze the arena and derive the structural
    /// interval index. Panics if elements are still open.
    pub fn finish(self) -> ArenaStore {
        assert_eq!(self.stack.len(), 1, "unclosed elements at finish()");
        let mut store = ArenaStore {
            nodes: self.nodes,
            names: self.names,
            id_index: self.id_index,
            index: StructuralIndex::empty(),
            repair_mode: RepairMode::Incremental,
            repair_stats: RepairStats::default(),
            repair_attempts: 0,
            repair_failpoint: RepairFailPoint::none(),
        };
        store.index = StructuralIndex::build(&store);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArenaStore {
        let mut b = ArenaBuilder::new();
        b.start_element("root");
        b.attribute("id", "0");
        b.start_element("a");
        b.attribute("id", "1");
        b.text("hello");
        b.end_element();
        b.comment("note");
        b.start_element("b");
        b.processing_instruction("php", "echo");
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn structure_links() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        assert_eq!(s.kind(root_el), NodeKind::Element);
        assert_eq!(s.node_name(root_el), "root");
        let a = s.first_child(root_el).unwrap();
        assert_eq!(s.node_name(a), "a");
        let comment = s.next_sibling(a).unwrap();
        assert_eq!(s.kind(comment), NodeKind::Comment);
        let b = s.next_sibling(comment).unwrap();
        assert_eq!(s.node_name(b), "b");
        assert_eq!(s.next_sibling(b), None);
        assert_eq!(s.prev_sibling(b), Some(comment));
        assert_eq!(s.last_child(root_el), Some(b));
        assert_eq!(s.parent(a), Some(root_el));
    }

    #[test]
    fn attributes_not_on_child_axis() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        let attr = s.first_attribute(root_el).unwrap();
        assert_eq!(s.kind(attr), NodeKind::Attribute);
        assert_eq!(s.parent(attr), Some(root_el));
        let a = s.first_child(root_el).unwrap();
        assert_ne!(a, attr);
    }

    #[test]
    fn document_order_is_preorder_with_attrs_after_element() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        let attr = s.first_attribute(root_el).unwrap();
        let a = s.first_child(root_el).unwrap();
        assert!(s.order(s.root()) < s.order(root_el));
        assert!(s.order(root_el) < s.order(attr));
        assert!(s.order(attr) < s.order(a));
    }

    #[test]
    fn id_index_first_wins() {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        b.start_element("x");
        b.attribute("id", "k");
        b.end_element();
        b.start_element("y");
        b.attribute("id", "k");
        b.end_element();
        b.end_element();
        let s = b.finish();
        let hit = s.element_by_id("k").unwrap();
        assert_eq!(s.node_name(hit), "x");
        assert_eq!(s.element_by_id("zzz"), None);
    }

    #[test]
    fn empty_text_dropped() {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        assert!(b.text("").is_none());
        b.end_element();
        let s = b.finish();
        let r = s.first_child(s.root()).unwrap();
        assert_eq!(s.first_child(r), None);
    }

    #[test]
    fn pi_has_target_name_and_content() {
        let s = sample();
        let root_el = s.first_child(s.root()).unwrap();
        let b = s.last_child(root_el).unwrap();
        let pi = s.first_child(b).unwrap();
        assert_eq!(s.kind(pi), NodeKind::ProcessingInstruction);
        assert_eq!(s.node_name(pi), "php");
        assert_eq!(s.value(pi).as_deref(), Some("echo"));
    }

    #[test]
    fn element_count_counts_only_elements() {
        let s = sample();
        assert_eq!(s.element_count(), 3);
    }
}
