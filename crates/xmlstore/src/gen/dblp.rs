//! Synthetic DBLP document generator (paper §6.2.2 substitution).
//!
//! The paper runs its Fig. 10 workload on the real 216 MB DBLP dump. We
//! generate a structurally equivalent document: a `dblp` root with a long
//! list of publication records (`article`, `inproceedings`, `phdthesis`,
//! `www`), each carrying a `key` attribute and `author`/`title`/`year`/
//! `ee`/`pages` children. The name pool includes "Guido Moerkotte" and the
//! key pool includes "conf/er/LockemannM91" so that every Fig. 10 query
//! has non-trivial results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arena::{ArenaBuilder, ArenaStore};

/// Parameters of the synthetic DBLP document.
#[derive(Clone, Copy, Debug)]
pub struct DblpParams {
    /// Number of publication records under the root.
    pub records: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for DblpParams {
    fn default() -> Self {
        DblpParams { records: 10_000, seed: 42 }
    }
}

const FIRST: [&str; 12] = [
    "Guido",
    "Sven",
    "Carl-Christian",
    "Matthias",
    "Anna",
    "Boris",
    "Clara",
    "David",
    "Elena",
    "Frank",
    "Grete",
    "Henrik",
];
const LAST: [&str; 12] = [
    "Moerkotte",
    "Helmer",
    "Kanne",
    "Brantner",
    "Schmidt",
    "Keller",
    "Lang",
    "Maier",
    "Neumann",
    "Olteanu",
    "Pichler",
    "Quass",
];
const TITLE_WORDS: [&str; 16] = [
    "algebraic",
    "evaluation",
    "of",
    "XPath",
    "queries",
    "in",
    "native",
    "XML",
    "databases",
    "optimization",
    "holistic",
    "joins",
    "pattern",
    "matching",
    "storage",
    "systems",
];
const VENUES: [&str; 6] = ["vldb", "sigmod", "icde", "edbt", "er", "wise"];
const JOURNALS: [&str; 4] = ["tods", "vldbj", "sigmodrecord", "debu"];

fn person(rng: &mut StdRng) -> String {
    // Bias towards "Guido Moerkotte" so the Fig. 10 author queries select
    // a realistic minority of records.
    if rng.gen_ratio(1, 40) {
        return "Guido Moerkotte".to_owned();
    }
    format!(
        "{} {}",
        FIRST[rng.gen_range(0..FIRST.len())],
        LAST[rng.gen_range(0..LAST.len())]
    )
}

fn title(rng: &mut StdRng) -> String {
    let n = rng.gen_range(4..9);
    let mut t = String::new();
    for i in 0..n {
        if i > 0 {
            t.push(' ');
        }
        t.push_str(TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]);
    }
    t.push('.');
    t
}

/// Generate the synthetic DBLP document.
pub fn generate_dblp(params: DblpParams) -> ArenaStore {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = ArenaBuilder::new();
    b.start_element("dblp");
    b.attribute("id", "dblp-root");
    for i in 0..params.records {
        let kind_roll = rng.gen_range(0..100);
        // One well-known inproceedings the Fig. 10 key-lookup query finds.
        let landmark = i == params.records / 2;
        let (elem, key) = if landmark {
            ("inproceedings", "conf/er/LockemannM91".to_owned())
        } else if kind_roll < 40 {
            let j = JOURNALS[rng.gen_range(0..JOURNALS.len())];
            ("article", format!("journals/{j}/entry{i}"))
        } else if kind_roll < 90 {
            let v = VENUES[rng.gen_range(0..VENUES.len())];
            ("inproceedings", format!("conf/{v}/entry{i}"))
        } else if kind_roll < 95 {
            ("phdthesis", format!("phd/entry{i}"))
        } else {
            ("www", format!("www/entry{i}"))
        };
        b.start_element(elem);
        b.attribute("key", &key);
        b.attribute("id", &format!("rec{i}"));
        let nauthors = rng.gen_range(1..=5);
        for _ in 0..nauthors {
            b.start_element("author");
            b.text(&person(&mut rng));
            b.end_element();
        }
        b.start_element("title");
        b.text(&title(&mut rng));
        b.end_element();
        b.start_element("year");
        let year: i32 = rng.gen_range(1980..=2004);
        b.text(&year.to_string());
        b.end_element();
        if rng.gen_bool(0.7) {
            b.start_element("pages");
            let start = rng.gen_range(1..=800);
            b.text(&format!("{}-{}", start, start + rng.gen_range(5..20)));
            b.end_element();
        }
        if rng.gen_bool(0.5) {
            b.start_element("ee");
            b.text(&format!("db/{key}.html"));
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{axis_nodes, Axis};
    use crate::store::XmlStore;

    fn small() -> ArenaStore {
        generate_dblp(DblpParams { records: 400, seed: 7 })
    }

    #[test]
    fn root_is_dblp_with_requested_records() {
        let s = small();
        let root = s.first_child(s.root()).unwrap();
        assert_eq!(s.node_name(root), "dblp");
        assert_eq!(axis_nodes(&s, Axis::Child, root).len(), 400);
    }

    #[test]
    fn records_have_required_children() {
        let s = small();
        let root = s.first_child(s.root()).unwrap();
        for rec in axis_nodes(&s, Axis::Child, root) {
            let names: Vec<String> =
                axis_nodes(&s, Axis::Child, rec).iter().map(|&c| s.node_name(c)).collect();
            assert!(names.contains(&"author".to_owned()));
            assert!(names.contains(&"title".to_owned()));
            assert!(names.contains(&"year".to_owned()));
            assert!(s.attribute_value(rec, "key").is_some());
        }
    }

    #[test]
    fn landmark_key_present_exactly_once_on_inproceedings() {
        let s = small();
        let root = s.first_child(s.root()).unwrap();
        let hits: Vec<_> = axis_nodes(&s, Axis::Child, root)
            .into_iter()
            .filter(|&r| s.attribute_value(r, "key").as_deref() == Some("conf/er/LockemannM91"))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(s.node_name(hits[0]), "inproceedings");
    }

    #[test]
    fn moerkotte_occurs_sometimes() {
        let s = small();
        let root = s.first_child(s.root()).unwrap();
        let mut hits = 0;
        for rec in axis_nodes(&s, Axis::Child, root) {
            for c in axis_nodes(&s, Axis::Child, rec) {
                if s.node_name(c) == "author" && s.string_value(c) == "Guido Moerkotte" {
                    hits += 1;
                }
            }
        }
        assert!(hits > 0, "author pool must include Guido Moerkotte");
        assert!(hits < 400, "but not on every record");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_dblp(DblpParams { records: 50, seed: 3 });
        let b = generate_dblp(DblpParams { records: 50, seed: 3 });
        let c = generate_dblp(DblpParams { records: 50, seed: 4 });
        assert_eq!(crate::serialize::to_xml(&a), crate::serialize::to_xml(&b));
        assert_ne!(crate::serialize::to_xml(&a), crate::serialize::to_xml(&c));
    }

    #[test]
    fn years_in_range_and_1991_present() {
        let s = generate_dblp(DblpParams { records: 2000, seed: 42 });
        let root = s.first_child(s.root()).unwrap();
        let mut saw_1991 = false;
        for rec in axis_nodes(&s, Axis::Child, root) {
            for c in axis_nodes(&s, Axis::Child, rec) {
                if s.node_name(c) == "year" {
                    let y: i32 = s.string_value(c).parse().unwrap();
                    assert!((1980..=2004).contains(&y));
                    saw_1991 |= y == 1991;
                }
            }
        }
        assert!(saw_1991, "Fig. 10 year queries need 1991 records");
    }
}
