//! Synthetic document generators used by the paper's evaluation.

pub mod dblp;
pub mod tree;

pub use dblp::{generate_dblp, DblpParams};
pub use tree::{generate_tree, TreeParams};
