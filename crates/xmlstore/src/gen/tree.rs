//! Breadth-first tree generator (paper §6.2.1).
//!
//! "The document generator follows a breadth first algorithm and fills
//! every depth of the document with the given fanout until the maximum
//! number of elements or depth is reached. The root element of every
//! document has the name `xdoc`. Every element contains an attribute `id`
//! which is consecutively numbered."
//!
//! Element names below the root cycle through a small alphabet so that
//! name tests are also exercisable; the paper's queries only use `*` node
//! tests, which ignore the names.

use crate::arena::{ArenaBuilder, ArenaStore};

/// Parameters of the generated document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Upper bound on the number of elements (including the root).
    pub max_elements: usize,
    /// Children per element.
    pub fanout: usize,
    /// Maximum depth (root is depth 0).
    pub max_depth: usize,
}

impl TreeParams {
    /// The paper's small configuration family: 2000–8000 elements with
    /// fanout 6. The paper states depth 4, but a fanout-6 tree of depth 4
    /// holds at most 6⁰+…+6⁴ = 1555 elements — fewer than the 2000–8000
    /// range — so the fill must spill into a fifth level; we use depth 5.
    pub fn small(max_elements: usize) -> TreeParams {
        TreeParams { max_elements, fanout: 6, max_depth: 5 }
    }

    /// The paper's large configuration family: 10000–80000 elements,
    /// fanout 10, depth 5.
    pub fn large(max_elements: usize) -> TreeParams {
        TreeParams { max_elements, fanout: 10, max_depth: 5 }
    }
}

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Generate a document per the paper's breadth-first algorithm.
///
/// Breadth-first *shape* with the usual document (pre-)order: we compute
/// the number of levels that fit, then emit the tree depth-first so the
/// builder sees document order, assigning ids level by level exactly as a
/// breadth-first fill would.
pub fn generate_tree(params: TreeParams) -> ArenaStore {
    assert!(params.max_elements >= 1, "need at least the root element");
    // Determine how many elements each level holds under the cap.
    let mut level_sizes: Vec<usize> = vec![1];
    let mut total = 1usize;
    while level_sizes.len() <= params.max_depth {
        let next = level_sizes.last().copied().unwrap_or(1) * params.fanout.max(1);
        if params.fanout == 0 || next == 0 {
            break;
        }
        let next = next.min(params.max_elements - total);
        if next == 0 {
            break;
        }
        level_sizes.push(next);
        total += next;
        if total >= params.max_elements {
            break;
        }
    }

    // Breadth-first id assignment: the k-th element of level d (counting
    // left to right) gets id  sum(level_sizes[..d]) + k.
    let mut level_base = vec![0usize; level_sizes.len()];
    for d in 1..level_sizes.len() {
        level_base[d] = level_base[d - 1] + level_sizes[d - 1];
    }

    let mut b = ArenaBuilder::new();
    // Recursive depth-first emission tracking each level's next BFS index.
    let mut next_in_level = vec![0usize; level_sizes.len()];
    emit(&mut b, 0, &level_sizes, &level_base, &mut next_in_level, params.fanout);
    b.finish()
}

fn emit(
    b: &mut ArenaBuilder,
    depth: usize,
    level_sizes: &[usize],
    level_base: &[usize],
    next_in_level: &mut [usize],
    fanout: usize,
) {
    let my_index = next_in_level[depth];
    next_in_level[depth] += 1;
    let id = level_base[depth] + my_index;
    let name = if depth == 0 {
        "xdoc"
    } else {
        NAMES[id % NAMES.len()]
    };
    b.start_element(name);
    b.attribute("id", &id.to_string());
    if depth + 1 < level_sizes.len() {
        for _ in 0..fanout {
            // Stop once the child level is exhausted (element cap hit).
            if next_in_level[depth + 1] >= level_sizes[depth + 1] {
                break;
            }
            // Only emit a child here if it "belongs" to this parent in the
            // breadth-first fill: parent p gets children while the child
            // level cursor is within p's fanout window.
            let child_index = next_in_level[depth + 1];
            if child_index / fanout != my_index {
                break;
            }
            emit(b, depth + 1, level_sizes, level_base, next_in_level, fanout);
        }
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{axis_nodes, Axis};
    use crate::store::XmlStore;

    #[test]
    fn root_named_xdoc_with_id_zero() {
        let s = generate_tree(TreeParams { max_elements: 10, fanout: 3, max_depth: 3 });
        let root = s.first_child(s.root()).unwrap();
        assert_eq!(s.node_name(root), "xdoc");
        assert_eq!(s.attribute_value(root, "id").as_deref(), Some("0"));
    }

    #[test]
    fn element_cap_respected_exactly() {
        for cap in [1, 2, 7, 50, 200] {
            let s = generate_tree(TreeParams { max_elements: cap, fanout: 4, max_depth: 10 });
            assert_eq!(s.element_count(), cap, "cap {cap}");
        }
    }

    #[test]
    fn depth_cap_respected() {
        let s = generate_tree(TreeParams { max_elements: 100000, fanout: 2, max_depth: 3 });
        let root = s.first_child(s.root()).unwrap();
        // max node depth below root element is 3.
        let mut max_depth = 0;
        for n in axis_nodes(&s, Axis::Descendant, root) {
            let mut d = 0;
            let mut cur = n;
            while let Some(p) = s.parent(cur) {
                if p == root {
                    break;
                }
                d += 1;
                cur = p;
            }
            max_depth = max_depth.max(d + 1);
        }
        assert!(max_depth <= 3);
        // Full binary-ish tree of depth 3: 1 + 2 + 4 + 8 = 15 elements.
        assert_eq!(s.element_count(), 15);
    }

    #[test]
    fn ids_consecutive_breadth_first() {
        let s = generate_tree(TreeParams { max_elements: 13, fanout: 3, max_depth: 2 });
        let root = s.first_child(s.root()).unwrap();
        // Level 1 elements must have ids 1..=3 in sibling order.
        let kids = axis_nodes(&s, Axis::Child, root);
        let ids: Vec<String> = kids.iter().filter_map(|&k| s.attribute_value(k, "id")).collect();
        assert_eq!(ids, ["1", "2", "3"]);
        // All ids unique and dense 0..n.
        let mut all: Vec<usize> = axis_nodes(&s, Axis::DescendantOrSelf, root)
            .iter()
            .filter_map(|&n| s.attribute_value(n, "id"))
            .map(|v| v.parse().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..s.element_count()).collect::<Vec<_>>());
    }

    #[test]
    fn paper_configurations() {
        let s = generate_tree(TreeParams::small(2000));
        assert_eq!(s.element_count(), 2000);
        let s = generate_tree(TreeParams::large(10000));
        assert_eq!(s.element_count(), 10000);
    }

    #[test]
    fn deterministic() {
        let a = generate_tree(TreeParams::small(500));
        let b = generate_tree(TreeParams::small(500));
        assert_eq!(crate::serialize::to_xml(&a), crate::serialize::to_xml(&b));
    }
}
