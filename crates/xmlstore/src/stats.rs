//! Document-statistics snapshot for the cost-based optimizer.
//!
//! A [`StoreStats`] is derived from the [`StructuralIndex`] in one O(n)
//! pass at index-build time (the index itself is already an O(n) build,
//! so the snapshot rides along for free) and is therefore never stale:
//! every structural update rebuilds the index and with it the stats.
//! Consumers read node/element/attribute totals, the maximum depth, the
//! mean element fan-out and subtree size, and per-tag counts with
//! per-tag subtree-size sums — everything the compiler's cardinality
//! estimator needs. Tags are keyed by name *text* (not `NameId`)
//! because the estimator runs in the compiler against a query's node
//! tests, which are strings.
//!
//! The [`fingerprint`](StoreStats::fingerprint) hashes every integer
//! field and tag name (FNV-1a), so two stores with the same shape share
//! a fingerprint and any structural difference separates them. The plan
//! cache keys cost-based plans on it: a cached plan is only reused
//! against a store whose statistics would have produced the same
//! optimizer inputs.

use std::collections::BTreeMap;

use crate::index::StructuralIndex;
use crate::node::NodeKind;
use crate::store::XmlStore;

/// Per-tag statistics: how many named nodes (elements and attributes)
/// carry this name, and the summed subtree sizes of the elements among
/// them (attributes dominate nothing).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TagStat {
    /// The name text.
    pub name: String,
    /// Number of nodes with this name.
    pub count: u64,
    /// Sum of element subtree sizes (self excluded) over those nodes.
    pub subtree_sum: u64,
}

/// One document's shape summary, the optimizer's only input besides the
/// plan itself.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Ranked nodes, document root included.
    pub node_count: u64,
    /// Element nodes.
    pub element_count: u64,
    /// Attribute nodes.
    pub attribute_count: u64,
    /// Text nodes.
    pub text_count: u64,
    /// Maximum node depth (document root = 0).
    pub max_depth: u32,
    /// Mean children per parent (elements + the document node), all
    /// non-attribute child kinds counted.
    pub mean_fanout: f64,
    /// Mean element subtree size, self excluded.
    pub mean_subtree: f64,
    /// Per-tag statistics, sorted by name for binary search.
    tags: Vec<TagStat>,
    /// Summed element subtree sizes (the integer `mean_subtree` is
    /// derived from), kept exact across incremental repairs.
    subtree_total: u64,
    /// FNV-1a over every integer field and the sorted tag table.
    pub fingerprint: u64,
}

impl StoreStats {
    /// Derive the snapshot from a built index in one pass over the rank
    /// arrays (`store` is consulted once per *distinct* name, for its
    /// text). Depth uses the interval nesting directly: a stack of
    /// inclusive subtree ends `[r, r + size]`, popped as ranks leave
    /// the enclosing intervals.
    pub fn from_index(idx: &StructuralIndex, store: &dyn XmlStore) -> StoreStats {
        let n = idx.len() as u32;
        if n == 0 {
            return StoreStats::default();
        }
        let mut s = StoreStats { node_count: u64::from(n), ..StoreStats::default() };
        // Interned id → (count, subtree_sum, any node carrying it).
        let mut by_name: BTreeMap<u32, (u64, u64, u32)> = BTreeMap::new();
        let mut ends: Vec<u32> = Vec::new();
        let mut subtree_sum = 0u64;
        for r in 0..n {
            while ends.last().is_some_and(|&end| r > end) {
                ends.pop();
            }
            s.max_depth = s.max_depth.max(ends.len() as u32);
            ends.push(r + idx.size_at(r));
            match idx.kind_at(r) {
                NodeKind::Element => {
                    s.element_count += 1;
                    let size = u64::from(idx.size_at(r));
                    subtree_sum += size;
                    if let Some(name) = idx.name_at(r) {
                        let slot = by_name.entry(name.0).or_insert((0, 0, r));
                        slot.0 += 1;
                        slot.1 += size;
                    }
                }
                NodeKind::Attribute => {
                    s.attribute_count += 1;
                    if let Some(name) = idx.name_at(r) {
                        by_name.entry(name.0).or_insert((0, 0, r)).0 += 1;
                    }
                }
                NodeKind::Text => s.text_count += 1,
                _ => {}
            }
        }
        s.subtree_total = subtree_sum;
        s.tags = by_name
            .into_values()
            .map(|(count, subtree_sum, rank)| TagStat {
                name: store.node_name(idx.node_at(rank)),
                count,
                subtree_sum,
            })
            .collect();
        s.tags.sort_by(|a, b| a.name.cmp(&b.name));
        s.refresh_derived();
        s
    }

    /// Adjust (or create/retire) the tag entry for `name`. Used by the
    /// incremental index repair; a count reaching zero removes the entry
    /// so the table stays identical to a from-scratch rebuild.
    pub(crate) fn tag_adjust(&mut self, name: &str, count_delta: i64, subtree_delta: i64) {
        match self.tags.binary_search_by(|t| t.name.as_str().cmp(name)) {
            Ok(i) => {
                let t = &mut self.tags[i];
                t.count = t.count.checked_add_signed(count_delta).unwrap_or(0);
                t.subtree_sum = t.subtree_sum.checked_add_signed(subtree_delta).unwrap_or(0);
                if t.count == 0 {
                    self.tags.remove(i);
                }
            }
            Err(i) => {
                if count_delta > 0 {
                    self.tags.insert(
                        i,
                        TagStat {
                            name: name.to_owned(),
                            count: count_delta as u64,
                            subtree_sum: subtree_delta.max(0) as u64,
                        },
                    );
                }
            }
        }
    }

    /// Shift the summed element subtree sizes by `delta`.
    pub(crate) fn add_subtree_total(&mut self, delta: i64) {
        self.subtree_total = self.subtree_total.checked_add_signed(delta).unwrap_or(0);
    }

    /// Direct mutable access for the incremental repair (same crate only).
    pub(crate) fn set_max_depth(&mut self, depth: u32) {
        self.max_depth = depth;
    }

    /// Recompute the derived means and the fingerprint from the integer
    /// fields. Every mutation path (full rebuild or incremental repair)
    /// must end here so equal shapes always hash equally.
    pub(crate) fn refresh_derived(&mut self) {
        if self.node_count == 0 {
            *self = StoreStats::default();
            return;
        }
        // Every non-attribute node except the document root is somebody's
        // child; parents are the elements plus the document node.
        let child_edges = self.node_count - 1 - self.attribute_count;
        self.mean_fanout = child_edges as f64 / (self.element_count + 1) as f64;
        self.mean_subtree = if self.element_count > 0 {
            self.subtree_total as f64 / self.element_count as f64
        } else {
            0.0
        };
        self.fingerprint = self.compute_fingerprint();
    }

    /// Number of named nodes (element or attribute) carrying `name`.
    pub fn tag_count(&self, name: &str) -> u64 {
        self.tag(name).map_or(0, |t| t.count)
    }

    /// Mean subtree size of elements named `name` (0 if unseen).
    pub fn tag_mean_subtree(&self, name: &str) -> f64 {
        match self.tag(name) {
            Some(t) if t.count > 0 => t.subtree_sum as f64 / t.count as f64,
            _ => 0.0,
        }
    }

    /// The sorted per-tag table.
    pub fn tags(&self) -> &[TagStat] {
        &self.tags
    }

    fn tag(&self, name: &str) -> Option<&TagStat> {
        self.tags
            .binary_search_by(|t| t.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.tags[i])
    }

    /// FNV-1a 64 over the integer fields and the sorted tag table; the
    /// derived means are excluded (they are functions of the hashed
    /// integers).
    fn compute_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.node_count);
        mix(self.element_count);
        mix(self.attribute_count);
        mix(self.text_count);
        mix(u64::from(self.max_depth));
        mix(self.tags.len() as u64);
        for t in &self.tags {
            for &b in t.name.as_bytes() {
                mix(u64::from(b));
            }
            mix(t.count);
            mix(t.subtree_sum);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{ArenaBuilder, ArenaStore};

    /// <r a="1"><x p="2"><y/></x><z>t</z></r> — the index module's hand
    /// sample: ranks 0 doc, 1 r, 2 @a, 3 x, 4 @p, 5 y, 6 z, 7 text.
    fn sample() -> ArenaStore {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        b.attribute("a", "1");
        b.start_element("x");
        b.attribute("p", "2");
        b.start_element("y");
        b.end_element();
        b.end_element();
        b.start_element("z");
        b.text("t");
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn hand_computed_sample_stats() {
        let s = sample();
        let st = s.structural_index().unwrap().stats();
        assert_eq!(st.node_count, 8);
        assert_eq!(st.element_count, 4, "r x y z");
        assert_eq!(st.attribute_count, 2, "@a @p");
        assert_eq!(st.text_count, 1);
        // doc 0 · r 1 · {@a,x,z} 2 · {@p,y,text} 3.
        assert_eq!(st.max_depth, 3);
        // Child edges r,x,y,z,t = 5 over parents {doc,r,x,y,z} = 5.
        assert!((st.mean_fanout - 1.0).abs() < 1e-12);
        // Subtree sizes r=6, x=2, y=0, z=1 → mean 9/4.
        assert!((st.mean_subtree - 2.25).abs() < 1e-12);

        assert_eq!(st.tag_count("x"), 1);
        assert!((st.tag_mean_subtree("x") - 2.0).abs() < 1e-12, "x dominates @p and y");
        assert_eq!(st.tag_count("r"), 1);
        assert!((st.tag_mean_subtree("r") - 6.0).abs() < 1e-12);
        assert_eq!(st.tag_count("a"), 1, "attribute names are counted");
        assert_eq!(st.tag_mean_subtree("a"), 0.0, "attributes dominate nothing");
        assert_eq!(st.tag_count("nope"), 0);
    }

    #[test]
    fn fingerprint_separates_shapes_and_is_stable() {
        let a = sample();
        let b = sample();
        let fa = a.structural_index().unwrap().stats().fingerprint;
        let fb = b.structural_index().unwrap().stats().fingerprint;
        assert_eq!(fa, fb, "identical builds share a fingerprint");

        let mut builder = ArenaBuilder::new();
        builder.start_element("r");
        builder.end_element();
        let c = builder.finish();
        let fc = c.structural_index().unwrap().stats().fingerprint;
        assert_ne!(fa, fc, "different shapes separate");
        assert_ne!(fc, 0);
    }

    #[test]
    fn empty_index_yields_default_stats() {
        let b = ArenaBuilder::new();
        let store = b.finish();
        let st = StoreStats::from_index(&StructuralIndex::empty(), &store);
        assert_eq!(st, StoreStats::default());
        assert_eq!(st.fingerprint, 0, "no-index stores read as fingerprint 0");
    }
}
