//! XML substrate for the algebraic XPath engine.
//!
//! This crate plays the role of the Natix storage system in the paper
//! (*Full-fledged Algebraic XPath Processing in Natix*, ICDE 2005): it owns
//! the persistent representation of XML documents and the navigation
//! primitives the physical algebra evaluates against.
//!
//! Contents:
//! * [`node`] / [`store`] — the node model and the [`store::XmlStore`]
//!   navigation trait shared by all stores and both engines,
//! * [`arena`] — in-memory arena store and its event builder,
//! * [`parser`] — a from-scratch XML 1.0 parser,
//! * [`serialize`] — XML writer,
//! * [`axes`] — all XPath axes as iterators in axis order,
//! * [`index`] — the (order, subtree-size) structural interval index and
//!   its range-scan axis kernels,
//! * [`page`] / [`buffer`] / [`diskstore`] — 8 KiB slotted pages, a
//!   pin/unpin LRU buffer manager and the paged on-disk store,
//! * [`gen`] — the paper's document generators (breadth-first trees and a
//!   synthetic DBLP).
//!
//! Namespace handling: qualified names are stored verbatim and the
//! `namespace` axis yields no nodes (the evaluation documents of the paper
//! are namespace-free; this keeps the storage model faithful to what the
//! experiments exercise).
//!
//! Robustness: everything read back from disk is treated as untrusted
//! bytes (DESIGN.md §13). This crate is lint-gated against `unwrap`/
//! `expect` outside test code — decode failures must surface as typed
//! [`error::DiskError`] values, never panics.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod axes;
pub mod buffer;
pub mod crc;
pub mod diskstore;
pub mod error;
pub mod fault;
pub mod gen;
pub mod index;
pub mod node;
pub mod page;
pub mod parser;
pub mod serialize;
pub mod stats;
pub mod store;
pub mod tmp;
pub mod update;

pub use arena::{ArenaBuilder, ArenaStore, NameTable, ORDER_GAP_SHIFT};
pub use axes::{axis_nodes, indexed_axis_nodes, Axis, AxisCursor, AxisIter};
pub use diskstore::VALUE_CAP;
pub use error::{DiskError, StorageFault};
pub use fault::{IoFailPoint, RepairFailPoint};
pub use index::{RangeScan, StructuralIndex};
pub use node::{NameId, NodeId, NodeKind};
pub use parser::{parse_document, parse_document_with_limits, ParseLimits, XmlError};
pub use serialize::{to_xml, to_xml_node};
pub use stats::{StoreStats, TagStat};
pub use store::{ContentKind, NoIndex, XmlStore};
pub use update::{RepairMode, RepairStats, UpdateError};
