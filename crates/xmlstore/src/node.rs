//! Core node model shared by all document stores.
//!
//! Nodes are identified by a dense [`NodeId`]; all structural information
//! (kind, name, links, document order) is resolved through the
//! [`XmlStore`](crate::store::XmlStore) trait, so the same identifier scheme
//! works for the in-memory arena store and the paged disk store.

use std::fmt;

/// Identifier of a node within one document store.
///
/// `NodeId`s are dense (0 is always the document node) and only meaningful
/// relative to the store that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The document (root) node of every store.
    pub const DOCUMENT: NodeId = NodeId(0);

    /// Index usable for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interned name identifier (element/attribute/PI target names).
///
/// Name tests compare `NameId`s instead of strings; both stores keep a name
/// dictionary mapping `NameId` to the textual name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl fmt::Debug for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name#{}", self.0)
    }
}

/// The seven XPath 1.0 node kinds.
///
/// Namespace nodes are recognised by the grammar but never materialised by
/// the stores (see crate docs), so `Namespace` only appears in axis
/// descriptions, never as the kind of a stored node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum NodeKind {
    /// The document root (exactly one per store, always [`NodeId::DOCUMENT`]).
    Document = 0,
    /// An element node.
    Element = 1,
    /// An attribute node (reachable only via the attribute axis).
    Attribute = 2,
    /// A text node.
    Text = 3,
    /// A comment node.
    Comment = 4,
    /// A processing instruction.
    ProcessingInstruction = 5,
}

impl NodeKind {
    /// Decode from the on-disk tag byte.
    pub fn from_u8(v: u8) -> Option<NodeKind> {
        Some(match v {
            0 => NodeKind::Document,
            1 => NodeKind::Element,
            2 => NodeKind::Attribute,
            3 => NodeKind::Text,
            4 => NodeKind::Comment,
            5 => NodeKind::ProcessingInstruction,
            _ => return None,
        })
    }

    /// True for kinds that sit on the child axis of their parent.
    pub fn is_child_kind(self) -> bool {
        !matches!(self, NodeKind::Document | NodeKind::Attribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_document_is_zero() {
        assert_eq!(NodeId::DOCUMENT, NodeId(0));
        assert_eq!(NodeId::DOCUMENT.index(), 0);
    }

    #[test]
    fn node_kind_roundtrip() {
        for k in [
            NodeKind::Document,
            NodeKind::Element,
            NodeKind::Attribute,
            NodeKind::Text,
            NodeKind::Comment,
            NodeKind::ProcessingInstruction,
        ] {
            assert_eq!(NodeKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(NodeKind::from_u8(17), None);
    }

    #[test]
    fn child_kinds() {
        assert!(NodeKind::Element.is_child_kind());
        assert!(NodeKind::Text.is_child_kind());
        assert!(NodeKind::Comment.is_child_kind());
        assert!(NodeKind::ProcessingInstruction.is_child_kind());
        assert!(!NodeKind::Attribute.is_child_kind());
        assert!(!NodeKind::Document.is_child_kind());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }
}
