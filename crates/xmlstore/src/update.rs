//! Document updates on the arena store.
//!
//! Natix stores documents in "recoverable, updatable form" (paper
//! §5.2.2). The substrate supports:
//!
//! * in-place content updates (text/comment/PI content, attribute
//!   values) — no structural change, document order untouched;
//! * structural updates (insert element/text, remove subtree, add or
//!   remove attributes, relocate a subtree) — sibling links are spliced
//!   and the structural index is repaired *incrementally*: gap-based
//!   sparse order keys, localized subtree relabels, and a counted full
//!   renumber only when the key space is exhausted (DESIGN.md §18).
//!   [`RepairMode::FullRenumber`] restores the old O(n) rebuild-per-op
//!   behavior for benchmarking and differential testing.
//!
//! All `NodeId`s remain stable across updates; removed subtrees become
//! unreachable but keep their slots (tombstones), so dense side tables
//! keyed by `NodeId` stay valid. `node_count` keeps counting slots;
//! reachability is what changes.
//!
//! Errors are typed ([`UpdateError`]) and carry a stable machine-readable
//! [`class`](UpdateError::class) so service clients can dispatch on
//! `ERR update <class>` lines without parsing prose.

use crate::arena::ArenaStore;
use crate::node::{NodeId, NodeKind};
use crate::store::XmlStore;

/// How [`ArenaStore`] keeps its structural index consistent across
/// structural updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairMode {
    /// Splice the index and allocate sparse order keys — O(touched) plus
    /// a tail shift, the default.
    #[default]
    Incremental,
    /// Rebuild order, index, statistics and id index from scratch after
    /// every structural op — O(n), the pre-epoch behavior. Kept as a
    /// benchmark baseline and differential oracle.
    FullRenumber,
}

/// Counters of how structural updates were absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Ops absorbed by an incremental splice.
    pub incremental: u64,
    /// Incremental ops that additionally relabeled an enclosing subtree's
    /// order keys because the local gap was exhausted.
    pub relabels: u64,
    /// Full renumbers: every op in [`RepairMode::FullRenumber`], plus the
    /// counted fallback when even relabeling cannot find key headroom.
    pub full_renumbers: u64,
}

/// Errors raised by update operations, engine write batches and the
/// service's `update` protocol. Each variant maps to a stable class
/// token rendered as `ERR update <class>` by the line protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// The op requires an element (or document) target.
    NotAnElement {
        /// Kind actually found.
        kind: NodeKind,
        /// What the op was trying to do.
        op: &'static str,
    },
    /// The op requires a child-axis node (element/text/comment/PI).
    NotAChildNode {
        /// Kind actually found.
        kind: NodeKind,
        /// What the op was trying to do.
        op: &'static str,
    },
    /// The node kind carries no content (elements, the document).
    ContentlessNode {
        /// Kind actually found.
        kind: NodeKind,
    },
    /// The document node already has a root element.
    RootOccupied,
    /// The insertion point has no parent.
    NoParent,
    /// Moving a subtree under one of its own descendants (or itself).
    CycleWouldForm,
    /// The target node is unreachable (a tombstone left by an earlier
    /// removal).
    DetachedTarget(NodeId),
    /// The store is an immutable snapshot (disk-backed documents, or a
    /// reader's pinned epoch); updates need a write batch on the
    /// registry's live arena document.
    ImmutableSnapshot,
    /// Another write batch already holds the document's writer lock.
    WriterConflict(String),
    /// No document with this name is registered.
    UnknownDocument(String),
    /// An update path selected no target node.
    TargetNotFound(String),
    /// A previous op in this batch failed; the batch only rolls back.
    BatchPoisoned,
    /// Injected incremental-repair abort (fault testing). The store the
    /// repair ran on must be discarded.
    RepairAborted,
}

impl UpdateError {
    /// Stable machine-readable class token (the `ERR update <class>`
    /// word in the line protocol).
    pub fn class(&self) -> &'static str {
        match self {
            UpdateError::NotAnElement { .. } => "not-an-element",
            UpdateError::NotAChildNode { .. } => "not-a-child-node",
            UpdateError::ContentlessNode { .. } => "contentless-node",
            UpdateError::RootOccupied => "root-occupied",
            UpdateError::NoParent => "no-parent",
            UpdateError::CycleWouldForm => "cycle",
            UpdateError::DetachedTarget(_) => "detached-target",
            UpdateError::ImmutableSnapshot => "immutable-snapshot",
            UpdateError::WriterConflict(_) => "writer-conflict",
            UpdateError::UnknownDocument(_) => "unknown-document",
            UpdateError::TargetNotFound(_) => "target-not-found",
            UpdateError::BatchPoisoned => "batch-poisoned",
            UpdateError::RepairAborted => "repair-aborted",
        }
    }
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.class())?;
        match self {
            UpdateError::NotAnElement { kind, op } => {
                write!(f, "{op} requires an element, got a {kind:?} node")
            }
            UpdateError::NotAChildNode { kind, op } => {
                write!(f, "{op} requires a child-axis node, got a {kind:?} node")
            }
            UpdateError::ContentlessNode { kind } => {
                write!(f, "a {kind:?} node has no content to set")
            }
            UpdateError::RootOccupied => {
                write!(f, "the document node already has a root element")
            }
            UpdateError::NoParent => write!(f, "insertion point has no parent"),
            UpdateError::CycleWouldForm => {
                write!(f, "cannot move a subtree under itself")
            }
            UpdateError::DetachedTarget(n) => {
                write!(f, "target {n} was already removed from the document")
            }
            UpdateError::ImmutableSnapshot => {
                write!(f, "this document snapshot is immutable; open a write batch")
            }
            UpdateError::WriterConflict(doc) => {
                write!(f, "another write batch holds the writer lock on '{doc}'")
            }
            UpdateError::UnknownDocument(doc) => {
                write!(f, "no document named '{doc}' is registered")
            }
            UpdateError::TargetNotFound(path) => {
                write!(f, "no node matches '{path}'")
            }
            UpdateError::BatchPoisoned => {
                write!(f, "an earlier op in this batch failed; only rollback is possible")
            }
            UpdateError::RepairAborted => {
                write!(f, "injected index-repair abort; the working store is discarded")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl ArenaStore {
    fn require_ranked(&self, n: NodeId) -> Result<(), UpdateError> {
        match self.structural_index() {
            Some(idx) if idx.rank_of(n).is_none() => Err(UpdateError::DetachedTarget(n)),
            _ => Ok(()),
        }
    }

    /// Replace the content of a text, comment, PI or attribute node.
    /// In-place: no structural or order changes. Overwriting an `id`
    /// attribute's value keeps the id index consistent.
    pub fn set_content(&mut self, n: NodeId, content: &str) -> Result<(), UpdateError> {
        match self.kind(n) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                self.set_value_raw(n, content);
                Ok(())
            }
            NodeKind::Attribute => {
                self.set_attr_value_with_id_fix(n, content);
                Ok(())
            }
            other => Err(UpdateError::ContentlessNode { kind: other }),
        }
    }

    /// Set (or add) an attribute on an element. Adding splices the index;
    /// overwriting an existing attribute is in-place.
    pub fn set_attribute(
        &mut self,
        element: NodeId,
        name: &str,
        value: &str,
    ) -> Result<NodeId, UpdateError> {
        if self.kind(element) != NodeKind::Element {
            return Err(UpdateError::NotAnElement {
                kind: self.kind(element),
                op: "set-attribute",
            });
        }
        self.require_ranked(element)?;
        let name_id = self.intern(name);
        if let Some(existing) = self.attribute_named(element, name_id) {
            self.set_attr_value_with_id_fix(existing, value);
            return Ok(existing);
        }
        let attr = self.alloc_attribute(element, name_id, value);
        self.repair_after_insert(attr)?;
        Ok(attr)
    }

    /// Insert a new element as the last child of `parent`.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> Result<NodeId, UpdateError> {
        if !matches!(self.kind(parent), NodeKind::Element | NodeKind::Document) {
            return Err(UpdateError::NotAnElement {
                kind: self.kind(parent),
                op: "append-element",
            });
        }
        if self.kind(parent) == NodeKind::Document && self.first_child(parent).is_some() {
            return Err(UpdateError::RootOccupied);
        }
        self.require_ranked(parent)?;
        let name_id = self.intern(name);
        let node = self.alloc_child(parent, NodeKind::Element, Some(name_id), None);
        self.repair_after_insert(node)?;
        Ok(node)
    }

    /// Insert a new text node as the last child of `parent`.
    pub fn append_text(&mut self, parent: NodeId, content: &str) -> Result<NodeId, UpdateError> {
        if self.kind(parent) != NodeKind::Element {
            return Err(UpdateError::NotAnElement { kind: self.kind(parent), op: "append-text" });
        }
        self.require_ranked(parent)?;
        let node = self.alloc_child(parent, NodeKind::Text, None, Some(content));
        self.repair_after_insert(node)?;
        Ok(node)
    }

    /// Insert a new element immediately before `sibling`.
    pub fn insert_element_before(
        &mut self,
        sibling: NodeId,
        name: &str,
    ) -> Result<NodeId, UpdateError> {
        if !self.kind(sibling).is_child_kind() {
            return Err(UpdateError::NotAChildNode {
                kind: self.kind(sibling),
                op: "insert-before",
            });
        }
        let Some(parent) = self.parent(sibling) else {
            return Err(UpdateError::NoParent);
        };
        self.require_ranked(sibling)?;
        let name_id = self.intern(name);
        let node = self.alloc_before(parent, sibling, NodeKind::Element, Some(name_id), None);
        self.repair_after_insert(node)?;
        Ok(node)
    }

    /// Detach the subtree rooted at `n` (elements, text, comments, PIs).
    /// The nodes become unreachable; their ids are not reused.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<(), UpdateError> {
        if !self.kind(n).is_child_kind() {
            return Err(UpdateError::NotAChildNode { kind: self.kind(n), op: "remove-subtree" });
        }
        self.require_ranked(n)?;
        self.repair_remove(n, None)
    }

    /// Remove an attribute from its element.
    pub fn remove_attribute(&mut self, element: NodeId, name: &str) -> Result<bool, UpdateError> {
        if self.kind(element) != NodeKind::Element {
            return Err(UpdateError::NotAnElement {
                kind: self.kind(element),
                op: "remove-attribute",
            });
        }
        self.require_ranked(element)?;
        let Some(name_id) = self.intern_lookup(name) else {
            return Ok(false);
        };
        let Some(attr) = self.attribute_named(element, name_id) else {
            return Ok(false);
        };
        self.repair_remove(attr, Some(element))?;
        Ok(true)
    }

    /// Relocate the subtree rooted at `n` to become the last child of
    /// `new_parent`. Refuses cycles (moving a node under itself or a
    /// descendant) — the error class the service surfaces as
    /// `ERR update cycle`.
    pub fn move_subtree(&mut self, n: NodeId, new_parent: NodeId) -> Result<(), UpdateError> {
        if !self.kind(n).is_child_kind() {
            return Err(UpdateError::NotAChildNode { kind: self.kind(n), op: "move-subtree" });
        }
        if !matches!(self.kind(new_parent), NodeKind::Element | NodeKind::Document) {
            return Err(UpdateError::NotAnElement {
                kind: self.kind(new_parent),
                op: "move-subtree",
            });
        }
        self.require_ranked(n)?;
        self.require_ranked(new_parent)?;
        if n == new_parent || self.is_ancestor(n, new_parent) {
            return Err(UpdateError::CycleWouldForm);
        }
        if self.kind(new_parent) == NodeKind::Document {
            if let Some(existing) = self.first_child(new_parent) {
                if existing != n {
                    return Err(UpdateError::RootOccupied);
                }
            }
        }
        self.repair_move(n, new_parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{axis_nodes, Axis};
    use crate::index::StructuralIndex;
    use crate::parser::parse_document;
    use crate::serialize::to_xml;

    fn doc() -> ArenaStore {
        parse_document(r#"<r><a x="1">one</a><b>two</b></r>"#).unwrap()
    }

    fn orders_valid(s: &ArenaStore) {
        // Reachable nodes must have strictly increasing pre-order keys:
        // parent < attributes < children, siblings ascending.
        let idx = s.structural_index().unwrap();
        for rank in 1..idx.len() as u32 {
            assert!(
                s.order(idx.node_at(rank - 1)) < s.order(idx.node_at(rank)),
                "order keys must ascend with rank"
            );
        }
        let mut stack = vec![s.root()];
        while let Some(n) = stack.pop() {
            if let Some(p) = s.parent(n) {
                assert!(s.order(p) < s.order(n), "parent order must precede");
            }
            let mut c = s.first_child(n);
            while let Some(ch) = c {
                stack.push(ch);
                c = s.next_sibling(ch);
            }
        }
    }

    /// The repair differential: the incrementally maintained index must
    /// equal a from-scratch rebuild over the same store — arrays, sizes,
    /// statistics and fingerprint.
    fn index_matches_rebuild(s: &ArenaStore) {
        let rebuilt = StructuralIndex::build(s);
        assert_eq!(
            s.structural_index().unwrap(),
            &rebuilt,
            "incremental repair diverged from a full rebuild"
        );
    }

    #[test]
    fn in_place_content_updates() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        let text = s.first_child(a).unwrap();
        s.set_content(text, "uno").unwrap();
        assert_eq!(s.string_value(a), "uno");
        let attr = s.first_attribute(a).unwrap();
        s.set_content(attr, "9").unwrap();
        assert_eq!(s.attribute_value(a, "x").as_deref(), Some("9"));
        // Elements reject content updates.
        let e = s.set_content(a, "nope").unwrap_err();
        assert_eq!(e.class(), "contentless-node");
    }

    #[test]
    fn set_attribute_overwrites_or_adds() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        s.set_attribute(a, "x", "2").unwrap();
        assert_eq!(s.attribute_value(a, "x").as_deref(), Some("2"));
        s.set_attribute(a, "y", "new").unwrap();
        assert_eq!(s.attribute_value(a, "y").as_deref(), Some("new"));
        orders_valid(&s);
        index_matches_rebuild(&s);
        assert_eq!(to_xml(&s), r#"<r><a x="2" y="new">one</a><b>two</b></r>"#);
    }

    #[test]
    fn append_and_insert_elements() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "c").unwrap();
        s.append_text(c, "three").unwrap();
        let b = axis_nodes(&s, Axis::Child, r)[1];
        s.insert_element_before(b, "mid").unwrap();
        orders_valid(&s);
        index_matches_rebuild(&s);
        assert_eq!(to_xml(&s), r#"<r><a x="1">one</a><mid/><b>two</b><c>three</c></r>"#);
    }

    #[test]
    fn remove_subtree_and_attribute() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        s.remove_subtree(a).unwrap();
        orders_valid(&s);
        index_matches_rebuild(&s);
        assert_eq!(to_xml(&s), "<r><b>two</b></r>");
        let b = s.first_child(r).unwrap();
        assert!(!s.remove_attribute(b, "nope").unwrap());
        let mut s2 = doc();
        let r2 = s2.first_child(s2.root()).unwrap();
        let a2 = s2.first_child(r2).unwrap();
        assert!(s2.remove_attribute(a2, "x").unwrap());
        index_matches_rebuild(&s2);
        assert_eq!(to_xml(&s2), "<r><a>one</a><b>two</b></r>");
    }

    #[test]
    fn removed_targets_are_detached() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        s.remove_subtree(a).unwrap();
        assert_eq!(s.remove_subtree(a).unwrap_err().class(), "detached-target");
        assert_eq!(s.append_element(a, "x").unwrap_err().class(), "detached-target");
        assert_eq!(s.set_attribute(a, "k", "v").unwrap_err().class(), "detached-target");
    }

    #[test]
    fn move_subtree_relocates_and_rejects_cycles() {
        let mut s = parse_document(r#"<r><a><b>inner</b></a><c/></r>"#).unwrap();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        let b = s.first_child(a).unwrap();
        let c = s.next_sibling(a).unwrap();
        // Moving an ancestor under its descendant must refuse.
        assert_eq!(s.move_subtree(a, b).unwrap_err().class(), "cycle");
        assert_eq!(s.move_subtree(a, a).unwrap_err().class(), "cycle");
        // Legal move: <b> leaves <a> and lands under <c>.
        s.move_subtree(b, c).unwrap();
        orders_valid(&s);
        index_matches_rebuild(&s);
        assert_eq!(to_xml(&s), "<r><a/><c><b>inner</b></c></r>");
        // And back again.
        s.move_subtree(b, a).unwrap();
        index_matches_rebuild(&s);
        assert_eq!(to_xml(&s), "<r><a><b>inner</b></a><c/></r>");
    }

    #[test]
    fn structural_index_repaired_after_updates() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "c").unwrap();
        s.append_text(c, "three").unwrap();
        let a = s.first_child(r).unwrap();
        s.remove_subtree(a).unwrap();
        let idx = s.structural_index().unwrap();
        // Reachable nodes only: the removed subtree's slots are unranked.
        assert!(idx.rank_of(a).is_none(), "tombstones have no rank");
        // Order keys ascend with rank, and every interval axis still
        // matches the cursor on the mutated tree.
        for rank in 0..idx.len() as u32 {
            let n = idx.node_at(rank);
            if rank > 0 {
                assert!(s.order(idx.node_at(rank - 1)) < s.order(n));
            }
            for axis in [
                Axis::Descendant,
                Axis::DescendantOrSelf,
                Axis::Following,
                Axis::Preceding,
            ] {
                assert_eq!(
                    crate::axes::indexed_axis_nodes(&s, axis, n),
                    axis_nodes(&s, axis, n),
                    "{axis} from rank {rank} after updates"
                );
            }
        }
        orders_valid(&s);
        index_matches_rebuild(&s);
        let st = s.repair_stats();
        assert_eq!(st.incremental, 3, "three structural ops, all incremental");
        assert_eq!(st.full_renumbers, 0);
    }

    #[test]
    fn full_renumber_mode_produces_identical_store() {
        let run = |mode: RepairMode| {
            let mut s = doc();
            s.set_repair_mode(mode);
            let r = s.first_child(s.root()).unwrap();
            let c = s.append_element(r, "c").unwrap();
            s.append_text(c, "3").unwrap();
            let a = s.first_child(r).unwrap();
            s.set_attribute(a, "id", "k").unwrap();
            let b = axis_nodes(&s, Axis::Child, r)[1];
            s.insert_element_before(b, "mid").unwrap();
            s.remove_subtree(b).unwrap();
            s
        };
        let inc = run(RepairMode::Incremental);
        let full = run(RepairMode::FullRenumber);
        assert_eq!(to_xml(&inc), to_xml(&full));
        assert_eq!(
            inc.structural_index().unwrap().stats(),
            full.structural_index().unwrap().stats(),
            "both modes must derive identical statistics"
        );
        assert_eq!(inc.element_by_id("k"), full.element_by_id("k"));
        assert!(inc.repair_stats().incremental > 0);
        assert_eq!(full.repair_stats().incremental, 0);
        assert!(full.repair_stats().full_renumbers > 0);
        index_matches_rebuild(&inc);
    }

    #[test]
    fn gap_exhaustion_relabels_then_renumbers() {
        // Hammer the same insertion point: each insert-before halves the
        // local gap, so the ~20 gap bits run out and the repair must
        // relabel (or ultimately renumber) — while staying correct.
        let mut s = parse_document("<r><pivot/></r>").unwrap();
        let r = s.first_child(s.root()).unwrap();
        let mut target = s.first_child(r).unwrap();
        for i in 0..64 {
            target = s.insert_element_before(target, &format!("e{i}")).unwrap();
            orders_valid(&s);
        }
        index_matches_rebuild(&s);
        let st = s.repair_stats();
        assert_eq!(st.incremental, 64);
        assert!(
            st.relabels + st.full_renumbers > 0,
            "64 same-spot inserts must exhaust a 2^20 gap at least once: {st:?}"
        );
    }

    #[test]
    fn id_index_follows_content_overwrites() {
        // Overwriting an id value used to leave the id index stale.
        let mut s = parse_document(r#"<r><x id="one"/><y id="two"/></r>"#).unwrap();
        let r = s.first_child(s.root()).unwrap();
        let x = s.first_child(r).unwrap();
        let y = s.next_sibling(x).unwrap();
        assert_eq!(s.element_by_id("one"), Some(x));
        // Overwrite via set_attribute.
        s.set_attribute(x, "id", "uno").unwrap();
        assert_eq!(s.element_by_id("one"), None, "old id must stop resolving");
        assert_eq!(s.element_by_id("uno"), Some(x));
        // Overwrite via set_content on the attribute node.
        let y_attr = s.first_attribute(y).unwrap();
        s.set_content(y_attr, "dos").unwrap();
        assert_eq!(s.element_by_id("two"), None);
        assert_eq!(s.element_by_id("dos"), Some(y));
        // First-in-document-order still wins on collision.
        s.set_content(y_attr, "uno").unwrap();
        assert_eq!(s.element_by_id("uno"), Some(x), "x precedes y in document order");
        // And when the winner renames away, the loser is re-elected.
        s.set_attribute(x, "id", "gone").unwrap();
        assert_eq!(s.element_by_id("uno"), Some(y));
    }

    #[test]
    fn queries_see_updates() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "b").unwrap();
        s.append_text(c, "again").unwrap();
        // The axes reflect the new structure and order.
        let bs = axis_nodes(&s, Axis::Descendant, r)
            .into_iter()
            .filter(|&n| s.node_name(n) == "b")
            .count();
        assert_eq!(bs, 2);
        orders_valid(&s);
    }

    #[test]
    fn document_root_constraints() {
        let mut s = doc();
        assert_eq!(s.append_element(s.root(), "second-root").unwrap_err().class(), "root-occupied");
        let r = s.first_child(s.root()).unwrap();
        assert!(s.remove_subtree(r).is_ok(), "removing the root element is allowed");
        assert_eq!(to_xml(&s), "");
        // Now a new root may be appended.
        assert!(s.append_element(s.root(), "fresh").is_ok());
        assert_eq!(to_xml(&s), "<fresh/>");
        index_matches_rebuild(&s);
    }

    #[test]
    fn repair_failpoint_aborts_nth_repair() {
        use crate::fault::RepairFailPoint;
        let mut s = doc();
        s.set_repair_failpoint(RepairFailPoint { fail_repair_at: Some(2) });
        let r = s.first_child(s.root()).unwrap();
        s.append_element(r, "c").unwrap();
        let e = s.append_element(r, "d").unwrap_err();
        assert_eq!(e, UpdateError::RepairAborted);
        // The store is now poisoned by contract; callers discard it. The
        // only guarantee here is the typed error (no panic).
    }

    #[test]
    fn serialize_reparse_roundtrip_after_each_mutation_kind() {
        // After every kind of mutation, serializing and reparsing must
        // reproduce the same serialized form (the store stays a valid
        // XPath data model instance).
        let mut s = doc();
        let roundtrip = |s: &ArenaStore| {
            let xml = to_xml(s);
            let re = parse_document(&xml).unwrap();
            assert_eq!(to_xml(&re), xml, "serialize→reparse must be a fixpoint");
            index_matches_rebuild(s);
        };
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        let t = s.first_child(a).unwrap();
        s.set_content(t, "uno").unwrap();
        roundtrip(&s);
        s.set_attribute(a, "x", "2").unwrap();
        roundtrip(&s);
        s.set_attribute(a, "fresh", "f").unwrap();
        roundtrip(&s);
        let c = s.append_element(r, "c").unwrap();
        roundtrip(&s);
        s.append_text(c, "three").unwrap();
        roundtrip(&s);
        s.insert_element_before(c, "mid").unwrap();
        roundtrip(&s);
        s.remove_attribute(a, "x").unwrap();
        roundtrip(&s);
        s.move_subtree(c, a).unwrap();
        roundtrip(&s);
        s.remove_subtree(a).unwrap();
        roundtrip(&s);
    }

    #[test]
    fn persist_after_update_roundtrips() {
        use crate::diskstore::DiskStore;
        use crate::tmp::TempPath;
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "c").unwrap();
        s.append_text(c, "3").unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&s, t.path(), 4).unwrap();
        assert_eq!(to_xml(&disk), to_xml(&s));
    }
}
