//! Document updates on the arena store.
//!
//! Natix stores documents in "recoverable, updatable form" (paper
//! §5.2.2); the query engines in this repo only read, but the substrate
//! supports mutation between queries:
//!
//! * in-place content updates (text/comment/PI content, attribute
//!   values) — no structural change, document order untouched;
//! * structural updates (insert element/text, remove subtree, add
//!   attribute) — sibling links are spliced and document order is
//!   re-derived by a single pre-order pass (O(n), simple and correct;
//!   a gap-based scheme could amortise this, cf. ORDPATH-style labels).
//!
//! All `NodeId`s remain stable across updates; removed subtrees become
//! unreachable but keep their slots (tombstones), so dense side tables
//! keyed by `NodeId` stay valid. `node_count` keeps counting slots;
//! reachability is what changes.

use crate::arena::ArenaStore;
use crate::node::{NodeId, NodeKind};
use crate::store::XmlStore;

/// Errors raised by update operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "update error: {}", self.message)
    }
}

impl std::error::Error for UpdateError {}

fn err<T>(m: impl Into<String>) -> Result<T, UpdateError> {
    Err(UpdateError { message: m.into() })
}

impl ArenaStore {
    /// Replace the content of a text, comment, PI or attribute node.
    /// In-place: no structural or order changes.
    pub fn set_content(&mut self, n: NodeId, content: &str) -> Result<(), UpdateError> {
        match self.kind(n) {
            NodeKind::Text
            | NodeKind::Comment
            | NodeKind::ProcessingInstruction
            | NodeKind::Attribute => {
                self.set_value_raw(n, content);
                Ok(())
            }
            other => err(format!("cannot set content of a {other:?} node")),
        }
    }

    /// Set (or add) an attribute on an element. Adding re-derives
    /// document order; overwriting an existing attribute is in-place.
    pub fn set_attribute(
        &mut self,
        element: NodeId,
        name: &str,
        value: &str,
    ) -> Result<NodeId, UpdateError> {
        if self.kind(element) != NodeKind::Element {
            return err("attributes can only be set on elements");
        }
        let name_id = self.intern(name);
        if let Some(existing) = self.attribute_named(element, name_id) {
            self.set_value_raw(existing, value);
            return Ok(existing);
        }
        let attr = self.alloc_attribute(element, name_id, value);
        self.renumber();
        Ok(attr)
    }

    /// Insert a new element as the last child of `parent`.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> Result<NodeId, UpdateError> {
        if !matches!(self.kind(parent), NodeKind::Element | NodeKind::Document) {
            return err("children can only be appended to elements or the document");
        }
        if self.kind(parent) == NodeKind::Document && self.first_child(parent).is_some() {
            return err("the document node already has a root element");
        }
        let name_id = self.intern(name);
        let node = self.alloc_child(parent, NodeKind::Element, Some(name_id), None);
        self.renumber();
        Ok(node)
    }

    /// Insert a new text node as the last child of `parent`.
    pub fn append_text(&mut self, parent: NodeId, content: &str) -> Result<NodeId, UpdateError> {
        if self.kind(parent) != NodeKind::Element {
            return err("text can only be appended to elements");
        }
        let node = self.alloc_child(parent, NodeKind::Text, None, Some(content));
        self.renumber();
        Ok(node)
    }

    /// Insert a new element immediately before `sibling`.
    pub fn insert_element_before(
        &mut self,
        sibling: NodeId,
        name: &str,
    ) -> Result<NodeId, UpdateError> {
        if !self.kind(sibling).is_child_kind() {
            return err("insertion point must be on a child axis");
        }
        let Some(parent) = self.parent(sibling) else {
            return err("insertion point has no parent");
        };
        let name_id = self.intern(name);
        let node = self.alloc_before(parent, sibling, NodeKind::Element, Some(name_id), None);
        self.renumber();
        Ok(node)
    }

    /// Detach the subtree rooted at `n` (elements, text, comments, PIs).
    /// The nodes become unreachable; their ids are not reused.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<(), UpdateError> {
        if !self.kind(n).is_child_kind() {
            return err("only child-axis subtrees can be removed");
        }
        self.unlink(n);
        self.renumber();
        Ok(())
    }

    /// Remove an attribute from its element.
    pub fn remove_attribute(&mut self, element: NodeId, name: &str) -> Result<bool, UpdateError> {
        if self.kind(element) != NodeKind::Element {
            return err("attributes can only be removed from elements");
        }
        let Some(name_id) = self.intern_lookup(name) else {
            return Ok(false);
        };
        let Some(attr) = self.attribute_named(element, name_id) else {
            return Ok(false);
        };
        self.unlink_attribute(element, attr);
        self.renumber();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{axis_nodes, Axis};
    use crate::parser::parse_document;
    use crate::serialize::to_xml;

    fn doc() -> ArenaStore {
        parse_document(r#"<r><a x="1">one</a><b>two</b></r>"#).unwrap()
    }

    fn orders_valid(s: &ArenaStore) {
        // Reachable nodes must have strictly increasing pre-order ranks.
        let mut last = 0;
        let mut stack = vec![s.root()];
        while let Some(n) = stack.pop() {
            let o = s.order(n);
            if n != s.root() {
                assert!(o > 0);
            }
            let _ = last;
            last = o;
            // parent < child, element < its attributes < its children
            if let Some(p) = s.parent(n) {
                assert!(s.order(p) < o, "parent order must precede");
            }
            let mut c = s.first_child(n);
            while let Some(ch) = c {
                stack.push(ch);
                c = s.next_sibling(ch);
            }
        }
    }

    #[test]
    fn in_place_content_updates() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        let text = s.first_child(a).unwrap();
        s.set_content(text, "uno").unwrap();
        assert_eq!(s.string_value(a), "uno");
        let attr = s.first_attribute(a).unwrap();
        s.set_content(attr, "9").unwrap();
        assert_eq!(s.attribute_value(a, "x").as_deref(), Some("9"));
        // Elements reject content updates.
        assert!(s.set_content(a, "nope").is_err());
    }

    #[test]
    fn set_attribute_overwrites_or_adds() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        s.set_attribute(a, "x", "2").unwrap();
        assert_eq!(s.attribute_value(a, "x").as_deref(), Some("2"));
        s.set_attribute(a, "y", "new").unwrap();
        assert_eq!(s.attribute_value(a, "y").as_deref(), Some("new"));
        orders_valid(&s);
        assert_eq!(to_xml(&s), r#"<r><a x="2" y="new">one</a><b>two</b></r>"#);
    }

    #[test]
    fn append_and_insert_elements() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "c").unwrap();
        s.append_text(c, "three").unwrap();
        let b = axis_nodes(&s, Axis::Child, r)[1];
        s.insert_element_before(b, "mid").unwrap();
        orders_valid(&s);
        assert_eq!(to_xml(&s), r#"<r><a x="1">one</a><mid/><b>two</b><c>three</c></r>"#);
    }

    #[test]
    fn remove_subtree_and_attribute() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let a = s.first_child(r).unwrap();
        s.remove_subtree(a).unwrap();
        orders_valid(&s);
        assert_eq!(to_xml(&s), "<r><b>two</b></r>");
        let b = s.first_child(r).unwrap();
        assert!(!s.remove_attribute(b, "nope").unwrap());
        let mut s2 = doc();
        let r2 = s2.first_child(s2.root()).unwrap();
        let a2 = s2.first_child(r2).unwrap();
        assert!(s2.remove_attribute(a2, "x").unwrap());
        assert_eq!(to_xml(&s2), "<r><a>one</a><b>two</b></r>");
    }

    #[test]
    fn structural_index_rebuilt_after_updates() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "c").unwrap();
        s.append_text(c, "three").unwrap();
        let a = s.first_child(r).unwrap();
        s.remove_subtree(a).unwrap();
        let idx = s.structural_index().unwrap();
        // Reachable nodes only: the removed subtree's slots are unranked.
        assert!(idx.rank_of(a).is_none(), "tombstones have no rank");
        // Ranks agree with the re-derived document order, and every
        // interval axis still matches the cursor on the mutated tree.
        for rank in 0..idx.len() as u32 {
            let n = idx.node_at(rank);
            assert_eq!(s.order(n), u64::from(rank));
            for axis in [
                Axis::Descendant,
                Axis::DescendantOrSelf,
                Axis::Following,
                Axis::Preceding,
            ] {
                assert_eq!(
                    crate::axes::indexed_axis_nodes(&s, axis, n),
                    axis_nodes(&s, axis, n),
                    "{axis} from rank {rank} after updates"
                );
            }
        }
        orders_valid(&s);
    }

    #[test]
    fn queries_see_updates() {
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "b").unwrap();
        s.append_text(c, "again").unwrap();
        // The axes reflect the new structure and order.
        let bs = axis_nodes(&s, Axis::Descendant, r)
            .into_iter()
            .filter(|&n| s.node_name(n) == "b")
            .count();
        assert_eq!(bs, 2);
        orders_valid(&s);
    }

    #[test]
    fn document_root_constraints() {
        let mut s = doc();
        assert!(s.append_element(s.root(), "second-root").is_err());
        let r = s.first_child(s.root()).unwrap();
        assert!(s.remove_subtree(r).is_ok(), "removing the root element is allowed");
        assert_eq!(to_xml(&s), "");
        // Now a new root may be appended.
        assert!(s.append_element(s.root(), "fresh").is_ok());
        assert_eq!(to_xml(&s), "<fresh/>");
    }

    #[test]
    fn persist_after_update_roundtrips() {
        use crate::diskstore::DiskStore;
        use crate::tmp::TempPath;
        let mut s = doc();
        let r = s.first_child(s.root()).unwrap();
        let c = s.append_element(r, "c").unwrap();
        s.append_text(c, "3").unwrap();
        let t = TempPath::new(".natix");
        let disk = DiskStore::create_from(&s, t.path(), 4).unwrap();
        assert_eq!(to_xml(&disk), to_xml(&s));
    }
}
