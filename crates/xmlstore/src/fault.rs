//! Deterministic I/O fault injection (the storage-layer extension of the
//! executor's `FailPoint`; DESIGN.md §13).
//!
//! The corruption test harness drives the disk path through every failure
//! mode a real device exhibits — a read that errors, a read that comes up
//! short, a page whose bytes rotted since they were written, a crash in
//! the middle of a build — and asserts typed-error-or-correct-answer,
//! never a panic. All injection points are counted deterministically
//! (Nth call, 1-based), so failures reproduce without any timing games.

/// Injected storage faults. `Default` injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoFailPoint {
    /// Fail the Nth `BufferManager::pin` with an injected I/O error.
    pub fail_pin_at: Option<u64>,
    /// Make the Nth page read from disk come up short (simulates a
    /// truncated file appearing mid-query).
    pub short_read_at: Option<u64>,
    /// Flip the low bit of byte `offset` of page `page` every time that
    /// page is read from disk (simulates media corruption; caught by the
    /// page checksum).
    pub flip_byte: Option<(u32, u32)>,
    /// Fail the Nth file write during a store build (simulates a crash /
    /// `kill -9` mid-build; the atomic-build protocol must then leave no
    /// store file behind).
    pub fail_write_at: Option<u64>,
    /// Fail the data-file fsync at the end of a build.
    pub fail_sync: bool,
    /// Fail the temp→final rename at the end of a build.
    pub fail_rename: bool,
}

impl IoFailPoint {
    /// No injected faults.
    pub fn none() -> IoFailPoint {
        IoFailPoint::default()
    }

    /// The injected error used for all counted fault points.
    pub fn injected_error() -> std::io::Error {
        std::io::Error::other("injected I/O fault")
    }
}

/// Injected incremental-repair faults (the update-path sibling of
/// [`IoFailPoint`]). `Default` injects nothing.
///
/// A triggered abort leaves the store's index in an undefined state —
/// deliberately: the `WriteBatch` layer applies every update to a private
/// clone and discards the whole clone on any error, so the published
/// document is untouched. The counter is 1-based and deterministic, like
/// every other fault point in this codebase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairFailPoint {
    /// Abort the Nth incremental index repair attempted on this store.
    pub fail_repair_at: Option<u64>,
}

impl RepairFailPoint {
    /// No injected faults.
    pub fn none() -> RepairFailPoint {
        RepairFailPoint::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let fp = IoFailPoint::none();
        assert_eq!(fp.fail_pin_at, None);
        assert_eq!(fp.fail_write_at, None);
        assert!(!fp.fail_sync && !fp.fail_rename);
        assert_eq!(RepairFailPoint::none().fail_repair_at, None);
    }
}
