//! Fixed-size slotted pages with a CRC32C integrity trailer.
//!
//! The disk store keeps variable-length string records (text content,
//! attribute values, the name dictionary) in slotted pages: a slot
//! directory grows from the front of the page, record bodies grow from the
//! back. Node records are fixed-size and addressed arithmetically, so they
//! bypass the slot directory (see [`crate::diskstore`]).
//!
//! The last [`CRC_TRAILER`] bytes of *every* page (slotted or not,
//! including the header page) hold the CRC32C of the preceding
//! [`PAGE_PAYLOAD`] bytes. [`seal_page`] writes it at build time and the
//! buffer manager checks it on every read from disk, so a flipped bit or
//! torn write anywhere in the file surfaces as a typed checksum error
//! before any decode logic sees the bytes.

use crate::crc::crc32c;

/// Size of every page in the store file.
pub const PAGE_SIZE: usize = 8192;

/// Bytes of the integrity trailer at the end of every page.
pub const CRC_TRAILER: usize = 4;

/// Usable bytes per page (everything before the CRC trailer).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - CRC_TRAILER;

/// Page header: number of slots (u16) + free-space offset (u16).
const HEADER: usize = 4;
/// Per-slot directory entry: offset (u16) + length (u16).
const SLOT: usize = 4;

/// Write the CRC32C of the payload into the page trailer.
pub fn seal_page(page: &mut [u8; PAGE_SIZE]) {
    let crc = crc32c(&page[..PAGE_PAYLOAD]);
    page[PAGE_PAYLOAD..].copy_from_slice(&crc.to_le_bytes());
}

/// True when the page trailer matches its payload.
pub fn verify_page(page: &[u8; PAGE_SIZE]) -> bool {
    let stored = u32::from_le_bytes([
        page[PAGE_PAYLOAD],
        page[PAGE_PAYLOAD + 1],
        page[PAGE_PAYLOAD + 2],
        page[PAGE_PAYLOAD + 3],
    ]);
    crc32c(&page[..PAGE_PAYLOAD]) == stored
}

/// A slotted page under construction (build phase only).
pub struct SlottedPageBuilder {
    data: Box<[u8; PAGE_SIZE]>,
    nslots: u16,
    /// First byte used by record bodies (they grow downward from the end
    /// of the payload area, leaving the CRC trailer untouched).
    body_start: usize,
}

impl Default for SlottedPageBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPageBuilder {
    /// Fresh empty page.
    pub fn new() -> SlottedPageBuilder {
        SlottedPageBuilder {
            data: Box::new([0u8; PAGE_SIZE]),
            nslots: 0,
            body_start: PAGE_PAYLOAD,
        }
    }

    /// Free bytes available for one more record (including its slot entry).
    pub fn free(&self) -> usize {
        self.body_start - (HEADER + self.nslots as usize * SLOT)
    }

    /// Largest record body this page can still take.
    pub fn capacity_for_record(&self) -> usize {
        self.free().saturating_sub(SLOT)
    }

    /// Largest record body an *empty* page can take.
    pub fn max_record() -> usize {
        PAGE_PAYLOAD - HEADER - SLOT
    }

    /// Append a record; returns its slot number, or `None` if it does not fit.
    pub fn insert(&mut self, body: &[u8]) -> Option<u16> {
        if body.len() > self.capacity_for_record() {
            return None;
        }
        let off = self.body_start - body.len();
        self.data[off..off + body.len()].copy_from_slice(body);
        let slot = self.nslots;
        let dir = HEADER + slot as usize * SLOT;
        self.data[dir..dir + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.data[dir + 2..dir + 4].copy_from_slice(&(body.len() as u16).to_le_bytes());
        self.nslots += 1;
        self.body_start = off;
        Some(slot)
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> u16 {
        self.nslots
    }

    /// Finalise into raw page bytes, sealed with the CRC trailer.
    pub fn finish(mut self) -> Box<[u8; PAGE_SIZE]> {
        self.data[0..2].copy_from_slice(&self.nslots.to_le_bytes());
        self.data[2..4].copy_from_slice(&(self.body_start as u16).to_le_bytes());
        seal_page(&mut self.data);
        self.data
    }
}

/// Read access to a finished slotted page.
///
/// All accessors treat the bytes as untrusted: out-of-range slots,
/// directory entries pointing outside the payload area, and entries
/// overlapping the slot directory all return `None` instead of panicking.
/// (The buffer manager's checksum check makes these states unreachable
/// from an intact file; the guards keep decode panic-free even when a
/// caller bypasses verification.)
pub struct SlottedPage<'a> {
    data: &'a [u8],
}

impl<'a> SlottedPage<'a> {
    /// Interpret `data` (must be `PAGE_SIZE` bytes) as a slotted page.
    pub fn new(data: &'a [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    /// Body of record `slot`, or `None` for an out-of-range slot or a
    /// structurally invalid directory entry.
    pub fn record(&self, slot: u16) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let dir = HEADER + slot as usize * SLOT;
        let dir_entry = self.data.get(dir..dir + 4)?;
        let off = u16::from_le_bytes([dir_entry[0], dir_entry[1]]) as usize;
        let len = u16::from_le_bytes([dir_entry[2], dir_entry[3]]) as usize;
        // Bodies live strictly between the slot directory and the CRC
        // trailer.
        if off < HEADER + self.slot_count() as usize * SLOT || off + len > PAGE_PAYLOAD {
            return None;
        }
        self.data.get(off..off + len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut b = SlottedPageBuilder::new();
        let s0 = b.insert(b"hello").unwrap();
        let s1 = b.insert(b"").unwrap();
        let s2 = b.insert(&[7u8; 100]).unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        let bytes = b.finish();
        let p = SlottedPage::new(&bytes[..]);
        assert_eq!(p.slot_count(), 3);
        assert_eq!(p.record(0), Some(&b"hello"[..]));
        assert_eq!(p.record(1), Some(&b""[..]));
        assert_eq!(p.record(2), Some(&[7u8; 100][..]));
        assert_eq!(p.record(3), None);
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut b = SlottedPageBuilder::new();
        let max = SlottedPageBuilder::max_record();
        assert!(b.insert(&vec![1u8; max + 1]).is_none());
        assert!(b.insert(&vec![1u8; max]).is_some());
        assert!(b.insert(b"x").is_none(), "page is full");
    }

    #[test]
    fn many_small_records() {
        let mut b = SlottedPageBuilder::new();
        let mut n = 0u16;
        while b.insert(&n.to_le_bytes()).is_some() {
            n += 1;
        }
        // (PAGE_PAYLOAD - HEADER) / (SLOT + 2) records of two bytes each.
        assert_eq!(n as usize, (PAGE_PAYLOAD - HEADER) / (SLOT + 2));
        let bytes = b.finish();
        let p = SlottedPage::new(&bytes[..]);
        for i in 0..n {
            assert_eq!(p.record(i), Some(&i.to_le_bytes()[..]));
        }
    }

    #[test]
    fn finish_seals_a_verifiable_page() {
        let mut b = SlottedPageBuilder::new();
        b.insert(b"payload").unwrap();
        let bytes = b.finish();
        assert!(verify_page(&bytes));
        // Any single-byte flip in the payload breaks verification.
        let mut broken = *bytes;
        broken[100] ^= 0x01;
        assert!(!verify_page(&broken));
        // A flip in the trailer itself is also caught.
        let mut broken = *bytes;
        broken[PAGE_SIZE - 1] ^= 0x80;
        assert!(!verify_page(&broken));
    }

    #[test]
    fn corrupt_slot_directory_reads_as_none() {
        let mut b = SlottedPageBuilder::new();
        b.insert(b"hello").unwrap();
        let mut bytes = *b.finish();
        // Point the slot at the CRC trailer.
        bytes[HEADER..HEADER + 2].copy_from_slice(&(PAGE_PAYLOAD as u16).to_le_bytes());
        let p = SlottedPage::new(&bytes[..]);
        assert_eq!(p.record(0), None);
        // Length running past the payload end is rejected too.
        let mut bytes2 = bytes;
        bytes2[HEADER..HEADER + 2].copy_from_slice(&100u16.to_le_bytes());
        bytes2[HEADER + 2..HEADER + 4].copy_from_slice(&u16::MAX.to_le_bytes());
        let p = SlottedPage::new(&bytes2[..]);
        assert_eq!(p.record(0), None);
    }
}
