//! Fixed-size slotted pages.
//!
//! The disk store keeps variable-length string records (text content,
//! attribute values, the name dictionary) in slotted pages: a slot
//! directory grows from the front of the page, record bodies grow from the
//! back. Node records are fixed-size and addressed arithmetically, so they
//! bypass the slot directory (see [`crate::diskstore`]).

/// Size of every page in the store file.
pub const PAGE_SIZE: usize = 8192;

/// Page header: number of slots (u16) + free-space offset (u16).
const HEADER: usize = 4;
/// Per-slot directory entry: offset (u16) + length (u16).
const SLOT: usize = 4;

/// A slotted page under construction (build phase only).
pub struct SlottedPageBuilder {
    data: Box<[u8; PAGE_SIZE]>,
    nslots: u16,
    /// First byte used by record bodies (they grow downward from the end).
    body_start: usize,
}

impl Default for SlottedPageBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPageBuilder {
    /// Fresh empty page.
    pub fn new() -> SlottedPageBuilder {
        SlottedPageBuilder {
            data: Box::new([0u8; PAGE_SIZE]),
            nslots: 0,
            body_start: PAGE_SIZE,
        }
    }

    /// Free bytes available for one more record (including its slot entry).
    pub fn free(&self) -> usize {
        self.body_start - (HEADER + self.nslots as usize * SLOT)
    }

    /// Largest record body this page can still take.
    pub fn capacity_for_record(&self) -> usize {
        self.free().saturating_sub(SLOT)
    }

    /// Largest record body an *empty* page can take.
    pub fn max_record() -> usize {
        PAGE_SIZE - HEADER - SLOT
    }

    /// Append a record; returns its slot number, or `None` if it does not fit.
    pub fn insert(&mut self, body: &[u8]) -> Option<u16> {
        if body.len() > self.capacity_for_record() {
            return None;
        }
        let off = self.body_start - body.len();
        self.data[off..off + body.len()].copy_from_slice(body);
        let slot = self.nslots;
        let dir = HEADER + slot as usize * SLOT;
        self.data[dir..dir + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.data[dir + 2..dir + 4].copy_from_slice(&(body.len() as u16).to_le_bytes());
        self.nslots += 1;
        self.body_start = off;
        Some(slot)
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> u16 {
        self.nslots
    }

    /// Finalise into raw page bytes.
    pub fn finish(mut self) -> Box<[u8; PAGE_SIZE]> {
        self.data[0..2].copy_from_slice(&self.nslots.to_le_bytes());
        self.data[2..4].copy_from_slice(&(self.body_start as u16).to_le_bytes());
        self.data
    }
}

/// Read access to a finished slotted page.
pub struct SlottedPage<'a> {
    data: &'a [u8],
}

impl<'a> SlottedPage<'a> {
    /// Interpret `data` (must be `PAGE_SIZE` bytes) as a slotted page.
    pub fn new(data: &'a [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    /// Body of record `slot`, or `None` for an out-of-range slot.
    pub fn record(&self, slot: u16) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let dir = HEADER + slot as usize * SLOT;
        let off = u16::from_le_bytes([self.data[dir], self.data[dir + 1]]) as usize;
        let len = u16::from_le_bytes([self.data[dir + 2], self.data[dir + 3]]) as usize;
        self.data.get(off..off + len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut b = SlottedPageBuilder::new();
        let s0 = b.insert(b"hello").unwrap();
        let s1 = b.insert(b"").unwrap();
        let s2 = b.insert(&[7u8; 100]).unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        let bytes = b.finish();
        let p = SlottedPage::new(&bytes[..]);
        assert_eq!(p.slot_count(), 3);
        assert_eq!(p.record(0), Some(&b"hello"[..]));
        assert_eq!(p.record(1), Some(&b""[..]));
        assert_eq!(p.record(2), Some(&[7u8; 100][..]));
        assert_eq!(p.record(3), None);
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut b = SlottedPageBuilder::new();
        let max = SlottedPageBuilder::max_record();
        assert!(b.insert(&vec![1u8; max + 1]).is_none());
        assert!(b.insert(&vec![1u8; max]).is_some());
        assert!(b.insert(b"x").is_none(), "page is full");
    }

    #[test]
    fn many_small_records() {
        let mut b = SlottedPageBuilder::new();
        let mut n = 0u16;
        while b.insert(&n.to_le_bytes()).is_some() {
            n += 1;
        }
        // (PAGE_SIZE - HEADER) / (SLOT + 2) records of two bytes each.
        assert_eq!(n as usize, (PAGE_SIZE - HEADER) / (SLOT + 2));
        let bytes = b.finish();
        let p = SlottedPage::new(&bytes[..]);
        for i in 0..n {
            assert_eq!(p.record(i), Some(&i.to_le_bytes()[..]));
        }
    }
}
