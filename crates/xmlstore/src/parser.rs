//! A from-scratch, non-validating XML 1.0 parser feeding the
//! [`ArenaBuilder`](crate::arena::ArenaBuilder).
//!
//! Supported: elements, attributes (single/double quoted), character data,
//! CDATA sections, comments, processing instructions, the XML declaration,
//! DOCTYPE declarations (skipped, including internal subsets), the five
//! predefined entities and decimal/hex character references. Namespaces are
//! not expanded: qualified names are kept verbatim, matching the paper's
//! namespace-free evaluation documents.

use std::fmt;

use crate::arena::{ArenaBuilder, ArenaStore};

/// Bounds on document shape enforced during parsing (DESIGN.md §13).
///
/// A parser fed hostile input must fail with a typed [`XmlError`], never
/// exhaust a resource: the element stack is bounded so a
/// 100 000-element-deep document cannot drive later recursive consumers
/// (string-value collection, serialisation) into stack overflow, and
/// name/attribute/entity counts are bounded so a tiny input cannot demand
/// outsized memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Maximum byte length of an element/attribute/PI name.
    pub max_name_len: usize,
    /// Maximum number of attributes on one element.
    pub max_attrs: usize,
    /// Maximum number of entity/character references in the document.
    pub max_entity_expansions: u64,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            // Deep enough for any realistic document, shallow enough that
            // the recursive consumers of the tree stay far from the
            // thread stack limit.
            max_depth: 4096,
            max_name_len: 1024,
            max_attrs: 512,
            max_entity_expansions: 1_000_000,
        }
    }
}

impl ParseLimits {
    /// Effectively unbounded limits (differential tests).
    pub fn unbounded() -> ParseLimits {
        ParseLimits {
            max_depth: usize::MAX,
            max_name_len: usize::MAX,
            max_attrs: usize::MAX,
            max_entity_expansions: u64::MAX,
        }
    }
}

/// Position-annotated XML parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub column: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Cursor<'a> {
        Cursor { input: input.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError { message: msg.into(), line: self.line, column: self.col })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.bump_n(s.len());
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Consume until `pat` (exclusive), returning the consumed slice.
    fn take_until(&mut self, pat: &str) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while !self.at_end() {
            if self.starts_with(pat) {
                let s = &self.input[start..self.pos];
                return std::str::from_utf8(s).map_err(|_| XmlError {
                    message: "invalid UTF-8".into(),
                    line: self.line,
                    column: self.col,
                });
            }
            self.bump();
        }
        self.err(format!("unexpected end of input looking for `{pat}`"))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.bump();
            }
            _ => return self.err("expected a name"),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| XmlError {
            message: "name is not valid UTF-8".into(),
            line: self.line,
            column: self.col,
        })
    }

    fn name_limited(&mut self, limits: &ParseLimits) -> Result<&'a str, XmlError> {
        let name = self.name()?;
        if name.len() > limits.max_name_len {
            return Err(XmlError {
                message: format!(
                    "name of {} bytes exceeds the {}-byte limit",
                    name.len(),
                    limits.max_name_len
                ),
                line: self.line,
                column: self.col,
            });
        }
        Ok(name)
    }
}

fn decode_entities(
    raw: &str,
    cur: &Cursor<'_>,
    limits: &ParseLimits,
    expansions: &mut u64,
) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        *expansions += 1;
        if *expansions > limits.max_entity_expansions {
            return Err(XmlError {
                message: format!(
                    "more than {} entity references in the document",
                    limits.max_entity_expansions
                ),
                line: cur.line,
                column: cur.col,
            });
        }
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or_else(|| XmlError {
            message: "unterminated entity reference".into(),
            line: cur.line,
            column: cur.col,
        })?;
        let ent = &rest[1..semi];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16).map_err(|_| XmlError {
                    message: format!("bad character reference `&{ent};`"),
                    line: cur.line,
                    column: cur.col,
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| XmlError {
                    message: format!("invalid code point in `&{ent};`"),
                    line: cur.line,
                    column: cur.col,
                })?);
            }
            _ if ent.starts_with('#') => {
                let cp: u32 = ent[1..].parse().map_err(|_| XmlError {
                    message: format!("bad character reference `&{ent};`"),
                    line: cur.line,
                    column: cur.col,
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| XmlError {
                    message: format!("invalid code point in `&{ent};`"),
                    line: cur.line,
                    column: cur.col,
                })?);
            }
            _ => {
                return Err(XmlError {
                    message: format!("unknown entity `&{ent};`"),
                    line: cur.line,
                    column: cur.col,
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parse an XML document string into an in-memory [`ArenaStore`] with
/// default [`ParseLimits`].
pub fn parse_document(input: &str) -> Result<ArenaStore, XmlError> {
    parse_document_with_limits(input, &ParseLimits::default())
}

/// [`parse_document`] with explicit bounds on document shape. Exceeding a
/// bound is a typed [`XmlError`], not a panic or a stack overflow (the
/// parser itself is iterative; the depth bound protects the recursive
/// consumers of the resulting tree).
pub fn parse_document_with_limits(
    input: &str,
    limits: &ParseLimits,
) -> Result<ArenaStore, XmlError> {
    let mut cur = Cursor::new(input);
    let mut builder = ArenaBuilder::new();
    let mut open: Vec<String> = Vec::new();
    let mut seen_root = false;
    let mut expansions = 0u64;

    // Prolog: XML declaration, misc, DOCTYPE.
    cur.skip_ws();
    if cur.starts_with("<?xml") {
        cur.take_until("?>")?;
        cur.expect("?>")?;
    }

    loop {
        if open.is_empty() {
            cur.skip_ws();
        }
        if cur.at_end() {
            break;
        }
        if cur.starts_with("<!--") {
            cur.bump_n(4);
            let content = cur.take_until("-->")?.to_owned();
            cur.expect("-->")?;
            if !open.is_empty() {
                builder.comment(&content);
            }
            continue;
        }
        if cur.starts_with("<![CDATA[") {
            if open.is_empty() {
                return cur.err("CDATA outside the root element");
            }
            cur.bump_n(9);
            let content = cur.take_until("]]>")?.to_owned();
            cur.expect("]]>")?;
            builder.text(&content);
            continue;
        }
        if cur.starts_with("<!DOCTYPE") {
            if !open.is_empty() {
                return cur.err("DOCTYPE inside content");
            }
            cur.bump_n(9);
            // Skip to the closing '>' at bracket depth 0, honouring an
            // internal subset in [...].
            let mut brackets = 0i32;
            loop {
                match cur.bump() {
                    Some(b'[') => brackets += 1,
                    Some(b']') => brackets -= 1,
                    Some(b'>') if brackets == 0 => break,
                    Some(_) => {}
                    None => return cur.err("unterminated DOCTYPE"),
                }
            }
            continue;
        }
        if cur.starts_with("<?") {
            cur.bump_n(2);
            let target = cur.name_limited(limits)?.to_owned();
            let body = cur.take_until("?>")?.trim_start().to_owned();
            cur.expect("?>")?;
            if !open.is_empty() {
                builder.processing_instruction(&target, &body);
            }
            continue;
        }
        if cur.starts_with("</") {
            cur.bump_n(2);
            let name = cur.name_limited(limits)?.to_owned();
            cur.skip_ws();
            cur.expect(">")?;
            match open.pop() {
                None => return cur.err(format!("unexpected closing tag </{name}>")),
                Some(o) if o != name => {
                    return cur.err(format!("mismatched closing tag </{name}>, expected </{o}>"))
                }
                Some(_) => {}
            }
            builder.end_element();
            continue;
        }
        if cur.starts_with("<") {
            cur.bump();
            if open.is_empty() && seen_root {
                return cur.err("multiple root elements");
            }
            let name = cur.name_limited(limits)?.to_owned();
            if open.len() >= limits.max_depth {
                return cur.err(format!(
                    "element nesting deeper than the {}-level limit",
                    limits.max_depth
                ));
            }
            builder.start_element(&name);
            if open.is_empty() {
                seen_root = true;
            }
            open.push(name);
            // Attributes.
            let mut attr_count = 0usize;
            loop {
                cur.skip_ws();
                match cur.peek() {
                    Some(b'>') => {
                        cur.bump();
                        break;
                    }
                    Some(b'/') => {
                        cur.bump();
                        cur.expect(">")?;
                        builder.end_element();
                        open.pop();
                        break;
                    }
                    Some(b) if Cursor::is_name_start(b) => {
                        attr_count += 1;
                        if attr_count > limits.max_attrs {
                            return cur.err(format!(
                                "more than {} attributes on one element",
                                limits.max_attrs
                            ));
                        }
                        let aname = cur.name_limited(limits)?.to_owned();
                        cur.skip_ws();
                        cur.expect("=")?;
                        cur.skip_ws();
                        let quote = match cur.bump() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return cur.err("expected quoted attribute value"),
                        };
                        let raw =
                            cur.take_until(if quote == b'"' { "\"" } else { "'" })?.to_owned();
                        cur.bump(); // closing quote
                        let value = decode_entities(&raw, &cur, limits, &mut expansions)?;
                        builder.attribute(&aname, &value);
                    }
                    _ => return cur.err("malformed start tag"),
                }
            }
            continue;
        }
        // Character data.
        if open.is_empty() {
            return cur.err("character data outside the root element");
        }
        let start = cur.pos;
        while !cur.at_end() && cur.peek() != Some(b'<') {
            cur.bump();
        }
        let raw = std::str::from_utf8(&cur.input[start..cur.pos]).map_err(|_| XmlError {
            message: "invalid UTF-8".into(),
            line: cur.line,
            column: cur.col,
        })?;
        let text = decode_entities(raw, &cur, limits, &mut expansions)?;
        builder.text(&text);
    }

    if !open.is_empty() {
        return cur.err("unexpected end of input: unclosed element");
    }
    if !seen_root {
        return cur.err("no root element");
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use crate::store::XmlStore;

    #[test]
    fn basic_document() {
        let s = parse_document("<a x='1'><b>hi</b><c/></a>").unwrap();
        let a = s.first_child(s.root()).unwrap();
        assert_eq!(s.node_name(a), "a");
        assert_eq!(s.attribute_value(a, "x").as_deref(), Some("1"));
        let b = s.first_child(a).unwrap();
        assert_eq!(s.string_value(b), "hi");
        let c = s.next_sibling(b).unwrap();
        assert_eq!(s.node_name(c), "c");
        assert_eq!(s.first_child(c), None);
    }

    #[test]
    fn declaration_doctype_comments_pis() {
        let doc = r#"<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE dblp SYSTEM "dblp.dtd" [ <!ENTITY x "y"> ]>
<!-- leading comment -->
<r><?target data?><!-- inner --><x/></r>"#;
        let s = parse_document(doc).unwrap();
        let r = s.first_child(s.root()).unwrap();
        let pi = s.first_child(r).unwrap();
        assert_eq!(s.kind(pi), NodeKind::ProcessingInstruction);
        assert_eq!(s.node_name(pi), "target");
        assert_eq!(s.value(pi).as_deref(), Some("data"));
        let comment = s.next_sibling(pi).unwrap();
        assert_eq!(s.kind(comment), NodeKind::Comment);
        assert_eq!(s.value(comment).as_deref(), Some(" inner "));
    }

    #[test]
    fn entities_and_char_refs() {
        let s = parse_document("<a t='&lt;&#65;&#x42;&gt;'>&amp;&apos;&quot;</a>").unwrap();
        let a = s.first_child(s.root()).unwrap();
        assert_eq!(s.attribute_value(a, "t").as_deref(), Some("<AB>"));
        assert_eq!(s.string_value(a), "&'\"");
    }

    #[test]
    fn cdata() {
        let s = parse_document("<a><![CDATA[<not-a-tag> & raw]]></a>").unwrap();
        let a = s.first_child(s.root()).unwrap();
        assert_eq!(s.string_value(a), "<not-a-tag> & raw");
    }

    #[test]
    fn errors_positioned() {
        let err = parse_document("<a>\n  <b>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unclosed") || err.message.contains("end of input"));
        assert!(parse_document("").is_err());
        assert!(parse_document("<a></b>").is_err());
        assert!(parse_document("<a/><b/>").is_err());
        assert!(parse_document("text only").is_err());
        assert!(parse_document("<a x=1/>").is_err());
        assert!(parse_document("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn mixed_content_order() {
        let s = parse_document("<a>one<b/>two<c/>three</a>").unwrap();
        let a = s.first_child(s.root()).unwrap();
        let kinds: Vec<NodeKind> = {
            let mut v = Vec::new();
            let mut c = s.first_child(a);
            while let Some(n) = c {
                v.push(s.kind(n));
                c = s.next_sibling(n);
            }
            v
        };
        assert_eq!(
            kinds,
            [
                NodeKind::Text,
                NodeKind::Element,
                NodeKind::Text,
                NodeKind::Element,
                NodeKind::Text
            ]
        );
        assert_eq!(s.string_value(a), "onetwothree");
    }

    #[test]
    fn depth_limit_is_a_typed_error() {
        let limits = ParseLimits { max_depth: 8, ..ParseLimits::default() };
        let ok = format!("{}x{}", "<a>".repeat(8), "</a>".repeat(8));
        assert!(parse_document_with_limits(&ok, &limits).is_ok());
        let deep = format!("{}x{}", "<a>".repeat(9), "</a>".repeat(9));
        let err = parse_document_with_limits(&deep, &limits).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
    }

    #[test]
    fn name_length_limit() {
        let limits = ParseLimits { max_name_len: 4, ..ParseLimits::default() };
        assert!(parse_document_with_limits("<abcd/>", &limits).is_ok());
        let err = parse_document_with_limits("<abcde/>", &limits).unwrap_err();
        assert!(err.message.contains("byte limit"), "{err}");
        let err = parse_document_with_limits("<a toolong='v'/>", &limits).unwrap_err();
        assert!(err.message.contains("byte limit"), "{err}");
    }

    #[test]
    fn attribute_count_limit() {
        let limits = ParseLimits { max_attrs: 2, ..ParseLimits::default() };
        assert!(parse_document_with_limits("<a x='1' y='2'/>", &limits).is_ok());
        let err = parse_document_with_limits("<a x='1' y='2' z='3'/>", &limits).unwrap_err();
        assert!(err.message.contains("attributes"), "{err}");
    }

    #[test]
    fn entity_expansion_limit() {
        let limits = ParseLimits { max_entity_expansions: 3, ..ParseLimits::default() };
        assert!(parse_document_with_limits("<a>&amp;&lt;&gt;</a>", &limits).is_ok());
        let err = parse_document_with_limits("<a>&amp;&lt;&gt;&amp;</a>", &limits).unwrap_err();
        assert!(err.message.contains("entity references"), "{err}");
    }

    #[test]
    fn whitespace_only_text_preserved() {
        // XPath keeps whitespace-only text nodes (no stripping here).
        let s = parse_document("<a> <b/> </a>").unwrap();
        let a = s.first_child(s.root()).unwrap();
        assert_eq!(s.kind(s.first_child(a).unwrap()), NodeKind::Text);
        assert_eq!(s.string_value(a), "  ");
    }
}
