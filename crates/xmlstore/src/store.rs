//! The [`XmlStore`] trait: the narrow navigation interface both query
//! engines evaluate against.
//!
//! This mirrors the role of the Natix page-buffer navigation primitives
//! (paper §5.2.2): location steps and node tests are resolved directly
//! against the stored representation — no separate main-memory DOM is built.

use crate::buffer::BufferStats;
use crate::error::StorageFault;
use crate::index::StructuralIndex;
use crate::node::{NameId, NodeId, NodeKind};

/// What a content-index key addresses: attribute values or the text
/// content of leaf-ish elements (see [`XmlStore::content_probe`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentKind {
    /// `name` is an attribute name; postings are the owning elements of
    /// attributes whose value equals the probe value.
    Attribute,
    /// `name` is an element name; postings are elements with that name,
    /// no element children, and a string-value equal to the probe value.
    Element,
}

/// Read interface over one stored XML document.
///
/// Implemented by [`ArenaStore`](crate::arena::ArenaStore) (main memory) and
/// [`DiskStore`](crate::diskstore::DiskStore) (slotted pages behind a buffer
/// manager). All navigation used by the physical algebra goes through this
/// trait, so plans are storage-agnostic.
///
/// `Sync` is a supertrait: the Exchange operator shares one store across
/// its worker threads. Both implementations already qualify — the arena
/// is immutable after build, and the disk store's buffer manager and
/// fault latch are lock-protected.
pub trait XmlStore: Sync {
    /// The document node (always [`NodeId::DOCUMENT`]).
    fn root(&self) -> NodeId {
        NodeId::DOCUMENT
    }

    /// Total number of nodes (including the document node and attributes).
    fn node_count(&self) -> usize;

    /// Kind of `n`.
    fn kind(&self, n: NodeId) -> NodeKind;

    /// Interned name of `n` (elements, attributes, PI targets).
    fn name(&self, n: NodeId) -> Option<NameId>;

    /// Textual content of `n` (text, comment, attribute, PI payload).
    /// `None` for elements and the document node.
    fn value(&self, n: NodeId) -> Option<String>;

    /// Parent node. Attributes report their owning element as parent even
    /// though they are not on its child axis.
    fn parent(&self, n: NodeId) -> Option<NodeId>;

    /// First node on the child axis (attributes excluded).
    fn first_child(&self, n: NodeId) -> Option<NodeId>;

    /// Last node on the child axis.
    fn last_child(&self, n: NodeId) -> Option<NodeId>;

    /// Next sibling on the child axis (or within the attribute list, for
    /// attribute nodes).
    fn next_sibling(&self, n: NodeId) -> Option<NodeId>;

    /// Previous sibling (see [`XmlStore::next_sibling`]).
    fn prev_sibling(&self, n: NodeId) -> Option<NodeId>;

    /// First attribute of an element, if any.
    fn first_attribute(&self, n: NodeId) -> Option<NodeId>;

    /// Document-order rank of `n`. Ranks totally order all nodes of the
    /// document; attributes rank after their element and before its children.
    fn order(&self, n: NodeId) -> u64;

    /// Resolve a textual name to its interned id, if the name occurs in the
    /// document at all. Name tests against unknown names match nothing.
    fn intern_lookup(&self, name: &str) -> Option<NameId>;

    /// Resolve an interned name back to text.
    fn name_text(&self, id: NameId) -> String;

    /// The element whose `id` attribute (DTD-less approximation of an ID
    /// attribute, as in the paper's generated documents) equals `idval`.
    fn element_by_id(&self, idval: &str) -> Option<NodeId>;

    /// XPath string-value of `n`: concatenated descendant text for elements
    /// and the document node, the content otherwise.
    fn string_value(&self, n: NodeId) -> String {
        match self.kind(n) {
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(n, &mut out);
                out
            }
            _ => self.value(n).unwrap_or_default(),
        }
    }

    /// Append the concatenated text content of the subtree rooted at `n`.
    fn collect_text(&self, n: NodeId, out: &mut String) {
        let mut child = self.first_child(n);
        while let Some(c) = child {
            match self.kind(c) {
                NodeKind::Text => {
                    if let Some(v) = self.value(c) {
                        out.push_str(&v);
                    }
                }
                NodeKind::Element => self.collect_text(c, out),
                _ => {}
            }
            child = self.next_sibling(c);
        }
    }

    /// Name of `n` as text ("" if unnamed), i.e. the XPath `name()` result.
    fn node_name(&self, n: NodeId) -> String {
        self.name(n).map(|id| self.name_text(id)).unwrap_or_default()
    }

    /// Attribute of element `n` with the given interned name.
    fn attribute_named(&self, n: NodeId, name: NameId) -> Option<NodeId> {
        let mut a = self.first_attribute(n);
        while let Some(att) = a {
            if self.name(att) == Some(name) {
                return Some(att);
            }
            a = self.next_sibling(att);
        }
        None
    }

    /// Convenience: attribute string value by textual name.
    fn attribute_value(&self, n: NodeId, name: &str) -> Option<String> {
        let id = self.intern_lookup(name)?;
        self.attribute_named(n, id).and_then(|a| self.value(a))
    }

    /// The structural interval index over this document, if the store
    /// maintains one (see [`StructuralIndex`]). `None` means consumers
    /// must navigate with cursors and `order()` lookups.
    fn structural_index(&self) -> Option<&StructuralIndex> {
        None
    }

    /// Equality probe against a persistent content index, if the store
    /// maintains one (only [`DiskStore`](crate::diskstore::DiskStore)
    /// does). Returns the matching postings as `(document-order rank,
    /// node)` pairs sorted ascending by rank:
    ///
    /// * [`ContentKind::Attribute`] — owning elements of attributes named
    ///   `name` whose value equals `value` exactly;
    /// * [`ContentKind::Element`] — elements named `name` with no element
    ///   children whose string-value equals `value` exactly.
    ///
    /// `None` means the key is not covered (no index, an uncovered
    /// element name, or an over-length value) and the caller must fall back
    /// to a scan. `Some(vec![])` is a definitive miss.
    fn content_probe(
        &self,
        kind: ContentKind,
        name: &str,
        value: &str,
    ) -> Option<Vec<(u32, NodeId)>> {
        let _ = (kind, name, value);
        None
    }

    /// True if `a` strictly precedes `b` in document order. O(1) on
    /// indexed stores.
    fn doc_lt(&self, a: NodeId, b: NodeId) -> bool {
        if let Some(lt) = self.structural_index().and_then(|idx| idx.doc_lt(a, b)) {
            return lt;
        }
        self.order(a) < self.order(b)
    }

    /// True if `anc` is an ancestor of `n` (proper; `n` itself excluded).
    /// An interval containment check on indexed stores, a parent-chain
    /// walk otherwise.
    fn is_ancestor(&self, anc: NodeId, n: NodeId) -> bool {
        if let Some(contained) = self.structural_index().and_then(|idx| idx.is_ancestor(anc, n)) {
            return contained;
        }
        let mut cur = self.parent(n);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// True once the store has recorded a storage fault (I/O failure or
    /// detected corruption) while serving navigation. Cheap; executors
    /// poll it in their tuple loops the way they poll the governor.
    fn storage_tripped(&self) -> bool {
        false
    }

    /// Drain the recorded storage fault, if any. After a drain the store
    /// reports untripped again (a reopened query starts clean).
    fn take_storage_fault(&self) -> Option<StorageFault> {
        None
    }

    /// Buffer-manager statistics for stores that read through one
    /// (page hits/misses/evictions, checksum verification counters).
    /// `None` for main-memory stores.
    fn buffer_stats(&self) -> Option<BufferStats> {
        None
    }

    /// Number of element nodes (used by generators/tests).
    fn element_count(&self) -> usize {
        (0..self.node_count() as u32)
            .filter(|&i| self.kind(NodeId(i)) == NodeKind::Element)
            .count()
    }
}

/// Delegating wrapper that hides the inner store's structural index.
///
/// Benchmarks and differential tests wrap an indexed store in `NoIndex`
/// to exercise the cursor/hash/comparator fallback paths against the
/// very same document in the same process.
pub struct NoIndex<'a>(pub &'a dyn XmlStore);

impl XmlStore for NoIndex<'_> {
    fn root(&self) -> NodeId {
        self.0.root()
    }

    fn node_count(&self) -> usize {
        self.0.node_count()
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        self.0.kind(n)
    }

    fn name(&self, n: NodeId) -> Option<NameId> {
        self.0.name(n)
    }

    fn value(&self, n: NodeId) -> Option<String> {
        self.0.value(n)
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.0.parent(n)
    }

    fn first_child(&self, n: NodeId) -> Option<NodeId> {
        self.0.first_child(n)
    }

    fn last_child(&self, n: NodeId) -> Option<NodeId> {
        self.0.last_child(n)
    }

    fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.0.next_sibling(n)
    }

    fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.0.prev_sibling(n)
    }

    fn first_attribute(&self, n: NodeId) -> Option<NodeId> {
        self.0.first_attribute(n)
    }

    fn order(&self, n: NodeId) -> u64 {
        self.0.order(n)
    }

    fn intern_lookup(&self, name: &str) -> Option<NameId> {
        self.0.intern_lookup(name)
    }

    fn name_text(&self, id: NameId) -> String {
        self.0.name_text(id)
    }

    fn element_by_id(&self, idval: &str) -> Option<NodeId> {
        self.0.element_by_id(idval)
    }

    fn storage_tripped(&self) -> bool {
        self.0.storage_tripped()
    }

    fn take_storage_fault(&self) -> Option<StorageFault> {
        self.0.take_storage_fault()
    }

    fn buffer_stats(&self) -> Option<BufferStats> {
        self.0.buffer_stats()
    }
}

#[cfg(test)]
mod tests {
    use crate::arena::ArenaBuilder;
    use crate::store::{NoIndex, XmlStore};

    #[test]
    fn string_value_concatenates_descendant_text() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.text("x");
        b.start_element("b");
        b.text("y");
        b.end_element();
        b.text("z");
        b.end_element();
        let store = b.finish();
        assert_eq!(store.string_value(store.root()), "xyz");
    }

    #[test]
    fn attribute_value_lookup() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.attribute("id", "7");
        b.attribute("k", "v");
        b.end_element();
        let store = b.finish();
        let a = store.first_child(store.root()).unwrap();
        assert_eq!(store.attribute_value(a, "k").as_deref(), Some("v"));
        assert_eq!(store.attribute_value(a, "id").as_deref(), Some("7"));
        assert_eq!(store.attribute_value(a, "missing"), None);
    }

    #[test]
    fn is_ancestor_excludes_self() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.end_element();
        b.end_element();
        let store = b.finish();
        let a = store.first_child(store.root()).unwrap();
        let bn = store.first_child(a).unwrap();
        assert!(store.is_ancestor(a, bn));
        assert!(store.is_ancestor(store.root(), bn));
        assert!(!store.is_ancestor(a, a));
        assert!(!store.is_ancestor(bn, a));
    }

    #[test]
    fn no_index_wrapper_hides_the_index_but_agrees_on_semantics() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.end_element();
        b.end_element();
        let store = b.finish();
        assert!(store.structural_index().is_some());
        let plain = NoIndex(&store);
        assert!(plain.structural_index().is_none());
        let a = store.first_child(store.root()).unwrap();
        let bn = store.first_child(a).unwrap();
        assert_eq!(plain.is_ancestor(a, bn), store.is_ancestor(a, bn));
        assert_eq!(plain.doc_lt(a, bn), store.doc_lt(a, bn));
        assert_eq!(plain.order(bn), store.order(bn));
        assert_eq!(plain.node_name(a), store.node_name(a));
    }
}
