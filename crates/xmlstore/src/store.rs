//! The [`XmlStore`] trait: the narrow navigation interface both query
//! engines evaluate against.
//!
//! This mirrors the role of the Natix page-buffer navigation primitives
//! (paper §5.2.2): location steps and node tests are resolved directly
//! against the stored representation — no separate main-memory DOM is built.

use crate::node::{NameId, NodeId, NodeKind};

/// Read interface over one stored XML document.
///
/// Implemented by [`ArenaStore`](crate::arena::ArenaStore) (main memory) and
/// [`DiskStore`](crate::diskstore::DiskStore) (slotted pages behind a buffer
/// manager). All navigation used by the physical algebra goes through this
/// trait, so plans are storage-agnostic.
pub trait XmlStore {
    /// The document node (always [`NodeId::DOCUMENT`]).
    fn root(&self) -> NodeId {
        NodeId::DOCUMENT
    }

    /// Total number of nodes (including the document node and attributes).
    fn node_count(&self) -> usize;

    /// Kind of `n`.
    fn kind(&self, n: NodeId) -> NodeKind;

    /// Interned name of `n` (elements, attributes, PI targets).
    fn name(&self, n: NodeId) -> Option<NameId>;

    /// Textual content of `n` (text, comment, attribute, PI payload).
    /// `None` for elements and the document node.
    fn value(&self, n: NodeId) -> Option<String>;

    /// Parent node. Attributes report their owning element as parent even
    /// though they are not on its child axis.
    fn parent(&self, n: NodeId) -> Option<NodeId>;

    /// First node on the child axis (attributes excluded).
    fn first_child(&self, n: NodeId) -> Option<NodeId>;

    /// Last node on the child axis.
    fn last_child(&self, n: NodeId) -> Option<NodeId>;

    /// Next sibling on the child axis (or within the attribute list, for
    /// attribute nodes).
    fn next_sibling(&self, n: NodeId) -> Option<NodeId>;

    /// Previous sibling (see [`XmlStore::next_sibling`]).
    fn prev_sibling(&self, n: NodeId) -> Option<NodeId>;

    /// First attribute of an element, if any.
    fn first_attribute(&self, n: NodeId) -> Option<NodeId>;

    /// Document-order rank of `n`. Ranks totally order all nodes of the
    /// document; attributes rank after their element and before its children.
    fn order(&self, n: NodeId) -> u64;

    /// Resolve a textual name to its interned id, if the name occurs in the
    /// document at all. Name tests against unknown names match nothing.
    fn intern_lookup(&self, name: &str) -> Option<NameId>;

    /// Resolve an interned name back to text.
    fn name_text(&self, id: NameId) -> String;

    /// The element whose `id` attribute (DTD-less approximation of an ID
    /// attribute, as in the paper's generated documents) equals `idval`.
    fn element_by_id(&self, idval: &str) -> Option<NodeId>;

    /// XPath string-value of `n`: concatenated descendant text for elements
    /// and the document node, the content otherwise.
    fn string_value(&self, n: NodeId) -> String {
        match self.kind(n) {
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(n, &mut out);
                out
            }
            _ => self.value(n).unwrap_or_default(),
        }
    }

    /// Append the concatenated text content of the subtree rooted at `n`.
    fn collect_text(&self, n: NodeId, out: &mut String) {
        let mut child = self.first_child(n);
        while let Some(c) = child {
            match self.kind(c) {
                NodeKind::Text => {
                    if let Some(v) = self.value(c) {
                        out.push_str(&v);
                    }
                }
                NodeKind::Element => self.collect_text(c, out),
                _ => {}
            }
            child = self.next_sibling(c);
        }
    }

    /// Name of `n` as text ("" if unnamed), i.e. the XPath `name()` result.
    fn node_name(&self, n: NodeId) -> String {
        self.name(n).map(|id| self.name_text(id)).unwrap_or_default()
    }

    /// Attribute of element `n` with the given interned name.
    fn attribute_named(&self, n: NodeId, name: NameId) -> Option<NodeId> {
        let mut a = self.first_attribute(n);
        while let Some(att) = a {
            if self.name(att) == Some(name) {
                return Some(att);
            }
            a = self.next_sibling(att);
        }
        None
    }

    /// Convenience: attribute string value by textual name.
    fn attribute_value(&self, n: NodeId, name: &str) -> Option<String> {
        let id = self.intern_lookup(name)?;
        self.attribute_named(n, id).and_then(|a| self.value(a))
    }

    /// True if `a` strictly precedes `b` in document order.
    fn doc_lt(&self, a: NodeId, b: NodeId) -> bool {
        self.order(a) < self.order(b)
    }

    /// True if `anc` is an ancestor of `n` (proper; `n` itself excluded).
    fn is_ancestor(&self, anc: NodeId, n: NodeId) -> bool {
        let mut cur = self.parent(n);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Number of element nodes (used by generators/tests).
    fn element_count(&self) -> usize {
        (0..self.node_count() as u32)
            .filter(|&i| self.kind(NodeId(i)) == NodeKind::Element)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use crate::arena::ArenaBuilder;
    use crate::store::XmlStore;

    #[test]
    fn string_value_concatenates_descendant_text() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.text("x");
        b.start_element("b");
        b.text("y");
        b.end_element();
        b.text("z");
        b.end_element();
        let store = b.finish();
        assert_eq!(store.string_value(store.root()), "xyz");
    }

    #[test]
    fn attribute_value_lookup() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.attribute("id", "7");
        b.attribute("k", "v");
        b.end_element();
        let store = b.finish();
        let a = store.first_child(store.root()).unwrap();
        assert_eq!(store.attribute_value(a, "k").as_deref(), Some("v"));
        assert_eq!(store.attribute_value(a, "id").as_deref(), Some("7"));
        assert_eq!(store.attribute_value(a, "missing"), None);
    }

    #[test]
    fn is_ancestor_excludes_self() {
        let mut b = ArenaBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.end_element();
        b.end_element();
        let store = b.finish();
        let a = store.first_child(store.root()).unwrap();
        let bn = store.first_child(a).unwrap();
        assert!(store.is_ancestor(a, bn));
        assert!(store.is_ancestor(store.root(), bn));
        assert!(!store.is_ancestor(a, a));
        assert!(!store.is_ancestor(bn, a));
    }
}
