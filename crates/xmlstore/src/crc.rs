//! CRC32C (Castagnoli) — the per-page integrity checksum of the store
//! file format (DESIGN.md §13).
//!
//! Table-driven software implementation, self-contained because the build
//! environment has no crates.io access. The Castagnoli polynomial is the
//! standard choice for storage checksums (iSCSI, ext4, Btrfs): it detects
//! all single-byte errors and all burst errors up to 32 bits, which is
//! exactly the torn-write / bit-flip fault model the disk store defends
//! against.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32C of `bytes` (initial value all-ones, final value inverted — the
/// conventional framing, matching hardware `crc32c` instructions).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) appendix test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let crc = crc32c(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), crc, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
