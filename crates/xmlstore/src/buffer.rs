//! Pin/unpin LRU buffer manager over a page file.
//!
//! All disk-store navigation goes through [`BufferManager::pin`]: a page is
//! read from the file on first use, kept in a bounded frame table, and
//! evicted least-recently-used when the table is full. Pinned pages (live
//! [`PageRef`]s) are never evicted. The store file is immutable after
//! build, so frames are read-only and no write-back is needed.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::PAGE_SIZE;

/// A pinned page: holding the `Arc` keeps the frame resident.
pub type PageRef = Arc<[u8; PAGE_SIZE]>;

/// Buffer statistics (observable in tests and the experiment harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Pin requests served from the frame table.
    pub hits: u64,
    /// Pin requests that required a file read.
    pub misses: u64,
    /// Frames dropped to make room.
    pub evictions: u64,
}

struct Frame {
    page: PageRef,
    last_used: u64,
}

struct Inner {
    file: File,
    frames: std::collections::HashMap<u32, Frame>,
    tick: u64,
    stats: BufferStats,
}

/// LRU page buffer over one store file.
pub struct BufferManager {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl BufferManager {
    /// Open `path` with room for `capacity` resident pages (min 1).
    pub fn open(path: &Path, capacity: usize) -> std::io::Result<BufferManager> {
        let file = File::open(path)?;
        Ok(BufferManager {
            inner: Mutex::new(Inner {
                file,
                frames: std::collections::HashMap::new(),
                tick: 0,
                stats: BufferStats::default(),
            }),
            capacity: capacity.max(1),
        })
    }

    /// Pin page `no`, reading it from disk if not resident.
    pub fn pin(&self, no: u32) -> std::io::Result<PageRef> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&no) {
            frame.last_used = tick;
            let page = frame.page.clone();
            inner.stats.hits += 1;
            return Ok(page);
        }
        inner.stats.misses += 1;
        // Evict before reading so capacity is respected even on error paths.
        while inner.frames.len() >= self.capacity {
            // Unpinned = strong count 1 (only the frame table holds it).
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| Arc::strong_count(&f.page) == 1)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    inner.frames.remove(&k);
                    inner.stats.evictions += 1;
                }
                // Everything pinned: allow temporary over-allocation.
                None => break,
            }
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        inner.file.seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))?;
        inner.file.read_exact(&mut buf[..])?;
        let page: PageRef = Arc::from(buf as Box<[u8; PAGE_SIZE]>);
        inner.frames.insert(no, Frame { page: page.clone(), last_used: tick });
        Ok(page)
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Configured frame-table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmp::TempPath;
    use std::io::Write;

    fn page_file(npages: usize) -> TempPath {
        let t = TempPath::new(".pages");
        let mut f = File::create(t.path()).unwrap();
        for i in 0..npages {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8;
            f.write_all(&page).unwrap();
        }
        f.flush().unwrap();
        t
    }

    #[test]
    fn pin_reads_correct_page() {
        let f = page_file(4);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        for i in 0..4u32 {
            let p = bm.pin(i).unwrap();
            assert_eq!(p[0], i as u8);
        }
    }

    #[test]
    fn hits_and_misses_counted() {
        let f = page_file(3);
        let bm = BufferManager::open(f.path(), 8).unwrap();
        bm.pin(0).unwrap();
        bm.pin(0).unwrap();
        bm.pin(1).unwrap();
        let s = bm.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let f = page_file(5);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        bm.pin(0).unwrap();
        bm.pin(1).unwrap();
        bm.pin(2).unwrap(); // evicts 0
        assert!(bm.resident() <= 2);
        assert!(bm.stats().evictions >= 1);
        // 0 must be re-read (a miss).
        let before = bm.stats().misses;
        bm.pin(0).unwrap();
        assert_eq!(bm.stats().misses, before + 1);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let f = page_file(6);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        let held = bm.pin(0).unwrap();
        for i in 1..6u32 {
            bm.pin(i).unwrap();
        }
        // Page 0 still resident because we hold a pin.
        let before = bm.stats().misses;
        let again = bm.pin(0).unwrap();
        assert_eq!(bm.stats().misses, before, "pinned page 0 must not be evicted");
        assert_eq!(held[0], again[0]);
    }

    #[test]
    fn out_of_range_page_errors() {
        let f = page_file(1);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        assert!(bm.pin(9).is_err());
    }
}
