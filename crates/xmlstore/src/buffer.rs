//! Pin/unpin LRU buffer manager over a page file.
//!
//! All disk-store navigation goes through [`BufferManager::pin`]: a page is
//! read from the file on first use, kept in a bounded frame table, and
//! evicted least-recently-used when the table is full. Pinned pages (live
//! [`PageRef`]s) are never evicted. The store file is immutable after
//! build, so frames are read-only and no write-back is needed.
//!
//! Integrity: when opened with [`BufferOptions::verify_checksums`] (the
//! disk store always does), every page read from disk has its CRC32C
//! trailer checked before the bytes reach any decode logic. Each frame
//! carries a **verified bit**: verification happens once per frame
//! residency, not once per pin — buffer hits on a verified frame skip
//! the CRC entirely, a frame first populated by [`BufferManager::pin_raw`]
//! is checked lazily on its first verified pin, and only eviction (which
//! drops the frame, bit and all) forces a page to be re-verified after
//! its next file read. The checks are counted in
//! [`BufferStats::pages_verified`] / [`BufferStats::checksum_failures`],
//! surfaced by EXPLAIN ANALYZE.
//!
//! All failure paths return a typed [`DiskError`] carrying the page
//! coordinate: I/O errors as [`DiskError::Io`], short reads (truncation)
//! and checksum mismatches as [`DiskError::Corrupt`]. Nothing in this
//! module panics on file contents.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::DiskError;
use crate::fault::IoFailPoint;
use crate::page::{verify_page, PAGE_SIZE};

/// A pinned page: holding the `Arc` keeps the frame resident.
pub type PageRef = Arc<[u8; PAGE_SIZE]>;

/// Buffer statistics (observable in tests, EXPLAIN ANALYZE and the
/// experiment harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Pin requests served from the frame table.
    pub hits: u64,
    /// Pin requests that required a file read.
    pub misses: u64,
    /// Frames dropped to make room.
    pub evictions: u64,
    /// CRC trailer checks performed — at most one per frame residency
    /// (pins re-using a verified frame do not re-check; a page evicted
    /// and read again is checked again).
    pub pages_verified: u64,
    /// Pages whose CRC trailer did not match (each one surfaced as a
    /// typed [`DiskError::Corrupt`]).
    pub checksum_failures: u64,
}

/// How to open a buffer manager.
#[derive(Clone, Copy, Debug, Default)]
pub struct BufferOptions {
    /// Check the CRC32C trailer of every page read from disk.
    pub verify_checksums: bool,
    /// Injected faults (test harness; `Default` injects nothing).
    pub failpoint: IoFailPoint,
}

struct Frame {
    page: PageRef,
    last_used: u64,
    /// The resident bytes passed CRC verification. Cleared only by
    /// eviction (frames are immutable); a raw-pinned frame starts
    /// unverified and is checked lazily by the first verifying pin.
    verified: bool,
}

struct Inner {
    file: File,
    frames: std::collections::HashMap<u32, Frame>,
    tick: u64,
    pins: u64,
    reads: u64,
    stats: BufferStats,
}

/// LRU page buffer over one store file.
pub struct BufferManager {
    inner: Mutex<Inner>,
    capacity: usize,
    file_pages: u64,
    options: BufferOptions,
}

impl BufferManager {
    /// Open `path` with room for `capacity` resident pages (min 1),
    /// without checksum verification (raw page files).
    pub fn open(path: &Path, capacity: usize) -> Result<BufferManager, DiskError> {
        BufferManager::open_with(path, capacity, BufferOptions::default())
    }

    /// Open `path` with explicit [`BufferOptions`].
    pub fn open_with(
        path: &Path,
        capacity: usize,
        options: BufferOptions,
    ) -> Result<BufferManager, DiskError> {
        let file = File::open(path).map_err(DiskError::io)?;
        let len = file.metadata().map_err(DiskError::io)?.len();
        Ok(BufferManager {
            inner: Mutex::new(Inner {
                file,
                frames: std::collections::HashMap::new(),
                tick: 0,
                pins: 0,
                reads: 0,
                stats: BufferStats::default(),
            }),
            capacity: capacity.max(1),
            file_pages: len / PAGE_SIZE as u64,
            options,
        })
    }

    /// Size of the underlying file in whole pages.
    pub fn file_pages(&self) -> u64 {
        self.file_pages
    }

    /// Pin page `no`, reading (and, if configured, verifying) it from
    /// disk if not resident. The per-frame verified bit makes the check
    /// once-per-residency: re-pins of a checked frame skip the CRC.
    pub fn pin(&self, no: u32) -> Result<PageRef, DiskError> {
        self.pin_inner(no, self.options.verify_checksums)
    }

    /// Pin page `no` without checksum verification even when the manager
    /// verifies by default — for tooling that inspects raw page bytes
    /// (corruption triage wants the sick bytes, not an error). The frame
    /// is left unverified, so a later [`BufferManager::pin`] of the same
    /// page CRC-checks the resident bytes exactly once.
    pub fn pin_raw(&self, no: u32) -> Result<PageRef, DiskError> {
        self.pin_inner(no, false)
    }

    fn pin_inner(&self, no: u32, verify: bool) -> Result<PageRef, DiskError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        inner.pins += 1;
        let tick = inner.tick;
        if self.options.failpoint.fail_pin_at == Some(inner.pins) {
            return Err(DiskError::io_at(IoFailPoint::injected_error(), no));
        }
        if let Some(frame) = inner.frames.get_mut(&no) {
            frame.last_used = tick;
            let page = frame.page.clone();
            let checked = frame.verified;
            inner.stats.hits += 1;
            if verify && !checked {
                // The frame was populated by a raw pin: verify the
                // resident bytes now, once, and remember the outcome.
                inner.stats.pages_verified += 1;
                if !verify_page(&page) {
                    inner.stats.checksum_failures += 1;
                    inner.frames.remove(&no);
                    return Err(DiskError::corrupt_at("page checksum mismatch", no));
                }
                if let Some(frame) = inner.frames.get_mut(&no) {
                    frame.verified = true;
                }
            }
            return Ok(page);
        }
        inner.stats.misses += 1;
        if (no as u64) >= self.file_pages {
            return Err(DiskError::corrupt_at(
                format!("page {no} beyond end of file ({} pages)", self.file_pages),
                no,
            ));
        }
        // Evict before reading so capacity is respected even on error paths.
        while inner.frames.len() >= self.capacity {
            // Unpinned = strong count 1 (only the frame table holds it).
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| Arc::strong_count(&f.page) == 1)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    inner.frames.remove(&k);
                    inner.stats.evictions += 1;
                }
                // Everything pinned: allow temporary over-allocation.
                None => break,
            }
        }
        inner.reads += 1;
        let reads = inner.reads;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        inner
            .file
            .seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))
            .map_err(|e| DiskError::io_at(e, no))?;
        let short_read = self.options.failpoint.short_read_at == Some(reads);
        let wanted = if short_read { PAGE_SIZE / 2 } else { PAGE_SIZE };
        match inner.file.read_exact(&mut buf[..wanted]) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(DiskError::corrupt_at("short read (truncated file)", no));
            }
            Err(e) => return Err(DiskError::io_at(e, no)),
        }
        if short_read {
            return Err(DiskError::corrupt_at("short read (truncated file)", no));
        }
        if let Some((fp, off)) = self.options.failpoint.flip_byte {
            if fp == no {
                buf[off as usize % PAGE_SIZE] ^= 0x01;
            }
        }
        if verify {
            inner.stats.pages_verified += 1;
            if !verify_page(&buf) {
                inner.stats.checksum_failures += 1;
                return Err(DiskError::corrupt_at("page checksum mismatch", no));
            }
        }
        let page: PageRef = Arc::from(buf as Box<[u8; PAGE_SIZE]>);
        inner
            .frames
            .insert(no, Frame { page: page.clone(), last_used: tick, verified: verify });
        Ok(page)
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Configured frame-table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{seal_page, PAGE_PAYLOAD};
    use crate::tmp::TempPath;
    use std::io::Write;

    fn page_file(npages: usize) -> TempPath {
        let t = TempPath::new(".pages");
        let mut f = File::create(t.path()).unwrap();
        for i in 0..npages {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8;
            seal_page(&mut page);
            f.write_all(&page).unwrap();
        }
        f.flush().unwrap();
        t
    }

    fn verified() -> BufferOptions {
        BufferOptions { verify_checksums: true, failpoint: IoFailPoint::none() }
    }

    #[test]
    fn pin_reads_correct_page() {
        let f = page_file(4);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        for i in 0..4u32 {
            let p = bm.pin(i).unwrap();
            assert_eq!(p[0], i as u8);
        }
    }

    #[test]
    fn hits_and_misses_counted() {
        let f = page_file(3);
        let bm = BufferManager::open(f.path(), 8).unwrap();
        bm.pin(0).unwrap();
        bm.pin(0).unwrap();
        bm.pin(1).unwrap();
        let s = bm.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let f = page_file(5);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        bm.pin(0).unwrap();
        bm.pin(1).unwrap();
        bm.pin(2).unwrap(); // evicts 0
        assert!(bm.resident() <= 2);
        assert!(bm.stats().evictions >= 1);
        // 0 must be re-read (a miss).
        let before = bm.stats().misses;
        bm.pin(0).unwrap();
        assert_eq!(bm.stats().misses, before + 1);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let f = page_file(6);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        let held = bm.pin(0).unwrap();
        for i in 1..6u32 {
            bm.pin(i).unwrap();
        }
        // Page 0 still resident because we hold a pin.
        let before = bm.stats().misses;
        let again = bm.pin(0).unwrap();
        assert_eq!(bm.stats().misses, before, "pinned page 0 must not be evicted");
        assert_eq!(held[0], again[0]);
    }

    #[test]
    fn out_of_range_page_is_typed_corruption() {
        let f = page_file(1);
        let bm = BufferManager::open(f.path(), 2).unwrap();
        let err = bm.pin(9).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt { page: Some(9), .. }), "{err}");
    }

    #[test]
    fn checksums_verified_once_per_read() {
        let f = page_file(3);
        let bm = BufferManager::open_with(f.path(), 8, verified()).unwrap();
        bm.pin(0).unwrap();
        bm.pin(0).unwrap();
        bm.pin(1).unwrap();
        let s = bm.stats();
        assert_eq!(s.pages_verified, 2, "hits are not re-verified");
        assert_eq!(s.checksum_failures, 0);
    }

    #[test]
    fn verified_bit_checks_once_per_residency() {
        let f = page_file(3);
        let bm = BufferManager::open_with(f.path(), 2, verified()).unwrap();
        // Raw pin populates the frame unchecked.
        bm.pin_raw(0).unwrap();
        assert_eq!(bm.stats().pages_verified, 0, "raw pins never verify");
        // First verifying pin checks the resident bytes; later pins reuse
        // the frame's verified bit.
        bm.pin(0).unwrap();
        bm.pin(0).unwrap();
        bm.pin_raw(0).unwrap();
        let s = bm.stats();
        assert_eq!(s.pages_verified, 1, "one check per residency");
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        // Eviction drops the bit with the frame: the re-read re-verifies.
        bm.pin(1).unwrap();
        bm.pin(2).unwrap(); // capacity 2 → evicts page 0
        bm.pin(0).unwrap();
        assert_eq!(bm.stats().pages_verified, 4, "re-read after eviction re-checks");
    }

    #[test]
    fn raw_pinned_corruption_surfaces_on_first_verified_pin() {
        let f = page_file(2);
        let mut bytes = std::fs::read(f.path()).unwrap();
        bytes[PAGE_SIZE + 9] ^= 0xFF;
        std::fs::write(f.path(), &bytes).unwrap();
        let bm = BufferManager::open_with(f.path(), 4, verified()).unwrap();
        // Raw access hands out the sick bytes (corruption triage).
        let raw = bm.pin_raw(1).unwrap();
        assert_eq!(raw[9], bytes[PAGE_SIZE + 9]);
        // The verifying pin catches it on the resident frame.
        let err = bm.pin(1).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt { page: Some(1), .. }), "{err}");
        assert_eq!(bm.stats().checksum_failures, 1);
        // The poisoned frame was dropped: the next raw pin re-reads.
        let before = bm.stats().misses;
        bm.pin_raw(1).unwrap();
        assert_eq!(bm.stats().misses, before + 1);
    }

    #[test]
    fn corrupt_page_fails_typed_with_coordinates() {
        let f = page_file(3);
        // Flip a payload byte of page 1 on disk.
        let mut bytes = std::fs::read(f.path()).unwrap();
        bytes[PAGE_SIZE + 17] ^= 0xFF;
        std::fs::write(f.path(), &bytes).unwrap();
        let bm = BufferManager::open_with(f.path(), 8, verified()).unwrap();
        bm.pin(0).unwrap();
        let err = bm.pin(1).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt { page: Some(1), .. }), "{err}");
        assert_eq!(bm.stats().checksum_failures, 1);
        // A flip inside the trailer is equally fatal.
        let mut bytes = std::fs::read(f.path()).unwrap();
        bytes[3 * PAGE_SIZE - 1] ^= 0x01;
        std::fs::write(f.path(), &bytes).unwrap();
        let bm = BufferManager::open_with(f.path(), 8, verified()).unwrap();
        assert!(bm.pin(2).is_err());
        let _ = PAGE_PAYLOAD; // format constant referenced by the test module
    }

    #[test]
    fn truncated_file_pins_fail_typed() {
        let f = page_file(3);
        // Chop the file mid-page.
        let bytes = std::fs::read(f.path()).unwrap();
        std::fs::write(f.path(), &bytes[..2 * PAGE_SIZE + 100]).unwrap();
        let bm = BufferManager::open_with(f.path(), 8, verified()).unwrap();
        bm.pin(0).unwrap();
        bm.pin(1).unwrap();
        // Page 2 is only partially present: out-of-bounds by whole-page
        // accounting.
        let err = bm.pin(2).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn injected_pin_failure_and_short_read() {
        let f = page_file(4);
        let fp = IoFailPoint { fail_pin_at: Some(2), ..IoFailPoint::none() };
        let bm = BufferManager::open_with(
            f.path(),
            8,
            BufferOptions { verify_checksums: true, failpoint: fp },
        )
        .unwrap();
        bm.pin(0).unwrap();
        let err = bm.pin(1).unwrap_err();
        assert!(matches!(err, DiskError::Io { page: Some(1), .. }), "{err}");

        let fp = IoFailPoint { short_read_at: Some(1), ..IoFailPoint::none() };
        let bm = BufferManager::open_with(
            f.path(),
            8,
            BufferOptions { verify_checksums: true, failpoint: fp },
        )
        .unwrap();
        let err = bm.pin(3).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn bit_flip_injection_caught_by_checksum() {
        let f = page_file(2);
        let fp = IoFailPoint { flip_byte: Some((1, 42)), ..IoFailPoint::none() };
        let bm = BufferManager::open_with(
            f.path(),
            8,
            BufferOptions { verify_checksums: true, failpoint: fp },
        )
        .unwrap();
        bm.pin(0).unwrap();
        let err = bm.pin(1).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt { page: Some(1), .. }), "{err}");
        assert_eq!(bm.stats().checksum_failures, 1);
    }
}
