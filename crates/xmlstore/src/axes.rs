//! The thirteen XPath 1.0 axes as iterators in *axis order*.
//!
//! Forward axes yield document order; reverse axes (`ancestor`,
//! `ancestor-or-self`, `preceding`, `preceding-sibling`, `parent`) yield
//! reverse document order, so `position()` counted over an axis iterator is
//! already the XPath proximity position.
//!
//! The `namespace` axis is accepted but yields nothing: the stores do not
//! materialise namespace nodes (see crate docs).

use crate::node::{NodeId, NodeKind};
use crate::store::XmlStore;

/// An XPath axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    Child,
    Descendant,
    Parent,
    Ancestor,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    Attribute,
    Namespace,
    SelfAxis,
    DescendantOrSelf,
    AncestorOrSelf,
}

impl Axis {
    /// Parse an axis name as written in XPath (full names only; the
    /// abbreviations of the paper's Fig. 5 are handled by the bench crate).
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "attribute" => Axis::Attribute,
            "namespace" => Axis::Namespace,
            "self" => Axis::SelfAxis,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            _ => return None,
        })
    }

    /// Canonical axis name.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::Attribute => "attribute",
            Axis::Namespace => "namespace",
            Axis::SelfAxis => "self",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::AncestorOrSelf => "ancestor-or-self",
        }
    }

    /// True for reverse axes (axis order = reverse document order).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// Principal node kind of the axis (XPath §2.3): attributes for the
    /// attribute axis, elements otherwise (namespace axis unsupported).
    pub fn principal_kind(self) -> NodeKind {
        match self {
            Axis::Attribute => NodeKind::Attribute,
            _ => NodeKind::Element,
        }
    }

    /// Paper §4.1: axes that *potentially produce duplicates* (ppd) when
    /// applied to a duplicate-free context sequence.
    pub fn is_ppd(self) -> bool {
        matches!(
            self,
            Axis::Following
                | Axis::FollowingSibling
                | Axis::Preceding
                | Axis::PrecedingSibling
                | Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Descendant
                | Axis::DescendantOrSelf
        )
    }

    /// True if, from any single context node, the axis result is guaranteed
    /// duplicate-free *and* in document order already (used by the engines
    /// to skip per-node sorting).
    pub fn single_node_result_sorted(self) -> bool {
        !self.is_reverse()
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deepest last descendant of `n` (the node that ends `n`'s subtree in
/// document order), or `n` itself if it has no children.
fn deepest_last(store: &dyn XmlStore, mut n: NodeId) -> NodeId {
    while let Some(c) = store.last_child(n) {
        n = c;
    }
    n
}

/// Next node in document preorder after `n`, optionally skipping `n`'s
/// subtree. Attributes are not visited (they are not on the child axis);
/// starting *from* an attribute climbs to its owner first.
fn next_preorder(store: &dyn XmlStore, n: NodeId, skip_children: bool) -> Option<NodeId> {
    let mut cur = if store.kind(n) == NodeKind::Attribute {
        // Doc order continues with the owner's children.
        let owner = store.parent(n)?;
        if let Some(c) = store.first_child(owner) {
            return Some(c);
        }
        owner
    } else {
        if !skip_children {
            if let Some(c) = store.first_child(n) {
                return Some(c);
            }
        }
        n
    };
    loop {
        if let Some(s) = store.next_sibling(cur) {
            return Some(s);
        }
        cur = store.parent(cur)?;
    }
}

enum State {
    /// Yield exactly one node (`self` axis).
    SelfOnly(Option<NodeId>),
    /// Yield `self` next, then continue with ancestors (`ancestor-or-self`).
    SelfFirst(NodeId),
    /// Chain along a link function (parent / next_sibling / prev_sibling).
    Parent(Option<NodeId>),
    Ancestors(Option<NodeId>),
    NextSiblings(Option<NodeId>),
    PrevSiblings(Option<NodeId>),
    Attributes(Option<NodeId>),
    /// Preorder walk inside the subtree rooted at `root`; `cur` is the last
    /// yielded node (None before the first).
    Subtree {
        root: NodeId,
        cur: Option<NodeId>,
        include_self: bool,
    },
    /// Document-order walk for `following`.
    Following(Option<NodeId>),
    /// Reverse document-order walk for `preceding` (skipping ancestors):
    /// consume the previous-sibling subtrees of each ancestor-or-self node,
    /// each subtree in reverse preorder.
    Preceding {
        /// Ancestor-or-self node whose previous siblings are next.
        anc: Option<NodeId>,
        /// Active subtree walk: (subtree root, node to yield next).
        walk: Option<(NodeId, NodeId)>,
    },
    Done,
}

/// Store-free axis cursor: holds only the traversal state, so physical
/// operators can embed it without borrowing the store. Every advance takes
/// the store explicitly.
pub struct AxisCursor {
    state: State,
}

impl AxisCursor {
    /// Start the `axis` from context node `n`.
    pub fn new(store: &dyn XmlStore, axis: Axis, n: NodeId) -> AxisCursor {
        let kind = store.kind(n);
        let state = match axis {
            Axis::SelfAxis => State::SelfOnly(Some(n)),
            Axis::Child => State::NextSiblings(store.first_child(n)),
            Axis::Parent => State::Parent(store.parent(n)),
            Axis::Ancestor => State::Ancestors(store.parent(n)),
            Axis::AncestorOrSelf => State::SelfFirst(n),
            Axis::FollowingSibling => {
                if kind == NodeKind::Attribute {
                    State::Done
                } else {
                    State::NextSiblings(store.next_sibling(n))
                }
            }
            Axis::PrecedingSibling => {
                if kind == NodeKind::Attribute {
                    State::Done
                } else {
                    State::PrevSiblings(store.prev_sibling(n))
                }
            }
            Axis::Attribute => {
                if kind == NodeKind::Element {
                    State::Attributes(store.first_attribute(n))
                } else {
                    State::Done
                }
            }
            Axis::Namespace => State::Done,
            Axis::Descendant => State::Subtree { root: n, cur: None, include_self: false },
            Axis::DescendantOrSelf => State::Subtree { root: n, cur: None, include_self: true },
            Axis::Following => State::Following(next_preorder(store, n, true)),
            Axis::Preceding => {
                let start = if kind == NodeKind::Attribute {
                    store.parent(n).unwrap_or(n)
                } else {
                    n
                };
                State::Preceding { anc: Some(start), walk: None }
            }
        };
        AxisCursor { state }
    }

    /// Next node on the axis, or `None` when exhausted.
    pub fn advance(&mut self, store: &dyn XmlStore) -> Option<NodeId> {
        match &mut self.state {
            State::Done => None,
            State::SelfOnly(n) => n.take(),
            State::SelfFirst(n) => {
                let n = *n;
                self.state = State::Ancestors(store.parent(n));
                Some(n)
            }
            State::Parent(p) => {
                let r = p.take();
                self.state = State::Done;
                r
            }
            State::Ancestors(cur) => {
                let r = *cur;
                if let Some(n) = r {
                    *cur = store.parent(n);
                }
                r
            }
            State::NextSiblings(cur) => {
                let r = *cur;
                if let Some(n) = r {
                    *cur = store.next_sibling(n);
                }
                r
            }
            State::PrevSiblings(cur) => {
                let r = *cur;
                if let Some(n) = r {
                    *cur = store.prev_sibling(n);
                }
                r
            }
            State::Attributes(cur) => {
                let r = *cur;
                if let Some(n) = r {
                    *cur = store.next_sibling(n);
                }
                r
            }
            State::Subtree { root, cur, include_self } => {
                let next = match cur {
                    None => {
                        if *include_self {
                            Some(*root)
                        } else {
                            store.first_child(*root)
                        }
                    }
                    Some(c) => {
                        // Preorder advance bounded by `root`.
                        if let Some(fc) = store.first_child(*c) {
                            Some(fc)
                        } else {
                            let mut up = *c;
                            loop {
                                if up == *root {
                                    break None;
                                }
                                if let Some(s) = store.next_sibling(up) {
                                    break Some(s);
                                }
                                match store.parent(up) {
                                    Some(p) => up = p,
                                    None => break None,
                                }
                            }
                        }
                    }
                };
                match next {
                    Some(n) => {
                        *cur = Some(n);
                        Some(n)
                    }
                    None => {
                        self.state = State::Done;
                        None
                    }
                }
            }
            State::Following(cur) => {
                let r = *cur;
                if let Some(n) = r {
                    *cur = next_preorder(store, n, false);
                }
                r
            }
            State::Preceding { anc, walk } => {
                loop {
                    if let Some((root, cur)) = walk {
                        let out = *cur;
                        if out == *root {
                            // Subtree done; continue with the root's own
                            // previous sibling, if any.
                            match store.prev_sibling(*root) {
                                Some(ps) => *walk = Some((ps, deepest_last(store, ps))),
                                None => *walk = None,
                            }
                        } else {
                            // Reverse preorder step inside the subtree.
                            *cur = match (store.prev_sibling(*cur), store.parent(*cur)) {
                                (Some(ps), _) => deepest_last(store, ps),
                                (None, Some(p)) => p,
                                // Unreachable on an intact store (we are
                                // strictly inside the subtree rooted at
                                // `root`); on a corrupted one the missing
                                // parent link ends the walk instead of
                                // panicking.
                                (None, None) => {
                                    *walk = None;
                                    return Some(out);
                                }
                            };
                        }
                        return Some(out);
                    }
                    let a = match anc.take() {
                        Some(a) => a,
                        None => {
                            self.state = State::Done;
                            return None;
                        }
                    };
                    *anc = store.parent(a);
                    if let Some(ps) = store.prev_sibling(a) {
                        *walk = Some((ps, deepest_last(store, ps)));
                    }
                }
            }
        }
    }
}

/// Iterator adaptor over [`AxisCursor`] for callers that can hold the
/// store borrow.
pub struct AxisIter<'a> {
    store: &'a dyn XmlStore,
    cursor: AxisCursor,
}

impl<'a> AxisIter<'a> {
    /// Start the `axis` from context node `n`.
    pub fn new(store: &'a dyn XmlStore, axis: Axis, n: NodeId) -> AxisIter<'a> {
        AxisIter { store, cursor: AxisCursor::new(store, axis, n) }
    }
}

impl<'a> Iterator for AxisIter<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.cursor.advance(self.store)
    }
}

/// Convenience: collect an axis into a vector (tests, interpreters).
pub fn axis_nodes(store: &dyn XmlStore, axis: Axis, n: NodeId) -> Vec<NodeId> {
    AxisIter::new(store, axis, n).collect()
}

/// Like [`axis_nodes`], but preferring the store's structural interval
/// index: the four interval axes become range scans
/// ([`StructuralIndex::range_scan`](crate::index::StructuralIndex::range_scan)),
/// everything else — and every store without an index — goes through the
/// cursor. Axis order is identical by construction; the differential
/// suites assert it.
pub fn indexed_axis_nodes(store: &dyn XmlStore, axis: Axis, n: NodeId) -> Vec<NodeId> {
    if let Some(idx) = store.structural_index() {
        if let Some(mut scan) = idx.range_scan(axis, n) {
            let mut out = Vec::new();
            while let Some(rank) = scan.advance(idx) {
                out.push(idx.node_at(rank));
            }
            return out;
        }
    }
    axis_nodes(store, axis, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{ArenaBuilder, ArenaStore};
    use crate::store::XmlStore;

    /// <r><a><b/><c><d/></c></a><e/><f><g/></f></r>
    fn sample() -> (ArenaStore, std::collections::HashMap<&'static str, NodeId>) {
        let mut b = ArenaBuilder::new();
        let mut m = std::collections::HashMap::new();
        m.insert("r", b.start_element("r"));
        m.insert("a", b.start_element("a"));
        m.insert("b", b.start_element("b"));
        b.end_element();
        m.insert("c", b.start_element("c"));
        m.insert("d", b.start_element("d"));
        b.end_element();
        b.end_element();
        b.end_element();
        m.insert("e", b.start_element("e"));
        b.end_element();
        m.insert("f", b.start_element("f"));
        m.insert("g", b.start_element("g"));
        b.end_element();
        b.end_element();
        b.end_element();
        (b.finish(), m)
    }

    fn names(s: &ArenaStore, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| s.node_name(n)).collect()
    }

    #[test]
    fn child_axis() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Child, m["r"])), ["a", "e", "f"]);
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Child, m["b"])), Vec::<String>::new());
    }

    #[test]
    fn descendant_axis_in_doc_order() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Descendant, m["a"])), ["b", "c", "d"]);
        assert_eq!(
            names(&s, &axis_nodes(&s, Axis::Descendant, m["r"])),
            ["a", "b", "c", "d", "e", "f", "g"]
        );
    }

    #[test]
    fn descendant_or_self_includes_self_first() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::DescendantOrSelf, m["c"])), ["c", "d"]);
    }

    #[test]
    fn ancestor_axes_reverse_order() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Ancestor, m["d"])), ["c", "a", "r", ""]);
        assert_eq!(
            names(&s, &axis_nodes(&s, Axis::AncestorOrSelf, m["d"])),
            ["d", "c", "a", "r", ""]
        );
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Parent, m["d"])), ["c"]);
    }

    #[test]
    fn sibling_axes() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::FollowingSibling, m["a"])), ["e", "f"]);
        assert_eq!(names(&s, &axis_nodes(&s, Axis::PrecedingSibling, m["f"])), ["e", "a"]);
    }

    #[test]
    fn following_axis_excludes_descendants() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Following, m["a"])), ["e", "f", "g"]);
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Following, m["d"])), ["e", "f", "g"]);
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Following, m["g"])), Vec::<String>::new());
    }

    #[test]
    fn preceding_axis_excludes_ancestors_reverse_order() {
        let (s, m) = sample();
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Preceding, m["e"])), ["d", "c", "b", "a"]);
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Preceding, m["d"])), ["b"]);
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Preceding, m["a"])), Vec::<String>::new());
    }

    #[test]
    fn self_axis() {
        let (s, m) = sample();
        assert_eq!(axis_nodes(&s, Axis::SelfAxis, m["c"]), vec![m["c"]]);
    }

    #[test]
    fn attribute_axis_only_from_elements() {
        let mut b = ArenaBuilder::new();
        b.start_element("x");
        b.attribute("p", "1");
        b.attribute("q", "2");
        b.text("t");
        b.end_element();
        let s = b.finish();
        let x = s.first_child(s.root()).unwrap();
        let attrs = axis_nodes(&s, Axis::Attribute, x);
        assert_eq!(names(&s, &attrs), ["p", "q"]);
        let t = s.first_child(x).unwrap();
        assert!(axis_nodes(&s, Axis::Attribute, t).is_empty());
    }

    #[test]
    fn axes_from_attribute_node() {
        let mut b = ArenaBuilder::new();
        b.start_element("r");
        b.start_element("x");
        b.attribute("p", "1");
        b.start_element("y");
        b.end_element();
        b.end_element();
        b.start_element("z");
        b.end_element();
        b.end_element();
        let s = b.finish();
        let r = s.first_child(s.root()).unwrap();
        let x = s.first_child(r).unwrap();
        let p = s.first_attribute(x).unwrap();
        // parent of attribute is the owner element
        assert_eq!(axis_nodes(&s, Axis::Parent, p), vec![x]);
        // attributes have no siblings on the sibling axes
        assert!(axis_nodes(&s, Axis::FollowingSibling, p).is_empty());
        assert!(axis_nodes(&s, Axis::PrecedingSibling, p).is_empty());
        // following of the attribute includes the owner's subtree
        assert_eq!(names(&s, &axis_nodes(&s, Axis::Following, p)), ["y", "z"]);
        // preceding of the attribute = preceding of the owner
        assert_eq!(axis_nodes(&s, Axis::Preceding, p), axis_nodes(&s, Axis::Preceding, x));
    }

    #[test]
    fn axis_partition_property() {
        // self ∪ ancestor ∪ descendant ∪ preceding ∪ following partitions
        // the non-attribute nodes of the document (XPath §2.2).
        let (s, m) = sample();
        for &n in m.values() {
            let mut all: Vec<NodeId> = Vec::new();
            for ax in [
                Axis::SelfAxis,
                Axis::Ancestor,
                Axis::Descendant,
                Axis::Preceding,
                Axis::Following,
            ] {
                all.extend(axis_nodes(&s, ax, n));
            }
            all.sort();
            let mut expect: Vec<NodeId> = (0..s.node_count() as u32)
                .map(NodeId)
                .filter(|&x| s.kind(x) != NodeKind::Attribute)
                .collect();
            expect.sort();
            all.dedup();
            assert_eq!(all, expect, "partition failed for {}", s.node_name(n));
        }
    }

    #[test]
    fn axis_parse_roundtrip() {
        for ax in [
            Axis::Child,
            Axis::Descendant,
            Axis::Parent,
            Axis::Ancestor,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
            Axis::Attribute,
            Axis::Namespace,
            Axis::SelfAxis,
            Axis::DescendantOrSelf,
            Axis::AncestorOrSelf,
        ] {
            assert_eq!(Axis::from_name(ax.name()), Some(ax));
        }
        assert_eq!(Axis::from_name("sideways"), None);
    }

    #[test]
    fn ppd_classification_matches_paper() {
        use Axis::*;
        for ax in [
            Following,
            FollowingSibling,
            Preceding,
            PrecedingSibling,
            Parent,
            Ancestor,
            AncestorOrSelf,
            Descendant,
            DescendantOrSelf,
        ] {
            assert!(ax.is_ppd(), "{ax} should be ppd");
        }
        for ax in [Child, Attribute, SelfAxis, Namespace] {
            assert!(!ax.is_ppd(), "{ax} should not be ppd");
        }
    }
}
